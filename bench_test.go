// Package repro's root benchmark harness: one benchmark per evaluation
// table and figure of the FatPaths paper, each regenerating the
// corresponding rows via internal/experiments (quick scale; run
// cmd/experiments -full for paper-scale numbers), plus microbenchmarks of
// the core building blocks (layer construction, forwarding, diversity
// metrics, the simulator's event loop).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Quick: true, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

// Evaluation figures and tables (§IV, §VI, §VII, Appendix D).

func BenchmarkFig2Throughput(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig4Collisions(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig6MinimalPaths(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7NonMinimal(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8Interference(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9MAT(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10Cost(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11Adversarial(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12LayerSweep(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13LargeScale(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14TCP(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15Distribution(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16RhoSweep(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig17Stencil(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig19Scaling(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20Lambda(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkFig21NDPLambda(b *testing.B)    { benchExperiment(b, "fig21") }
func BenchmarkTable4CDPPI(b *testing.B)       { benchExperiment(b, "tab4") }
func BenchmarkTable5Topologies(b *testing.B)  { benchExperiment(b, "tab5") }

// Ablation studies (§III of the paper; see the experiment table in
// README.md).

func BenchmarkAblationTransport(b *testing.B)         { benchExperiment(b, "abl-transport") }
func BenchmarkAblationLayerConstruction(b *testing.B) { benchExperiment(b, "abl-construction") }
func BenchmarkAblationRandomization(b *testing.B)     { benchExperiment(b, "abl-randomization") }

// Extensions: fault tolerance (§V-G), MPTCP striping (§VIII-A2), and
// forwarding-state sizing (§V-D/E).

func BenchmarkExtFailures(b *testing.B)    { benchExperiment(b, "ext-failures") }
func BenchmarkExtMPTCP(b *testing.B)       { benchExperiment(b, "ext-mptcp") }
func BenchmarkExtTableSizing(b *testing.B) { benchExperiment(b, "ext-tables") }

// Microbenchmarks of the core building blocks.

func BenchmarkLayerConstructionRandom(b *testing.B) {
	sf, err := topo.SlimFly(11, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layers.Random(sf.G, 9, 0.6, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayerConstructionMinInterference(b *testing.B) {
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layers.MinInterference(sf.G, layers.MinInterferenceConfig{N: 4, ExtraHops: 1}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingBuild measures eager construction of the CSR multi-
// next-hop tables (internal/routing) for a 9-layer Slim Fly, serially and
// on all cores — the table-build path every fabric pays once.
func BenchmarkRoutingBuild(b *testing.B) {
	sf, err := topo.SlimFly(11, 0)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := layers.Random(sf.G, 9, 0.6, graph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := layers.NewForwarding(ls, 1)
				f.BuildAll(bc.workers)
			}
		})
	}
}

// BenchmarkForwardingHotPath measures the layered-forwarding lookups the
// simulator issues per hop: candidate-set reads and deterministic
// next-hop picks against fully materialized tables.
func BenchmarkForwardingHotPath(b *testing.B) {
	sf, err := topo.SlimFly(11, 0)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := layers.Random(sf.G, 9, 0.6, graph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	f := layers.NewForwarding(ls, 1)
	f.BuildAll(0)
	nr := sf.Nr()
	nl := f.NumLayers()
	b.Run("candidates", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			l := i % nl
			s := (i * 31) % nr
			d := (i*17 + 1) % nr
			sink += len(f.Candidates(l, s, d))
		}
		benchSink = sink
	})
	b.Run("next", func(b *testing.B) {
		b.ReportAllocs()
		var sink int32
		for i := 0; i < b.N; i++ {
			l := i % nl
			s := (i * 31) % nr
			d := (i*17 + 1) % nr
			sink += f.Next(l, s, d)
		}
		benchSink = int(sink)
	})
}

// benchSink defeats dead-code elimination in the hot-path benchmarks.
var benchSink int

func BenchmarkDisjointPathsCDP(b *testing.B) {
	sf, err := topo.SlimFly(11, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := graph.SampleDistinctPair(rng, sf.Nr())
		sf.G.DisjointPathsBounded([]int{s}, []int{t}, graph.DisjointPathsOpts{MaxLen: 3})
	}
}

func BenchmarkRankConnectivity(b *testing.B) {
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, t := graph.SampleDistinctPair(rng, sf.Nr())
		diversity.EdgeConnectivityBounded(sf.G, s, t, 3, rng)
	}
}

func BenchmarkSimulatorEventThroughput(b *testing.B) {
	// Measures raw packet-event throughput: a saturated permutation on a
	// small Slim Fly under the purified transport.
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		b.Fatal(err)
	}
	fab, err := core.Build(sf, core.DefaultConfig(sf))
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(2)
	pat := traffic.RandomPermutation(rng, sf.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := fab.NewSimulation(netsim.NDPDefaults())
		for _, fl := range pat.Flows {
			sim.AddFlow(netsim.FlowSpec{Src: fl.Src, Dst: fl.Dst, Bytes: 128 << 10})
		}
		res := sim.Run(2 * netsim.Second)
		if netsim.CompletedFraction(res) < 0.99 {
			b.Fatal("flows did not complete")
		}
	}
}

// BenchmarkNetsimReplicate measures one mid-size fig2-style replicate end
// to end — fabric reuse, Poisson arrivals, the purified transport on a
// randomized-uniform workload — plain and with the full metrics registry
// attached. The two sub-benchmarks bound the instrumentation overhead on
// the simulator's hot loop (local tallies + one flush; the disabled path
// is a nil check per replicate).
func BenchmarkNetsimReplicate(b *testing.B) {
	sf, err := topo.SlimFly(7, 0)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, m *obs.SimMetrics) {
		fab, err := core.Build(sf, core.DefaultConfig(sf))
		if err != nil {
			b.Fatal(err)
		}
		rng := graph.NewRand(2)
		pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, sf.N()), rng)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := netsim.NDPDefaults()
			cfg.Metrics = m
			wl := core.Workload{
				Pattern:  pat,
				FlowSize: traffic.FixedSize(256 << 10),
				Lambda:   300,
			}
			res := fab.RunWorkload(cfg, wl, 4*netsim.Second, 7)
			if netsim.CompletedFraction(res) < 0.95 {
				b.Fatal("flows did not complete")
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		run(b, obs.NewSimMetrics(obs.NewRegistry()))
	})

	// shards=S: one fig14-style DCTCP cell under the sharded event loop.
	// Results are byte-identical across the sweep (the engine's determinism
	// contract), so the only thing that varies is wall clock: the ratio of
	// shards=1 to shards=8 is the parallel-engine speedup on this machine's
	// cores. CI archives the sweep in BENCH_netsim.json.
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			fab, err := core.Build(sf, core.DefaultConfig(sf))
			if err != nil {
				b.Fatal(err)
			}
			rng := graph.NewRand(2)
			pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, sf.N()), rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := netsim.TCPDefaults(netsim.TransportDCTCP)
				cfg.Shards = shards
				wl := core.Workload{
					Pattern:  pat,
					FlowSize: traffic.FixedSize(256 << 10),
					Lambda:   300,
				}
				res := fab.RunWorkload(cfg, wl, 4*netsim.Second, 7)
				if netsim.CompletedFraction(res) < 0.95 {
					b.Fatal("flows did not complete")
				}
			}
		})
	}
}

// BenchmarkScenarioCache measures the durable sweep runtime end to end on
// one small matrix: cold runs simulate every cell and populate a fresh
// content-addressed cache; warm runs satisfy every cell from it. The
// cold/warm ratio is the cache's re-run speedup (the acceptance floor is
// 10×; in practice it is orders of magnitude). CI archives the pair in
// BENCH_scenario.json.
func BenchmarkScenarioCache(b *testing.B) {
	m := &scenario.Matrix{
		Name: "bench-cache",
		Base: scenario.Spec{
			Topology:  scenario.Topology{Kind: "SF", Param: 3},
			Pattern:   scenario.Pattern{Kind: "uniform"},
			FlowSize:  scenario.FlowSize{Bytes: 32 << 10},
			HorizonMs: 1000,
		},
		Axes: scenario.Axes{
			Routings:  []string{"fatpaths", "minimal"},
			FailFracs: []float64{0, 0.1},
		},
	}
	cells, _, err := m.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // a fresh, empty cache every iteration
			b.StartTimer()
			if _, err := scenario.RunSpecs(cells, scenario.RunOptions{Seed: 42, CacheDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := scenario.RunSpecs(cells, scenario.RunOptions{Seed: 42, CacheDir: dir}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := scenario.RunSpecs(cells, scenario.RunOptions{Seed: 42, CacheDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSlimFlyConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topo.SlimFly(19, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorstCasePattern(b *testing.B) {
	sf, err := topo.SlimFly(7, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traffic.WorstCase(sf, 0.55, rng)
	}
}
