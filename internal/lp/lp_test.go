package lp

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := New(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 4)
	p.AddConstraint([]int{0, 1}, []float64{1, 3}, LE, 6)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 12, 1e-6) {
		t.Fatalf("obj=%f, want 12", obj)
	}
	if !approx(x[0], 4, 1e-6) || !approx(x[1], 0, 1e-6) {
		t.Fatalf("x=%v, want [4 0]", x)
	}
}

func TestClassicDiet(t *testing.T) {
	// max 5x + 4y s.t. 6x+4y <= 24, x+2y <= 6 -> x=3, y=1.5, obj=21.
	p := New(2)
	p.SetObjective(0, 5)
	p.SetObjective(1, 4)
	p.AddConstraint([]int{0, 1}, []float64{6, 4}, LE, 24)
	p.AddConstraint([]int{0, 1}, []float64{1, 2}, LE, 6)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 21, 1e-6) || !approx(x[0], 3, 1e-6) || !approx(x[1], 1.5, 1e-6) {
		t.Fatalf("x=%v obj=%f, want [3 1.5] 21", x, obj)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3 -> obj 5 with x<=3.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 5)
	p.AddConstraint([]int{0}, []float64{1}, LE, 3)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 5, 1e-6) {
		t.Fatalf("obj=%f, want 5", obj)
	}
	if x[0] > 3+1e-6 {
		t.Fatalf("x[0]=%f violates bound", x[0])
	}
}

func TestGEConstraints(t *testing.T) {
	// max -x (i.e. minimize x) s.t. x >= 2 -> x=2.
	p := New(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]int{0}, []float64{1}, GE, 2)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-6) || !approx(obj, -2, 1e-6) {
		t.Fatalf("x=%v obj=%f, want x=2 obj=-2", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]int{0}, []float64{1}, LE, 1)
	p.AddConstraint([]int{0}, []float64{1}, GE, 2)
	if _, _, err := p.Solve(); err != ErrInfeasible {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]int{1}, []float64{1}, LE, 1)
	if _, _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err=%v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -1 with x,y >= 0: y >= x + 1. max x+y under y <= 3:
	// x=2, y=3 -> obj 5.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]int{0, 1}, []float64{1, -1}, LE, -1)
	p.AddConstraint([]int{1}, []float64{1}, LE, 3)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 5, 1e-6) || !approx(x[1], 3, 1e-6) {
		t.Fatalf("x=%v obj=%f, want [2 3] 5", x, obj)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (degenerate without Bland's rule).
	p := New(4)
	p.SetObjective(0, 0.75)
	p.SetObjective(1, -150)
	p.SetObjective(2, 0.02)
	p.SetObjective(3, -6)
	p.AddConstraint([]int{0, 1, 2, 3}, []float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]int{0, 1, 2, 3}, []float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]int{2}, []float64{1}, LE, 1)
	_, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 0.05, 1e-6) {
		t.Fatalf("obj=%f, want 0.05", obj)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow on a tiny network expressed directly: s->a (cap 3),
	// s->b (2), a->t (2), b->t (3), a->b (10). Max flow = 4...
	// variables: f_sa, f_sb, f_at, f_bt, f_ab.
	p := New(5)
	// maximize flow into t
	p.SetObjective(2, 1)
	p.SetObjective(3, 1)
	// capacities
	caps := []float64{3, 2, 2, 3, 10}
	for i, c := range caps {
		p.AddConstraint([]int{i}, []float64{1}, LE, c)
	}
	// conservation at a: f_sa = f_at + f_ab
	p.AddConstraint([]int{0, 2, 4}, []float64{1, -1, -1}, EQ, 0)
	// conservation at b: f_sb + f_ab = f_bt
	p.AddConstraint([]int{1, 4, 3}, []float64{1, 1, -1}, EQ, 0)
	_, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 5, 1e-6) {
		// s->a->t carries 2, s->a->b->t carries 1, s->b->t carries 2: 5
		t.Fatalf("max flow obj=%f, want 5", obj)
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := New(1)
	p.AddConstraint([]int{5}, []float64{1}, LE, 1)
}
