// Package lp provides a dense two-phase primal simplex solver for the
// linear programs of §VI (maximum achievable throughput under general and
// layered multi-commodity routing). It supports maximization with <=, >=
// and = constraints over non-negative variables. Problem sizes in this
// repository are modest (thousands of variables); the solver favors
// robustness (Bland's anti-cycling rule, explicit two-phase feasibility)
// over speed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int8

const (
	// LE is <=.
	LE Relation = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

// Problem is a linear program: maximize Objective·x subject to the added
// constraints and x >= 0.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
}

type constraint struct {
	coeffs []float64 // sparse-by-index pairs flattened: idx, value
	idxs   []int
	rel    Relation
	rhs    float64
}

// New creates a problem with n non-negative variables and a zero objective.
func New(n int) *Problem {
	return &Problem{numVars: n, objective: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// SetObjective sets the coefficient of variable i in the maximization
// objective.
func (p *Problem) SetObjective(i int, c float64) {
	p.objective[i] = c
}

// AddConstraint adds Σ coeffs[k]·x[idxs[k]] REL rhs. Index/value slices are
// copied.
func (p *Problem) AddConstraint(idxs []int, coeffs []float64, rel Relation, rhs float64) {
	if len(idxs) != len(coeffs) {
		panic("lp: idxs/coeffs length mismatch")
	}
	for _, i := range idxs {
		if i < 0 || i >= p.numVars {
			panic(fmt.Sprintf("lp: variable index %d out of range", i))
		}
	}
	p.constraints = append(p.constraints, constraint{
		idxs:   append([]int(nil), idxs...),
		coeffs: append([]float64(nil), coeffs...),
		rel:    rel,
		rhs:    rhs,
	})
}

// ErrInfeasible is returned when no feasible point exists.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded above.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Solve runs two-phase simplex, returning an optimal solution and its
// objective value.
func (p *Problem) Solve() ([]float64, float64, error) {
	m := len(p.constraints)
	// Normalize to equalities with slack/surplus, rhs >= 0.
	// Columns: structural | slack/surplus | artificial.
	type rowT struct {
		a   []float64
		rhs float64
	}
	nSlack := 0
	for _, c := range p.constraints {
		if c.rel != EQ {
			nSlack++
		}
	}
	totalBase := p.numVars + nSlack
	rows := make([]rowT, m)
	slackIdx := p.numVars
	needArtificial := make([]bool, m)
	for ri, c := range p.constraints {
		a := make([]float64, totalBase)
		for k, idx := range c.idxs {
			a[idx] += c.coeffs[k]
		}
		rhs := c.rhs
		rel := c.rel
		if rhs < 0 {
			for i := range a {
				a[i] = -a[i]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			a[slackIdx] = 1
			// Slack can serve as the initial basic variable.
			slackIdx++
		case GE:
			a[slackIdx] = -1
			slackIdx++
			needArtificial[ri] = true
		case EQ:
			needArtificial[ri] = true
		}
		rows[ri] = rowT{a: a, rhs: rhs}
	}
	nArt := 0
	for _, need := range needArtificial {
		if need {
			nArt++
		}
	}
	total := totalBase + nArt
	// Tableau: m rows × (total + 1) columns (last = rhs).
	tab := make([][]float64, m)
	basis := make([]int, m)
	artCol := totalBase
	// Re-scan to find slack column per row for basis initialization.
	for ri := range rows {
		tab[ri] = make([]float64, total+1)
		copy(tab[ri], rows[ri].a)
		tab[ri][total] = rows[ri].rhs
		if needArtificial[ri] {
			tab[ri][artCol] = 1
			basis[ri] = artCol
			artCol++
		} else {
			// The row's slack coefficient is +1 at some column; find it.
			basis[ri] = -1
			for j := p.numVars; j < totalBase; j++ {
				if rows[ri].a[j] == 1 {
					// Ensure the slack is unique to this row.
					unique := true
					for rj := range rows {
						if rj != ri && rows[rj].a[j] != 0 {
							unique = false
							break
						}
					}
					if unique {
						basis[ri] = j
						break
					}
				}
			}
			if basis[ri] < 0 {
				return nil, 0, errors.New("lp: internal error: no basic column")
			}
		}
	}

	// Phase 1: minimize sum of artificials (= maximize negative sum).
	if nArt > 0 {
		objRow := make([]float64, total+1)
		for j := totalBase; j < total; j++ {
			objRow[j] = -1 // maximize -(sum of artificials)
		}
		// Price out basic artificials.
		reduced := priceOut(objRow, tab, basis)
		if err := iterate(tab, basis, reduced, total); err != nil {
			return nil, 0, err
		}
		// Feasible iff all artificials are (numerically) zero.
		art := 0.0
		for ri, b := range basis {
			if b >= totalBase {
				art += tab[ri][total]
			}
		}
		if art > 1e-6 {
			return nil, 0, ErrInfeasible
		}
		// Drive remaining basic artificials out of the basis if possible.
		for ri, b := range basis {
			if b < totalBase {
				continue
			}
			swapped := false
			for j := 0; j < totalBase; j++ {
				if math.Abs(tab[ri][j]) > eps {
					pivot(tab, basis, ri, j, total)
					swapped = true
					break
				}
			}
			if !swapped {
				// Redundant row; zero it out.
				for j := 0; j <= total; j++ {
					tab[ri][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective; artificial columns are forbidden.
	objRow := make([]float64, total+1)
	copy(objRow, p.objective)
	for j := totalBase; j < total; j++ {
		objRow[j] = math.Inf(-1) // never re-enter
	}
	reduced := priceOut(objRow, tab, basis)
	for j := totalBase; j < total; j++ {
		reduced[j] = math.Inf(-1)
	}
	if err := iterate(tab, basis, reduced, total); err != nil {
		return nil, 0, err
	}

	x := make([]float64, p.numVars)
	for ri, b := range basis {
		if b < p.numVars {
			x[b] = tab[ri][total]
		}
	}
	obj := 0.0
	for i, c := range p.objective {
		obj += c * x[i]
	}
	return x, obj, nil
}

// priceOut computes reduced costs for a maximization objective row given
// the current basis (objective coefficients of basic variables priced out).
func priceOut(objRow []float64, tab [][]float64, basis []int) []float64 {
	total := len(objRow) - 1
	reduced := make([]float64, total+1)
	copy(reduced, objRow)
	for ri, b := range basis {
		cb := objRow[b]
		if cb == 0 || math.IsInf(cb, -1) {
			if math.IsInf(cb, -1) {
				// Basic artificial with -Inf cost: treat as 0 during
				// phase 2 (it is numerically zero-valued after phase 1).
				cb = 0
			} else {
				continue
			}
		}
		if cb == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			reduced[j] -= cb * tab[ri][j]
		}
	}
	return reduced
}

// iterate runs primal simplex pivots (Bland's rule) until optimality.
func iterate(tab [][]float64, basis []int, reduced []float64, total int) error {
	maxIter := 20000 + 50*(len(tab)+total)
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable: smallest index with positive reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			if reduced[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving variable: min ratio, ties by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for ri := range tab {
			a := tab[ri][enter]
			if a > eps {
				ratio := tab[ri][total] / a
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || basis[ri] < basis[leave])) {
					bestRatio = ratio
					leave = ri
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(tab, basis, leave, enter, total)
		// Update reduced costs.
		f := reduced[enter]
		if f != 0 {
			for j := 0; j <= total; j++ {
				reduced[j] -= f * tab[leave][j]
			}
		}
	}
	return errors.New("lp: iteration limit exceeded")
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for ri := range tab {
		if ri == row {
			continue
		}
		f := tab[ri][col]
		if f == 0 {
			continue
		}
		r := tab[ri]
		for j := 0; j <= total; j++ {
			r[j] -= f * pr[j]
		}
	}
	basis[row] = col
}
