package netsim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
)

// shardFabric builds a shared SlimFly fabric for the equivalence tests:
// the same topology and forwarding tables serve simulations at every
// shard count, exactly as replicates share them in production.
func shardFabric(t *testing.T, q, nLayers int, rho float64, seed int64) (*topo.Topology, *layers.Forwarding) {
	t.Helper()
	sf, err := topo.SlimFly(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := layers.Random(sf.G, nLayers, rho, graph.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sf, layers.NewForwarding(ls, seed)
}

// runSharded runs a fixed permutation+incast workload at the given shard
// count and returns the per-flow results plus the executed-event count.
func runSharded(tp *topo.Topology, fwd *layers.Forwarding, cfg Config, shards int) ([]FlowResult, int64) {
	cfg.Shards = shards
	s := NewSim(tp, fwd, cfg)
	n := tp.N()
	half := n / 2
	for i := 0; i < half; i++ {
		s.AddFlow(FlowSpec{
			Src:   int32(i),
			Dst:   int32((i + half) % n),
			Bytes: 96 << 10,
			Start: Time(i) * 3 * Microsecond,
		})
	}
	// An incast hot spot stresses trims/timeouts and control traffic.
	for i := 1; i <= 6 && i < n; i++ {
		s.AddFlow(FlowSpec{Src: int32(i), Dst: 0, Bytes: 64 << 10, Start: 5 * Microsecond})
	}
	res := s.Run(80 * Millisecond)
	return res, s.Eng.Executed()
}

// TestShardedSimEquivalence is the determinism contract at the simulator
// level: for every transport, running the identical workload at shard
// counts 1, 2, 3, and 8 must produce identical per-flow results AND
// execute the identical number of events — the event schedules are equal,
// not merely the outcomes.
func TestShardedSimEquivalence(t *testing.T) {
	tp, fwd := shardFabric(t, 5, 4, 0.6, 11)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ndp-fatpaths", NDPDefaults()},
		{"tcp-fatpaths", TCPDefaults(TransportTCP)},
		{"dctcp-letflow", func() Config { c := TCPDefaults(TransportDCTCP); c.LB = LBLetFlow; return c }()},
		{"mptcp", TCPDefaults(TransportMPTCP)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tc.cfg.Seed = 42
			base, baseEvents := runSharded(tp, fwd, tc.cfg, 1)
			for _, shards := range []int{2, 3, 8} {
				got, gotEvents := runSharded(tp, fwd, tc.cfg, shards)
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("shards=%d: flow results diverge from serial run", shards)
				}
				if gotEvents != baseEvents {
					t.Fatalf("shards=%d executed %d events, serial executed %d", shards, gotEvents, baseEvents)
				}
			}
		})
	}
}

// TestShardedRequiresLookahead pins the safety check: a sharded engine
// without a positive link delay has no conservative window and must
// refuse to build.
func TestShardedRequiresLookahead(t *testing.T) {
	tp, fwd := shardFabric(t, 5, 1, 1.0, 1)
	cfg := NDPDefaults()
	cfg.LinkDelay = 0
	cfg.Shards = 4
	defer func() {
		if recover() == nil {
			t.Fatal("NewSim accepted Shards>1 with zero LinkDelay")
		}
	}()
	NewSim(tp, fwd, cfg)
}

// TestShardBarrierHammer drives the window barrier hard under -race: many
// concurrent simulations, each sharded well beyond the available cores,
// sharing one forwarding view — the production layout of a parallel sweep
// running sharded replicates. Every worker checks its results against a
// serial baseline.
func TestShardBarrierHammer(t *testing.T) {
	tp, fwd := shardFabric(t, 5, 3, 0.7, 3)
	cfg := NDPDefaults()
	cfg.Seed = 7
	base, _ := runSharded(tp, fwd, cfg, 1)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := runSharded(tp, fwd, cfg, 2+w%7)
			if !reflect.DeepEqual(got, base) {
				errs <- "concurrent sharded run diverged from serial baseline"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
