package netsim

import (
	"fmt"
	"strconv"

	"repro/internal/exec"
	"repro/internal/layers"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Transport selects the end-to-end protocol.
type Transport uint8

// Transports.
const (
	// TransportNDP is the purified transport of §III-C: receiver-driven
	// pulls, first window at line rate, payload trimming instead of drops,
	// priority for trimmed headers and retransmissions, shallow buffers.
	TransportNDP Transport = iota
	// TransportTCP is Reno-style TCP (slow start, fast retransmit, RTO)
	// with optional ECN response.
	TransportTCP
	// TransportDCTCP is TCP with the DCTCP fractional ECN window law.
	TransportDCTCP
	// TransportMPTCP stripes each flow over subflows pinned to distinct
	// layers with LIA-coupled windows and ECN-driven cuts (§VIII-A2).
	TransportMPTCP
)

// LoadBalance selects the path-selection policy at senders.
type LoadBalance uint8

// Load-balancing policies.
const (
	// LBECMP hashes each flow once onto minimal paths (static, the
	// routing-performance lower bound of §VII-A3).
	LBECMP LoadBalance = iota
	// LBLetFlow re-hashes onto minimal paths at flowlet boundaries.
	LBLetFlow
	// LBFatPaths selects a (possibly non-minimal) layer per flowlet —
	// FatPaths load balancing (§III-B).
	LBFatPaths
	// LBMinimalLayer pins every packet to layer 0 (single shortest path
	// per pair; isolates the transport from multipathing).
	LBMinimalLayer
	// LBPacketSpray re-hashes every packet onto minimal paths
	// (congestion-oblivious per-packet load balancing, the NDP default).
	LBPacketSpray
)

// Config parametrizes a simulation. Zero values are filled by Defaults.
type Config struct {
	Transport     Transport
	LB            LoadBalance
	LinkBps       float64 // bits per second per link direction
	LinkDelay     Time    // per-hop fixed delay (§VII-A6 adds 1µs)
	QueueCap      int     // data queue capacity in packets
	PrioQueueCap  int
	ECNThreshold  int  // mark CE at this data-queue depth (0 = off)
	TrimMode      bool // NDP payload trimming
	MTU           int32
	FlowletGap    Time // LetFlow gap (50µs, §VII-A6)
	InitialWindow int  // NDP initial/line-rate window (8 packets, §VII-A6)
	RTOMin        Time
	Seed          int64
	// SoftwareLatency models endpoint interrupt throttling (100 kHz).
	SoftwareLatency Time

	// Shards splits the event loop across this many worker goroutines with
	// conservative lookahead synchronization (one LinkDelay). 0 or 1 runs
	// serially. Results are byte-identical at every value — Shards is an
	// execution knob, not a model parameter — so it never enters resource
	// keys or golden baselines. Requires LinkDelay > 0 when > 1.
	Shards int

	// Metrics, when non-nil, receives the simulation's observability
	// tallies when Run finishes. Hot paths accumulate into plain local
	// fields, so a nil Metrics costs nothing and a shared bundle is
	// touched once per replicate, not per event. Purely observational:
	// results are byte-identical with or without it.
	Metrics *obs.SimMetrics
	// Tracer, when non-nil, is offered to the simulation: the first
	// simulation to acquire it records its event loop and flow lifetimes
	// (bounded window, Chrome trace_event format). Sharing one tracer
	// across a sweep traces exactly one replicate.
	Tracer *obs.Tracer
}

// NDPDefaults returns the htsim-mode configuration of §VII-A6: 9KB jumbo
// frames, 8-packet queues and congestion window, trimming, priorities.
func NDPDefaults() Config {
	return Config{
		Transport:       TransportNDP,
		LB:              LBFatPaths,
		LinkBps:         10e9,
		LinkDelay:       1 * Microsecond,
		QueueCap:        8,
		PrioQueueCap:    64,
		TrimMode:        true,
		MTU:             9000,
		FlowletGap:      50 * Microsecond,
		InitialWindow:   8,
		RTOMin:          200 * Microsecond,
		SoftwareLatency: 10 * Microsecond,
	}
}

// TCPDefaults returns the OMNeT-mode configuration of §VII-A6: 100-packet
// queues, ECN mark at 33, 1500B frames, no trimming.
func TCPDefaults(tr Transport) Config {
	return Config{
		Transport:       tr,
		LB:              LBFatPaths,
		LinkBps:         10e9,
		LinkDelay:       1 * Microsecond,
		QueueCap:        100,
		PrioQueueCap:    256,
		ECNThreshold:    33,
		TrimMode:        false,
		MTU:             1500,
		FlowletGap:      50 * Microsecond,
		InitialWindow:   10,
		RTOMin:          200 * Microsecond,
		SoftwareLatency: 10 * Microsecond,
	}
}

// FlowSpec describes one flow (message) to simulate.
type FlowSpec struct {
	Src, Dst int32
	Bytes    int64
	Start    Time
	// Pinned fixes the flow to PinLayer for its whole lifetime (no flowlet
	// re-selection) — used by the MPTCP-style subflow striping of §VIII-A2,
	// where each subflow owns one layer.
	Pinned   bool
	PinLayer int8
}

// FlowResult reports a finished (or unfinished) flow.
type FlowResult struct {
	FlowSpec
	Done   bool
	Finish Time
	// Retx counts retransmitted packets; TrimsSeen counts trimmed
	// headers observed by the receiver.
	Retx      int64
	TrimsSeen int64
}

// FCT returns the flow completion time (0 if unfinished).
func (r FlowResult) FCT() Time {
	if !r.Done {
		return 0
	}
	return r.Finish - r.Start
}

// ThroughputMiBs returns per-flow goodput in MiB/s (0 if unfinished).
func (r FlowResult) ThroughputMiBs() float64 {
	f := r.FCT()
	if f <= 0 {
		return 0
	}
	return float64(r.Bytes) / f.Seconds() / (1 << 20)
}

// Sim owns one simulation run.
type Sim struct {
	Eng  *Engine
	Net  *Network
	Cfg  Config
	Topo *topo.Topology
	Fwd  *layers.Forwarding

	flows   []*flow
	results []FlowResult

	// lastPull implements per-host pull pacing for NDP receivers. Each
	// entry is touched only by its host's partition.
	lastPull []Time

	traced bool
}

// flow carries per-flow transport state (sender + receiver ends). Sender
// fields are touched only by events of the source host's partition,
// receiver fields only by the destination's; the immutable spec and the
// completion flag are the narrow interface between the two (see the field
// comments for the cross-partition rules).
type flow struct {
	id    int32
	spec  FlowSpec
	total int32 // packets
	mss   int32

	// srcPart / dstPart cache the endpoints' partitions (their routers).
	srcPart, dstPart int32

	// rngState is the flow's private SplitMix64 PRNG, seeded from
	// (Config.Seed, flow id): flowlet salts and layer draws are a sender
	// affair, and a per-flow stream keeps them deterministic regardless of
	// how flows interleave across shards.
	rngState uint64

	// Routing / flowlet state (sender side).
	layer    int8
	salt     uint32
	lastSend Time

	// reroutes counts flowlet layer re-selections (sender side; summed
	// into the metrics bundle at flush).
	reroutes int64

	// MPTCP subflows: created by the sender's start event, read-only at
	// the receiver (first data arrives >= 2 link delays — at least one
	// full synchronization window — after creation).
	mptcp []*mptcpSub

	// Receiver state (shared by transports).
	received     []bool
	numReceived  int32
	done         bool
	finish       Time
	trimsSeen    int64
	cumExpected  int32 // TCP cumulative next-expected seq
	pendingLayer bool  // NDP: ask sender to change layer on next pull

	// Sender state.
	snd senderState
}

// randU64 advances the flow's SplitMix64 stream.
func (f *flow) randU64() uint64 {
	f.rngState += 0x9E3779B97F4A7C15
	z := f.rngState
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (f *flow) randUint32() uint32 { return uint32(f.randU64() >> 32) }

// randIntn draws uniformly from [0, n); the modulo bias is negligible for
// the tiny n (layer counts) drawn here.
func (f *flow) randIntn(n int) int { return int(f.randU64() % uint64(n)) }

// senderState is the union of per-transport sender variables.
type senderState struct {
	// Common.
	nextNew   int32
	retxCount int64

	// NDP.
	retxQ     []int32
	delivered []bool
	nDeliv    int32
	inflight  int32
	lastAct   Time
	kaNext    int32 // keepalive retransmission rotor
	// finished latches when a Fin pull arrives: the receiver has the whole
	// message and the sender-side keepalive may stop. Sender-local — the
	// sharded engine forbids the sender reading the receiver's done flag.
	finished bool
	timeouts int64 // TCP RTO firings (summed at flush)

	// TCP.
	cumAck       int32
	cwnd         float64
	ssthresh     float64
	dupacks      int
	inRecovery   bool
	recover      int32
	rtoGen       int64
	rto          Time
	srtt, rttvar Time
	sendTime     []Time
	// DCTCP.
	alpha                      float64
	ceAcked, totalAcked        int64
	alphaWindowEnd, lastCutSeq int32
}

// NewSim builds a simulation over a topology with per-layer routing
// tables. fwd must include at least layer 0 (all links). The tables live
// in fwd's shared routing engine and materialize lazily per destination,
// so replicate simulations of one fabric — including simulations running
// concurrently on different worker goroutines — pay the route computation
// once; the topology and tables are read-only during a run.
func NewSim(t *topo.Topology, fwd *layers.Forwarding, cfg Config) *Sim {
	if cfg.LinkBps == 0 {
		panic("netsim: zero link bandwidth")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > 1 && cfg.LinkDelay <= 0 {
		panic("netsim: Shards > 1 requires a positive LinkDelay (the conservative lookahead)")
	}
	eng := NewShardedEngine(t.Nr(), shards, cfg.LinkDelay)
	net := buildNetwork(eng, t, fwd, cfg)
	s := &Sim{
		Eng:      eng,
		Net:      net,
		Cfg:      cfg,
		Topo:     t,
		Fwd:      fwd,
		lastPull: make([]Time, t.N()),
	}
	net.hostRecv = s.hostRecv
	if cfg.Tracer.TryAcquire() {
		eng.SetTracer(cfg.Tracer)
		s.traced = true
	}
	return s
}

// AddFlow registers a flow; it will start at spec.Start.
func (s *Sim) AddFlow(spec FlowSpec) {
	if spec.Src == spec.Dst {
		panic("netsim: self flow")
	}
	if int(spec.Src) >= s.Topo.N() || int(spec.Dst) >= s.Topo.N() || spec.Src < 0 || spec.Dst < 0 {
		panic(fmt.Sprintf("netsim: flow endpoints (%d,%d) out of range", spec.Src, spec.Dst))
	}
	mss := s.Cfg.MTU - HeaderBytes
	total := int32((spec.Bytes + int64(mss) - 1) / int64(mss))
	if total == 0 {
		total = 1
	}
	f := &flow{
		id:       int32(len(s.flows)),
		spec:     spec,
		total:    total,
		mss:      mss,
		srcPart:  int32(s.Topo.RouterOf(int(spec.Src))),
		dstPart:  int32(s.Topo.RouterOf(int(spec.Dst))),
		rngState: uint64(exec.FoldSeed(s.Cfg.Seed, uint64(uint32(len(s.flows))))),
		layer:    s.initialLayer(),
		received: make([]bool, total),
	}
	f.salt = f.randUint32()
	if spec.Pinned {
		if int(spec.PinLayer) >= s.Fwd.NumLayers() || spec.PinLayer < 0 {
			panic(fmt.Sprintf("netsim: pinned layer %d out of range", spec.PinLayer))
		}
		f.layer = spec.PinLayer
	}
	f.snd.cwnd = float64(s.Cfg.InitialWindow)
	f.snd.ssthresh = 1 << 20
	f.snd.rto = 1 * Millisecond
	f.snd.sendTime = make([]Time, total)
	if s.Cfg.Transport == TransportNDP {
		f.snd.delivered = make([]bool, total)
	}
	s.flows = append(s.flows, f)
	s.Eng.AtPart(spec.Start, f.srcPart, func(sh *Shard) { s.startFlow(sh, f) })
}

// controlLayer picks the layer for a control packet (ACK/PULL): always the
// minimal layer — the pull/ACK clock must not ride long paths. Resilience
// against a failed link black-holing a flow's control channel comes from
// the sender side instead: the NDP keepalive rotates retransmissions
// through undelivered sequences on fresh flowlet layers (§V-G), and TCP's
// timeout path re-randomizes the layer.
func (s *Sim) controlLayer(from, to int32) int8 {
	_, _ = from, to
	return 0
}

func (s *Sim) initialLayer() int8 {
	switch s.Cfg.LB {
	case LBFatPaths, LBMinimalLayer:
		return 0 // minimal layer by default (§VIII-A1)
	default:
		return -1 // ECMP-style minimal hashing
	}
}

// pickRoute applies the flowlet policy before transmitting a data packet.
func (s *Sim) pickRoute(sh *Shard, f *flow) {
	now := sh.Now()
	if f.spec.Pinned {
		f.lastSend = now
		return
	}
	newFlowlet := now-f.lastSend > s.Cfg.FlowletGap
	switch s.Cfg.LB {
	case LBECMP:
		// Static per-flow hash: nothing to do.
	case LBPacketSpray:
		f.salt = f.randUint32()
	case LBLetFlow:
		if newFlowlet {
			f.salt = f.randUint32()
		}
	case LBFatPaths:
		if newFlowlet {
			// A new flowlet re-randomizes both the layer AND the hash salt:
			// the flowlet rides one consistent path, but successive flowlets
			// spread over the layer's full within-layer ECMP candidate sets
			// (§III-B), not a single frozen hop per (layer, pair).
			s.reselectLayer(f)
			f.salt = f.randUint32()
		}
	case LBMinimalLayer:
		f.layer = 0
	}
	f.lastSend = now
}

// reselectLayer picks a layer uniformly at random among layers that reach
// the destination (§III-B: a random path per flowlet, no probing; flowlet
// elasticity does the adaptation). Pinned flows never move.
func (s *Sim) reselectLayer(f *flow) {
	if f.spec.Pinned {
		return
	}
	f.reroutes++
	n := s.Fwd.NumLayers()
	if n <= 1 {
		f.layer = 0
		return
	}
	src := int(f.srcPart)
	dst := int(f.dstPart)
	for try := 0; try < 4; try++ {
		cand := int8(f.randIntn(n))
		if s.Fwd.Reachable(int(cand), src, dst) {
			f.layer = cand
			return
		}
	}
	f.layer = 0
}

func (s *Sim) startFlow(sh *Shard, f *flow) {
	if s.traced {
		now := int64(sh.Now())
		if s.Cfg.Tracer.Active(now) {
			s.Cfg.Tracer.SpanBegin("flow", flowSpanName(f), strconv.Itoa(int(f.id)), now)
		}
	}
	switch s.Cfg.Transport {
	case TransportNDP:
		s.ndpStart(sh, f)
	case TransportMPTCP:
		s.mptcpStart(sh, f)
	default:
		s.tcpStart(sh, f)
	}
}

// hostRecv dispatches an arriving packet to the right transport handler.
func (s *Sim) hostRecv(sh *Shard, host int32, p *Packet) {
	f := s.flows[p.FlowID]
	switch s.Cfg.Transport {
	case TransportNDP:
		s.ndpRecv(sh, f, host, p)
	case TransportMPTCP:
		s.mptcpRecv(sh, f, host, p)
	default:
		s.tcpRecv(sh, f, host, p)
	}
}

// markDone finalizes a flow at the receiver.
func (s *Sim) markDone(sh *Shard, f *flow) {
	if f.done {
		return
	}
	f.done = true
	// Software/interrupt latency before the application sees the message.
	f.finish = sh.Now() + s.Cfg.SoftwareLatency
	if s.traced {
		ts := int64(sh.Now())
		if s.Cfg.Tracer.Active(ts) {
			s.Cfg.Tracer.SpanEnd("flow", flowSpanName(f), strconv.Itoa(int(f.id)), ts)
		}
	}
}

// flowSpanName labels a flow's async span in the trace viewer.
func flowSpanName(f *flow) string {
	return "flow " + strconv.Itoa(int(f.spec.Src)) + "->" + strconv.Itoa(int(f.spec.Dst))
}

// Run executes the simulation until the horizon and returns per-flow
// results.
func (s *Sim) Run(until Time) []FlowResult {
	s.Eng.Run(until)
	s.results = s.results[:0]
	for _, f := range s.flows {
		s.results = append(s.results, FlowResult{
			FlowSpec:  f.spec,
			Done:      f.done,
			Finish:    f.finish,
			Retx:      f.snd.retxCount,
			TrimsSeen: f.trimsSeen,
		})
	}
	s.flushMetrics()
	return s.results
}

// flushMetrics folds the run's local observability tallies into the shared
// registry bundle — one pass per replicate, nothing on the event hot path.
func (s *Sim) flushMetrics() {
	m := s.Cfg.Metrics
	if m == nil {
		return
	}
	e := s.Eng
	m.Events.Add(e.Executed())
	m.QueueHighWater.SetMax(int64(e.QueueHighWater()))
	var inflightHW int64
	for _, sh := range e.shards {
		if sh.inflightHW > 0 {
			inflightHW += sh.inflightHW
		}
		m.ShardEvents.Observe(float64(sh.executed))
		m.BarrierStalls.Add(sh.stalls)
		for i, c := range sh.occ {
			if c == 0 {
				continue
			}
			v := windowOccupancyBounds[len(windowOccupancyBounds)-1] * 2
			if i < len(windowOccupancyBounds) {
				v = windowOccupancyBounds[i]
			}
			m.WindowOccupancy.ObserveN(v, c)
		}
		for i, c := range sh.hopHist {
			if c > 0 {
				m.PathHops.ObserveN(float64(i), c)
			}
		}
	}
	m.InflightHighWater.SetMax(inflightHW)
	m.Drops.Add(s.Net.TotalDrops())
	m.Trims.Add(s.Net.TotalTrims())
	var reroutes, timeouts int64
	for _, f := range s.flows {
		reroutes += f.reroutes
		timeouts += f.snd.timeouts
	}
	m.FlowletReroutes.Add(reroutes)
	m.TCPTimeouts.Add(timeouts)
	var completed, retx int64
	for _, r := range s.results {
		retx += r.Retx
		if r.Done {
			completed++
			m.FCTms.Observe(r.FCT().Seconds() * 1e3)
		}
	}
	m.FlowsCompleted.Add(completed)
	m.Retransmits.Add(retx)
}

// SummarizeThroughput digests completed-flow throughputs (MiB/s).
func SummarizeThroughput(res []FlowResult) stats.Summary {
	var sm stats.Sample
	for _, r := range res {
		if r.Done {
			sm.Add(r.ThroughputMiBs())
		}
	}
	return sm.Summarize()
}

// SummarizeFCT digests completed-flow completion times in milliseconds.
func SummarizeFCT(res []FlowResult) stats.Summary {
	var sm stats.Sample
	for _, r := range res {
		if r.Done {
			sm.Add(r.FCT().Seconds() * 1e3)
		}
	}
	return sm.Summarize()
}

// CompletedFraction reports the share of flows that finished.
func CompletedFraction(res []FlowResult) float64 {
	if len(res) == 0 {
		return 0
	}
	done := 0
	for _, r := range res {
		if r.Done {
			done++
		}
	}
	return float64(done) / float64(len(res))
}
