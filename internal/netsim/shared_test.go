package netsim

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
)

// TestSharedRoutingEngineConcurrent runs replicate simulations of one
// fabric concurrently against a single shared Forwarding (whose routing
// tables materialize lazily under the engine's striped locks) and checks
// each replicate's results match a serial run with a private Forwarding
// built from the same layer set and seed — the property the parallel
// experiment runtime depends on.
func TestSharedRoutingEngineConcurrent(t *testing.T) {
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := layers.Random(sf.G, 4, 0.6, graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(fwd *layers.Forwarding, seed int64) []FlowResult {
		cfg := NDPDefaults()
		cfg.LB = LBFatPaths // exercises the per-layer ECMP candidate sets
		cfg.Seed = seed
		sim := NewSim(sf, fwd, cfg)
		rng := graph.NewRand(seed)
		for i := 0; i < 40; i++ {
			src, dst := graph.SampleDistinctPair(rng, sf.N())
			sim.AddFlow(FlowSpec{Src: int32(src), Dst: int32(dst), Bytes: 64 << 10})
		}
		return sim.Run(2 * Second)
	}

	const replicates = 6
	want := make([][]FlowResult, replicates)
	for r := 0; r < replicates; r++ {
		want[r] = runOnce(layers.NewForwarding(ls, 7), int64(r))
	}

	shared := layers.NewForwarding(ls, 7)
	got := make([][]FlowResult, replicates)
	var wg sync.WaitGroup
	for r := 0; r < replicates; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = runOnce(shared, int64(r))
		}(r)
	}
	wg.Wait()

	for r := 0; r < replicates; r++ {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("replicate %d: %d results, want %d", r, len(got[r]), len(want[r]))
		}
		for i := range got[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("replicate %d flow %d: %+v != %+v", r, i, got[r][i], want[r][i])
			}
		}
	}
}
