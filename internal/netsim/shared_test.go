package netsim

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
)

// TestSharedRouteCacheConcurrent runs replicate simulations of one fabric
// concurrently against a shared RouteCache and checks each replicate's
// results match a serial run with the same seed — the property the parallel
// experiment runtime depends on.
func TestSharedRouteCacheConcurrent(t *testing.T) {
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := layers.Random(sf.G, 4, 0.6, graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	fwd := layers.BuildForwarding(ls, graph.NewRand(1))

	runOnce := func(routes *RouteCache, seed int64) []FlowResult {
		cfg := NDPDefaults()
		cfg.LB = LBECMP // exercises the shared minimal next-hop tables
		cfg.Seed = seed
		sim := NewSimShared(sf, fwd, cfg, routes)
		rng := graph.NewRand(seed)
		for i := 0; i < 40; i++ {
			src, dst := graph.SampleDistinctPair(rng, sf.N())
			sim.AddFlow(FlowSpec{Src: int32(src), Dst: int32(dst), Bytes: 64 << 10})
		}
		return sim.Run(2 * Second)
	}

	const replicates = 6
	want := make([][]FlowResult, replicates)
	for r := 0; r < replicates; r++ {
		want[r] = runOnce(NewRouteCache(sf), int64(r))
	}

	shared := NewRouteCache(sf)
	got := make([][]FlowResult, replicates)
	var wg sync.WaitGroup
	for r := 0; r < replicates; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = runOnce(shared, int64(r))
		}(r)
	}
	wg.Wait()

	for r := 0; r < replicates; r++ {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("replicate %d: %d results, want %d", r, len(got[r]), len(want[r]))
		}
		for i := range got[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("replicate %d flow %d: %+v != %+v", r, i, got[r][i], want[r][i])
			}
		}
	}
}
