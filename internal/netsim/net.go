package netsim

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/topo"
)

// PktKind distinguishes packet roles.
type PktKind uint8

// Packet kinds.
const (
	KindData PktKind = iota
	KindAck
	KindPull // NDP receiver-driven credit
	KindNack // NDP trimmed-header notification is delivered as the trimmed data packet itself; Nack is unused on the wire but kept for clarity in tests
)

// HeaderBytes is the wire size of a packet header / control packet.
const HeaderBytes = 64

// Packet is the unit of transmission.
type Packet struct {
	FlowID  int32
	SrcHost int32
	DstHost int32
	Seq     int32
	Bytes   int32 // current wire size (payload trimmed packets shrink)
	Kind    PktKind
	Layer   int8   // >= 0: layered forwarding; -1: ECMP over minimal paths
	Salt    uint32 // per-flowlet salt for ECMP/LetFlow hashing
	Trimmed bool   // payload dropped by a congested router (NDP mode)
	Retx    bool   // retransmission (priority-queued in NDP mode)
	ECN     bool   // congestion-experienced mark
	Hops    int32  // router-router hops traversed (observability)
}

func (p *Packet) prio() bool { return p.Kind != KindData || p.Trimmed || p.Retx }

// link is one direction of a full-duplex cable with an output queue at its
// transmitter.
type link struct {
	net      *Network
	toRouter int32 // receiving router, or -1
	toHost   int32 // receiving host, or -1

	bps       float64
	delay     Time
	qcap      int // data queue capacity (packets)
	pqcap     int // priority queue capacity
	ecnThresh int // mark CE when data queue length reaches this (0 = off)
	trimMode  bool

	q      []*Packet
	pq     []*Packet
	busy   bool
	failed bool // dead cable: every packet handed to it is lost (§V-G)

	// Stats.
	Drops, Trims, TxPackets, TxBytes int64
	failDrops                        int64
}

// txTime returns the serialization time of b bytes.
func (l *link) txTime(b int32) Time {
	return Time(float64(b*8) / l.bps * 1e9)
}

// enqueue places a packet into the transmitter queue, applying the
// configured congestion behaviour: ECN marking, NDP payload trimming into
// the priority queue (§III-C), or tail drop. Dropped packets return to the
// shared pool — nothing references them once they leave the queues.
func (l *link) enqueue(p *Packet) {
	if l.failed {
		l.failDrops++
		l.net.free(p)
		return
	}
	if p.prio() {
		if len(l.pq) < l.pqcap {
			l.pq = append(l.pq, p)
			l.kick()
		} else {
			l.Drops++
			l.net.free(p)
		}
		return
	}
	if len(l.q) < l.qcap {
		if l.ecnThresh > 0 && len(l.q)+1 >= l.ecnThresh {
			p.ECN = true
		}
		l.q = append(l.q, p)
		l.kick()
		return
	}
	if l.trimMode {
		// Drop only the payload; the header with all metadata is preserved
		// and prioritized so the receiver learns about the congestion.
		p.Trimmed = true
		p.Bytes = HeaderBytes
		if len(l.pq) < l.pqcap {
			l.Trims++
			l.pq = append(l.pq, p)
			l.kick()
		} else {
			l.Drops++
			l.net.free(p)
		}
		return
	}
	l.Drops++
	l.net.free(p)
}

// kick starts transmitting if idle. Priority traffic (control packets,
// trimmed headers, retransmissions) is served first (§III-C).
func (l *link) kick() {
	if l.busy {
		return
	}
	var p *Packet
	if len(l.pq) > 0 {
		p = l.pq[0]
		l.pq = l.pq[1:]
	} else if len(l.q) > 0 {
		p = l.q[0]
		l.q = l.q[1:]
	} else {
		return
	}
	l.busy = true
	l.TxPackets++
	l.TxBytes += int64(p.Bytes)
	// Typed event: the engine frees the link, restarts it, and schedules
	// the delivery — without allocating per-packet closures.
	l.net.eng.afterTxDone(l.txTime(p.Bytes), l, p)
}

// queueLen reports the current data-queue occupancy (tests/observability).
func (l *link) queueLen() int { return len(l.q) }

// Network wires a topology, forwarding tables and hosts into a running
// simulation.
type Network struct {
	eng  *Engine
	topo *topo.Topology
	fwd  *layers.Forwarding
	cfg  Config

	// routerOut[r] maps neighbor router -> transmitting link.
	routerOut []map[int32]*link
	hostUp    []*link // host -> its router
	hostDown  []*link // router -> host

	hostRecv func(host int32, p *Packet)

	// Stats.
	DeliveredData int64

	// Observability tallies, plain fields on the single-goroutine
	// simulation path (flushed into the shared registry by Sim.Run):
	// inflight counts live packets (injected, not yet delivered or
	// dropped), inflightHW its high-water mark, and hopHist the
	// router-router hops of each packet delivered to a host.
	inflight   int64
	inflightHW int64
	hopHist    [maxHopBucket + 1]int64
}

// maxHopBucket saturates the hop histogram's index.
const maxHopBucket = 63

// buildNetwork constructs links per the config.
func buildNetwork(eng *Engine, t *topo.Topology, fwd *layers.Forwarding, cfg Config) *Network {
	n := &Network{
		eng:       eng,
		topo:      t,
		fwd:       fwd,
		cfg:       cfg,
		routerOut: make([]map[int32]*link, t.Nr()),
		hostUp:    make([]*link, t.N()),
		hostDown:  make([]*link, t.N()),
	}
	mk := func(toRouter, toHost int32) *link {
		return &link{
			net:       n,
			toRouter:  toRouter,
			toHost:    toHost,
			bps:       cfg.LinkBps,
			delay:     cfg.LinkDelay,
			qcap:      cfg.QueueCap,
			pqcap:     cfg.PrioQueueCap,
			ecnThresh: cfg.ECNThreshold,
			trimMode:  cfg.TrimMode,
		}
	}
	for r := 0; r < t.Nr(); r++ {
		n.routerOut[r] = make(map[int32]*link, t.G.Degree(r))
	}
	for _, e := range t.G.Edges() {
		n.routerOut[e.U][e.V] = mk(e.V, -1)
		n.routerOut[e.V][e.U] = mk(e.U, -1)
	}
	for h := 0; h < t.N(); h++ {
		r := int32(t.RouterOf(h))
		n.hostUp[h] = mk(r, -1)
		n.hostDown[h] = mk(-1, int32(h))
	}
	return n
}

// sendFromHost injects a packet at its source host's uplink.
func (n *Network) sendFromHost(p *Packet) {
	n.inflight++
	if n.inflight > n.inflightHW {
		n.inflightHW = n.inflight
	}
	n.hostUp[p.SrcHost].enqueue(p)
}

// free retires a dead packet: the in-flight tally drops and the struct
// returns to the pool.
func (n *Network) free(p *Packet) {
	n.inflight--
	freePacket(p)
}

// deliver handles a packet arriving at the receiving end of a link. A
// packet handed to its destination host is dead once the transport handler
// returns (no handler retains it) and goes back to the pool.
func (n *Network) deliver(l *link, p *Packet) {
	if l.toHost >= 0 {
		n.DeliveredData++
		if p.Kind == KindData {
			h := p.Hops
			if h > maxHopBucket {
				h = maxHopBucket
			}
			n.hopHist[h]++
		}
		n.hostRecv(l.toHost, p)
		n.free(p)
		return
	}
	n.forward(int(l.toRouter), p)
}

// forward routes a packet at a router: it hashes the packet onto the
// layer's real ECMP candidate set (§V-C) read from the shared routing
// tables. A layer of -1 (ECMP/LetFlow/spray senders) means minimal
// routing over the full topology, which is exactly layer 0. Packets of
// one flowlet keep a consistent hop at every router; a new flowlet's
// fresh salt re-hashes the whole path.
func (n *Network) forward(r int, p *Packet) {
	dstRouter := n.topo.RouterOf(int(p.DstHost))
	if r == dstRouter {
		n.hostDown[p.DstHost].enqueue(p)
		return
	}
	p.Hops++
	layer := int(p.Layer)
	if layer < 0 {
		layer = 0
	}
	cands := n.fwd.Candidates(layer, r, dstRouter)
	if len(cands) == 0 && layer != 0 {
		// Routing hole in a sparse layer: fall back to the full layer.
		layer = 0
		cands = n.fwd.Candidates(0, r, dstRouter)
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("netsim: no route from router %d to router %d", r, dstRouter))
	}
	var next int32
	if n.cfg.LB == LBMinimalLayer {
		// The single-shortest-path baseline must not spread flows over
		// ties: every pair rides the frozen representative hop.
		next = n.fwd.Next(layer, r, dstRouter)
	} else {
		next = hashNext(cands, r, p)
	}
	n.routerOut[r][next].enqueue(p)
}

// TotalDrops sums packet drops over all links.
func (n *Network) TotalDrops() int64 {
	var d int64
	for _, m := range n.routerOut {
		for _, l := range m {
			d += l.Drops
		}
	}
	for _, l := range n.hostUp {
		d += l.Drops
	}
	for _, l := range n.hostDown {
		d += l.Drops
	}
	return d
}

// TotalTrims sums NDP payload trims over all links.
func (n *Network) TotalTrims() int64 {
	var d int64
	for _, m := range n.routerOut {
		for _, l := range m {
			d += l.Trims
		}
	}
	for _, l := range n.hostUp {
		d += l.Trims
	}
	for _, l := range n.hostDown {
		d += l.Trims
	}
	return d
}

// LinkUtilization summarizes router-router link usage over the run: the
// fraction of the run each link spent transmitting, aggregated to mean and
// max (observability for layer-sweep analyses; Fig 12 discussion).
func (n *Network) LinkUtilization(elapsed Time) (mean, max float64) {
	if elapsed <= 0 {
		return 0, 0
	}
	var sum float64
	count := 0
	for _, m := range n.routerOut {
		for _, l := range m {
			busy := float64(l.TxBytes*8) / l.bps / elapsed.Seconds()
			sum += busy
			count++
			if busy > max {
				max = busy
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), max
}
