package netsim

import (
	"fmt"
	"slices"

	"repro/internal/layers"
	"repro/internal/topo"
)

// PktKind distinguishes packet roles.
type PktKind uint8

// Packet kinds.
const (
	KindData PktKind = iota
	KindAck
	KindPull // NDP receiver-driven credit
	KindNack // NDP trimmed-header notification is delivered as the trimmed data packet itself; Nack is unused on the wire but kept for clarity in tests
)

// HeaderBytes is the wire size of a packet header / control packet.
const HeaderBytes = 64

// Packet is the unit of transmission.
type Packet struct {
	FlowID  int32
	SrcHost int32
	DstHost int32
	Seq     int32
	Bytes   int32 // current wire size (payload trimmed packets shrink)
	Kind    PktKind
	Layer   int8   // >= 0: layered forwarding; -1: ECMP over minimal paths
	Salt    uint32 // per-flowlet salt for ECMP/LetFlow hashing
	Trimmed bool   // payload dropped by a congested router (NDP mode)
	Retx    bool   // retransmission (priority-queued in NDP mode)
	ECN     bool   // congestion-experienced mark
	Fin     bool   // NDP pull: transfer complete, sender may quiesce
	Hops    int32  // router-router hops traversed (observability)
}

func (p *Packet) prio() bool { return p.Kind != KindData || p.Trimmed || p.Retx }

// link is one direction of a full-duplex cable with an output queue at its
// transmitter. Its mutable state (queues, busy flag, stats, delivery
// sequence) is touched only by events of the transmitting partition, so a
// link never needs a lock; id is a construction-order identifier that is
// stable across shard counts and keys the canonical delivery order.
type link struct {
	net      *Network
	id       int32
	toRouter int32 // receiving router, or -1
	toHost   int32 // receiving host, or -1
	txPart   int32 // partition owning the transmit queue
	rxPart   int32 // partition where deliveries execute

	bps       float64
	delay     Time
	qcap      int // data queue capacity (packets)
	pqcap     int // priority queue capacity
	ecnThresh int // mark CE when data queue length reaches this (0 = off)
	trimMode  bool

	q          []*Packet
	pq         []*Packet
	busy       bool
	failed     bool // dead cable: every packet handed to it is lost (§V-G)
	deliverSeq uint32

	// Stats.
	Drops, Trims, TxPackets, TxBytes int64
	failDrops                        int64
}

// txTime returns the serialization time of b bytes.
func (l *link) txTime(b int32) Time {
	return Time(float64(b*8) / l.bps * 1e9)
}

// enqueue places a packet into the transmitter queue, applying the
// configured congestion behaviour: ECN marking, NDP payload trimming into
// the priority queue (§III-C), or tail drop. Dropped packets return to the
// executing shard's arena — nothing references them once they leave the
// queues.
func (l *link) enqueue(sh *Shard, p *Packet) {
	if l.failed {
		l.failDrops++
		l.net.free(sh, p)
		return
	}
	if p.prio() {
		if len(l.pq) < l.pqcap {
			l.pq = append(l.pq, p)
			l.kick(sh)
		} else {
			l.Drops++
			l.net.free(sh, p)
		}
		return
	}
	if len(l.q) < l.qcap {
		if l.ecnThresh > 0 && len(l.q)+1 >= l.ecnThresh {
			p.ECN = true
		}
		l.q = append(l.q, p)
		l.kick(sh)
		return
	}
	if l.trimMode {
		// Drop only the payload; the header with all metadata is preserved
		// and prioritized so the receiver learns about the congestion.
		p.Trimmed = true
		p.Bytes = HeaderBytes
		if len(l.pq) < l.pqcap {
			l.Trims++
			l.pq = append(l.pq, p)
			l.kick(sh)
		} else {
			l.Drops++
			l.net.free(sh, p)
		}
		return
	}
	l.Drops++
	l.net.free(sh, p)
}

// kick starts transmitting if idle. Priority traffic (control packets,
// trimmed headers, retransmissions) is served first (§III-C).
func (l *link) kick(sh *Shard) {
	if l.busy {
		return
	}
	var p *Packet
	if len(l.pq) > 0 {
		p = l.pq[0]
		l.pq = l.pq[1:]
	} else if len(l.q) > 0 {
		p = l.q[0]
		l.q = l.q[1:]
	} else {
		return
	}
	l.busy = true
	l.TxPackets++
	l.TxBytes += int64(p.Bytes)
	// Typed event: the engine frees the link, restarts it, and schedules
	// the delivery — without allocating per-packet closures.
	sh.afterTxDone(l.txTime(p.Bytes), l, p)
}

// queueLen reports the current data-queue occupancy (tests/observability).
func (l *link) queueLen() int { return len(l.q) }

// Network wires a topology, forwarding tables and hosts into a running
// simulation.
type Network struct {
	eng  *Engine
	topo *topo.Topology
	fwd  *layers.Forwarding
	cfg  Config

	// routerOut[r] maps neighbor router -> transmitting link.
	routerOut []map[int32]*link
	hostUp    []*link // host -> its router
	hostDown  []*link // router -> host

	hostRecv func(sh *Shard, host int32, p *Packet)
}

// maxHopBucket saturates the hop histogram's index.
const maxHopBucket = 63

// buildNetwork constructs links per the config. Link ids follow
// construction order — router-router edges first (both directions per
// edge, in the topology's edge order), then host up/down pairs — which is
// deterministic and independent of the shard count.
func buildNetwork(eng *Engine, t *topo.Topology, fwd *layers.Forwarding, cfg Config) *Network {
	n := &Network{
		eng:       eng,
		topo:      t,
		fwd:       fwd,
		cfg:       cfg,
		routerOut: make([]map[int32]*link, t.Nr()),
		hostUp:    make([]*link, t.N()),
		hostDown:  make([]*link, t.N()),
	}
	nextID := int32(0)
	mk := func(txPart, rxPart, toRouter, toHost int32) *link {
		l := &link{
			net:       n,
			id:        nextID,
			toRouter:  toRouter,
			toHost:    toHost,
			txPart:    txPart,
			rxPart:    rxPart,
			bps:       cfg.LinkBps,
			delay:     cfg.LinkDelay,
			qcap:      cfg.QueueCap,
			pqcap:     cfg.PrioQueueCap,
			ecnThresh: cfg.ECNThreshold,
			trimMode:  cfg.TrimMode,
		}
		nextID++
		return l
	}
	for r := 0; r < t.Nr(); r++ {
		n.routerOut[r] = make(map[int32]*link, t.G.Degree(r))
	}
	for _, e := range t.G.Edges() {
		n.routerOut[e.U][e.V] = mk(e.U, e.V, e.V, -1)
		n.routerOut[e.V][e.U] = mk(e.V, e.U, e.U, -1)
	}
	for h := 0; h < t.N(); h++ {
		r := int32(t.RouterOf(h))
		n.hostUp[h] = mk(r, r, r, -1)
		n.hostDown[h] = mk(r, r, -1, int32(h))
	}
	return n
}

// sendFromHost injects a packet at its source host's uplink. It must run
// on the shard owning the source host's partition.
func (n *Network) sendFromHost(sh *Shard, p *Packet) {
	sh.inflight++
	if sh.inflight > sh.inflightHW {
		sh.inflightHW = sh.inflight
	}
	n.hostUp[p.SrcHost].enqueue(sh, p)
}

// free retires a dead packet: the in-flight tally drops and the struct
// returns to the executing shard's arena.
func (n *Network) free(sh *Shard, p *Packet) {
	sh.inflight--
	sh.freePacket(p)
}

// deliver handles a packet arriving at the receiving end of a link. A
// packet handed to its destination host is dead once the transport handler
// returns (no handler retains it) and goes back to the arena.
func (n *Network) deliver(sh *Shard, l *link, p *Packet) {
	if l.toHost >= 0 {
		sh.delivered++
		if p.Kind == KindData {
			h := p.Hops
			if h > maxHopBucket {
				h = maxHopBucket
			}
			sh.hopHist[h]++
		}
		n.hostRecv(sh, l.toHost, p)
		n.free(sh, p)
		return
	}
	n.forward(sh, int(l.toRouter), p)
}

// forward routes a packet at a router: it hashes the packet onto the
// layer's real ECMP candidate set (§V-C) read from the shared routing
// tables. A layer of -1 (ECMP/LetFlow/spray senders) means minimal
// routing over the full topology, which is exactly layer 0. Packets of
// one flowlet keep a consistent hop at every router; a new flowlet's
// fresh salt re-hashes the whole path.
func (n *Network) forward(sh *Shard, r int, p *Packet) {
	dstRouter := n.topo.RouterOf(int(p.DstHost))
	if r == dstRouter {
		n.hostDown[p.DstHost].enqueue(sh, p)
		return
	}
	p.Hops++
	layer := int(p.Layer)
	if layer < 0 {
		layer = 0
	}
	cands := n.fwd.Candidates(layer, r, dstRouter)
	if len(cands) == 0 && layer != 0 {
		// Routing hole in a sparse layer: fall back to the full layer.
		layer = 0
		cands = n.fwd.Candidates(0, r, dstRouter)
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("netsim: no route from router %d to router %d", r, dstRouter))
	}
	var next int32
	if n.cfg.LB == LBMinimalLayer {
		// The single-shortest-path baseline must not spread flows over
		// ties: every pair rides the frozen representative hop.
		next = n.fwd.Next(layer, r, dstRouter)
	} else {
		next = hashNext(cands, r, p)
	}
	n.routerOut[r][next].enqueue(sh, p)
}

// DeliveredData counts packets handed to their destination hosts, summed
// over shards (read between runs).
func (n *Network) DeliveredData() int64 {
	var d int64
	for _, sh := range n.eng.shards {
		d += sh.delivered
	}
	return d
}

// TotalDrops sums packet drops over all links.
func (n *Network) TotalDrops() int64 {
	var d int64
	for _, m := range n.routerOut {
		for _, l := range m {
			d += l.Drops
		}
	}
	for _, l := range n.hostUp {
		d += l.Drops
	}
	for _, l := range n.hostDown {
		d += l.Drops
	}
	return d
}

// TotalTrims sums NDP payload trims over all links.
func (n *Network) TotalTrims() int64 {
	var d int64
	for _, m := range n.routerOut {
		for _, l := range m {
			d += l.Trims
		}
	}
	for _, l := range n.hostUp {
		d += l.Trims
	}
	for _, l := range n.hostDown {
		d += l.Trims
	}
	return d
}

// LinkUtilization summarizes router-router link usage over the run: the
// fraction of the run each link spent transmitting, aggregated to mean and
// max (observability for layer-sweep analyses; Fig 12 discussion).
func (n *Network) LinkUtilization(elapsed Time) (mean, max float64) {
	if elapsed <= 0 {
		return 0, 0
	}
	// Iterate neighbor maps in sorted order: float accumulation rounds
	// differently per order, so summing in map order would make the low
	// bits of the reported mean depend on the runtime's map hashing.
	var sum float64
	count := 0
	for _, m := range n.routerOut {
		nbrs := make([]int32, 0, len(m))
		for v := range m {
			nbrs = append(nbrs, v)
		}
		slices.Sort(nbrs)
		for _, v := range nbrs {
			l := m[v]
			busy := float64(l.TxBytes*8) / l.bps / elapsed.Seconds()
			sum += busy
			count++
			if busy > max {
				max = busy
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), max
}
