package netsim

// TCP Reno and DCTCP senders over the simulated fabric (§VII-A6, §VIII):
// slow start, congestion avoidance, triple-duplicate-ACK fast retransmit
// with fast recovery, retransmission timeouts with a 200µs floor and
// exponential backoff, ECN echo, and — for DCTCP — the fractional window
// law driven by the marked-byte estimate α.
//
// All sender handlers run on the source host's partition and all receiver
// handlers on the destination's; completion is decided on each side from
// its own state (cumAck at the sender, cumExpected at the receiver), never
// by peeking across.

const (
	dctcpG       = 1.0 / 16 // DCTCP EWMA gain
	maxRTO       = 100 * Millisecond
	initialCwndF = 10.0
)

// tcpStart opens a flow in slow start.
func (s *Sim) tcpStart(sh *Shard, f *flow) {
	f.snd.cwnd = initialCwndF
	if s.Cfg.InitialWindow > 0 {
		f.snd.cwnd = float64(s.Cfg.InitialWindow)
	}
	f.snd.ssthresh = 1 << 20
	f.snd.alphaWindowEnd = 0
	s.tcpTrySend(sh, f)
	s.tcpArmRTO(sh, f)
}

// tcpTrySend transmits while the congestion window allows. Sending with an
// idle retransmission timer re-arms it so tail losses cannot stall a flow.
func (s *Sim) tcpTrySend(sh *Shard, f *flow) {
	sent := false
	for f.snd.nextNew < f.total {
		inflight := float64(f.snd.nextNew - f.snd.cumAck)
		if inflight >= f.snd.cwnd {
			break
		}
		s.tcpSendData(sh, f, f.snd.nextNew, false)
		f.snd.nextNew++
		sent = true
	}
	if sent {
		s.tcpArmRTO(sh, f)
	}
}

func (s *Sim) tcpSendData(sh *Shard, f *flow, seq int32, retx bool) {
	s.pickRoute(sh, f)
	size := f.mss + HeaderBytes
	if int64(seq+1)*int64(f.mss) > f.spec.Bytes {
		rem := f.spec.Bytes - int64(seq)*int64(f.mss)
		if rem < 1 {
			rem = 1
		}
		size = int32(rem) + HeaderBytes
	}
	p := sh.newPacket()
	*p = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Src,
		DstHost: f.spec.Dst,
		Seq:     seq,
		Bytes:   size,
		Kind:    KindData,
		Layer:   f.layer,
		Salt:    f.salt,
		Retx:    retx,
	}
	if retx {
		f.snd.retxCount++
	} else {
		f.snd.sendTime[seq] = sh.Now()
	}
	s.Net.sendFromHost(sh, p)
}

// tcpRecv dispatches data at the receiver and ACKs at the sender.
func (s *Sim) tcpRecv(sh *Shard, f *flow, host int32, p *Packet) {
	switch p.Kind {
	case KindData:
		if host != f.spec.Dst {
			return
		}
		s.tcpDataAtReceiver(sh, f, p)
	case KindAck:
		if host != f.spec.Src {
			return
		}
		s.tcpAckAtSender(sh, f, p)
	}
}

func (s *Sim) tcpDataAtReceiver(sh *Shard, f *flow, p *Packet) {
	if !f.received[p.Seq] {
		f.received[p.Seq] = true
		f.numReceived++
	}
	for f.cumExpected < f.total && f.received[f.cumExpected] {
		f.cumExpected++
	}
	if f.cumExpected == f.total {
		s.markDone(sh, f)
	}
	// Cumulative ACK; ECN echo reflects the CE mark of this data packet
	// (per-packet echo, sufficient for the DCTCP estimator).
	ack := sh.newPacket()
	*ack = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Dst,
		DstHost: f.spec.Src,
		Seq:     f.cumExpected,
		Bytes:   HeaderBytes,
		Kind:    KindAck,
		Layer:   s.controlLayer(f.spec.Dst, f.spec.Src),
		ECN:     p.ECN,
	}
	s.Net.sendFromHost(sh, ack)
}

func (s *Sim) tcpAckAtSender(sh *Shard, f *flow, ack *Packet) {
	snd := &f.snd
	cum := ack.Seq
	switch {
	case cum > snd.cumAck:
		newly := cum - snd.cumAck
		// RTT sample from the highest newly acked original transmission.
		if st := snd.sendTime[cum-1]; st > 0 {
			s.tcpUpdateRTT(f, sh.Now()-st)
		}
		snd.cumAck = cum
		snd.dupacks = 0
		if snd.inRecovery {
			if cum >= snd.recover {
				snd.inRecovery = false
				snd.cwnd = snd.ssthresh
			} else {
				// NewReno partial ACK: the next hole is at cum —
				// retransmit it immediately instead of waiting for an RTO.
				s.tcpSendData(sh, f, cum, true)
			}
		}
		if !snd.inRecovery {
			if snd.cwnd < snd.ssthresh {
				snd.cwnd += float64(newly) // slow start
			} else {
				snd.cwnd += float64(newly) / snd.cwnd // congestion avoidance
			}
		}
		// ECN response.
		if s.Cfg.Transport == TransportDCTCP {
			snd.totalAcked += int64(newly)
			if ack.ECN {
				snd.ceAcked += int64(newly)
			}
			if cum >= snd.alphaWindowEnd {
				frac := 0.0
				if snd.totalAcked > 0 {
					frac = float64(snd.ceAcked) / float64(snd.totalAcked)
				}
				snd.alpha = (1-dctcpG)*snd.alpha + dctcpG*frac
				if frac > 0 {
					snd.cwnd = snd.cwnd * (1 - snd.alpha/2)
					if snd.cwnd < 1 {
						snd.cwnd = 1
					}
					snd.ssthresh = snd.cwnd
					// A window cut is a natural flowlet boundary: FatPaths
					// re-randomizes the layer here (§VIII-A1).
					if s.Cfg.LB == LBFatPaths {
						s.reselectLayer(f)
					}
				}
				snd.ceAcked, snd.totalAcked = 0, 0
				snd.alphaWindowEnd = snd.nextNew
			}
		} else if ack.ECN && cum > snd.lastCutSeq {
			// Reno+ECN: halve once per window on echoed congestion.
			snd.ssthresh = snd.cwnd / 2
			if snd.ssthresh < 2 {
				snd.ssthresh = 2
			}
			snd.cwnd = snd.ssthresh
			snd.lastCutSeq = snd.nextNew
			if s.Cfg.LB == LBFatPaths {
				s.reselectLayer(f)
			}
		}
		s.tcpArmRTO(sh, f)
	case cum == snd.cumAck && cum < f.total:
		snd.dupacks++
		if snd.dupacks == 3 && !snd.inRecovery {
			// Fast retransmit + fast recovery.
			snd.ssthresh = snd.cwnd / 2
			if snd.ssthresh < 2 {
				snd.ssthresh = 2
			}
			snd.cwnd = snd.ssthresh + 3
			snd.inRecovery = true
			snd.recover = snd.nextNew
			s.tcpSendData(sh, f, cum, true)
			if s.Cfg.LB == LBFatPaths {
				s.reselectLayer(f) // loss signals congestion on this layer
			}
			s.tcpArmRTO(sh, f)
		} else if snd.inRecovery {
			snd.cwnd++ // window inflation per dupack
		}
	}
	s.tcpTrySend(sh, f)
}

func (s *Sim) tcpUpdateRTT(f *flow, sample Time) {
	snd := &f.snd
	if snd.srtt == 0 {
		snd.srtt = sample
		snd.rttvar = sample / 2
	} else {
		diff := snd.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		snd.rttvar = (3*snd.rttvar + diff) / 4
		snd.srtt = (7*snd.srtt + sample) / 8
	}
	snd.rto = snd.srtt + 4*snd.rttvar
	if snd.rto < s.Cfg.RTOMin {
		snd.rto = s.Cfg.RTOMin
	}
	if snd.rto > maxRTO {
		snd.rto = maxRTO
	}
}

// tcpArmRTO (re)arms the retransmission timer on the sender's partition.
func (s *Sim) tcpArmRTO(sh *Shard, f *flow) {
	snd := &f.snd
	snd.rtoGen++
	gen := snd.rtoGen
	rto := snd.rto
	if rto <= 0 {
		rto = 1 * Millisecond
	}
	sh.after(f.srcPart, rto, func(sh *Shard) { s.tcpRTOFire(sh, f, gen) })
}

func (s *Sim) tcpRTOFire(sh *Shard, f *flow, gen int64) {
	snd := &f.snd
	// Completion is judged from sender state alone (cumAck): the receiver's
	// done flag lives on another partition.
	if gen != snd.rtoGen || snd.cumAck >= f.total {
		return
	}
	if snd.cumAck >= snd.nextNew {
		// Nothing outstanding; timer idles until the next send.
		return
	}
	// Timeout: multiplicative backoff, window collapse, go-back-N restart
	// (retransmit everything from the first hole, as SACK-less Reno does;
	// duplicates are discarded by the receiver).
	snd.timeouts++
	snd.ssthresh = snd.cwnd / 2
	if snd.ssthresh < 2 {
		snd.ssthresh = 2
	}
	snd.cwnd = 1
	snd.dupacks = 0
	snd.inRecovery = false
	snd.rto *= 2
	if snd.rto > maxRTO {
		snd.rto = maxRTO
	}
	snd.retxCount += int64(snd.nextNew - snd.cumAck)
	snd.nextNew = snd.cumAck
	s.tcpTrySend(sh, f)
	if s.Cfg.LB == LBFatPaths {
		s.reselectLayer(f)
	}
	s.tcpArmRTO(sh, f)
}
