package netsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
)

func TestFailRouterLink(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 1)
	e := sf.G.Edge(0)
	if !s.Net.FailRouterLink(int(e.U), int(e.V)) {
		t.Fatal("failing an existing link must succeed")
	}
	if s.Net.FailRouterLink(0, 0) {
		t.Fatal("failing a non-link must report false")
	}
}

func TestFatPathsSurvivesLinkFailures(t *testing.T) {
	// §V-G: preprovisioned layers + flowlet redirection route around dead
	// links without recomputation.
	cfg := NDPDefaults()
	cfg.LB = LBFatPaths
	s, sf := sfSim(t, 5, 9, 0.6, cfg, 2)
	rng := graph.NewRand(3)
	failed := s.Net.FailRandomLinks(sf.G.M()/20, rng) // 5% of links
	if len(failed) == 0 {
		t.Fatal("no links failed")
	}
	for i := 0; i < 40; i++ {
		src, dst := graph.SampleDistinctPair(rng, sf.N())
		s.AddFlow(FlowSpec{Src: int32(src), Dst: int32(dst), Bytes: 64 << 10})
	}
	res := s.Run(4 * Second)
	if frac := CompletedFraction(res); frac < 1.0 {
		t.Fatalf("only %.2f of flows completed despite layer redundancy", frac)
	}
	if s.Net.FailedPacketCount() == 0 {
		t.Log("note: no packet happened to hit a failed link (routing avoided them)")
	}
}

func TestPinnedMinimalFlowStallsOnFailure(t *testing.T) {
	// Contrast for the test above: a flow pinned to the single minimal
	// path stalls when that path dies — multipathing is what saves
	// FatPaths, not the transport.
	cfg := NDPDefaults()
	cfg.LB = LBMinimalLayer
	s, sf := sfSim(t, 5, 1, 1.0, cfg, 4)
	// Choose endpoints on adjacent routers and kill the direct link; the
	// static layer-0 route 0->neighbor uses it.
	srcRouter := 0
	h := sf.G.Neighbors(srcRouter)[0]
	dstRouter := int(h.To)
	// Find the exact next hop layer 0 uses and break that link.
	next := int(s.Fwd.Next(0, srcRouter, dstRouter))
	if !s.Net.FailRouterLink(srcRouter, next) {
		t.Fatal("could not fail the next-hop link")
	}
	srcLo, _ := sf.Endpoints(srcRouter)
	dstLo, _ := sf.Endpoints(dstRouter)
	s.AddFlow(FlowSpec{Src: int32(srcLo), Dst: int32(dstLo), Bytes: 64 << 10})
	res := s.Run(500 * Millisecond)
	if res[0].Done {
		t.Fatal("pinned minimal-path flow should stall on a dead link")
	}
	if s.Net.FailedPacketCount() == 0 {
		t.Fatal("packets should have died on the failed link")
	}
}

func TestLayerRecomputationAfterFailure(t *testing.T) {
	// §V-G major-update path: recompute forwarding on the surviving links.
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := graph.NewRand(5)
	ls, err := layers.Random(sf.G, 4, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	failed := []int{0, 1, 2}
	repaired := ls.WithoutEdges(failed)
	if repaired.Layers[0].EdgeCount != sf.G.M()-3 {
		t.Fatalf("repaired full layer has %d edges, want %d", repaired.Layers[0].EdgeCount, sf.G.M()-3)
	}
	// Incremental per-destination repair of the routing tables.
	fwd := layers.NewForwarding(ls, 5).WithoutEdges(failed)
	// Layer 0 on the residual graph still routes everything (SF survives
	// three link failures easily).
	for s := 0; s < sf.Nr(); s += 5 {
		for d := 0; d < sf.Nr(); d += 7 {
			if s != d && !fwd.Reachable(0, s, d) {
				t.Fatalf("repaired layer 0 cannot route %d->%d", s, d)
			}
		}
	}
	// And the repaired tables never offer a failed edge as a candidate in
	// any layer.
	mask := MaskedForwardingInput(sf.G, failed)
	for l := 0; l < fwd.NumLayers(); l++ {
		for s := 0; s < sf.Nr(); s++ {
			for d := 0; d < sf.Nr(); d++ {
				if s == d {
					continue
				}
				for _, nh := range fwd.Candidates(l, s, d) {
					id := sf.G.EdgeBetween(s, int(nh))
					if !mask[id] {
						t.Fatalf("repaired layer %d routes %d->%d over failed edge %d", l, s, d, id)
					}
				}
			}
		}
	}
}

// TestFailRandomLinksExactCount: FailRandomLinks must fail exactly count
// links even when some edge IDs have no failable router-router entry —
// the fixed undercount bug drew only the first count permutation samples
// and silently dropped the unfailable ones instead of drawing
// replacements from the rest of the permutation.
func TestFailRandomLinksExactCount(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 2, 0.8, cfg, 11)
	// Remove the router-router entries of a third of the edges: those edge
	// IDs still exist in the graph but FailRouterLink reports false for
	// them, exactly the shape of a topology whose edge list is wider than
	// its failable link set.
	unfailable := 0
	for id := 0; id < sf.G.M(); id += 3 {
		e := sf.G.Edge(id)
		delete(s.Net.routerOut[e.U], e.V)
		delete(s.Net.routerOut[e.V], e.U)
		unfailable++
	}
	want := sf.G.M() / 4
	if want <= unfailable/2 {
		t.Fatalf("test wants a count (%d) large enough to overlap unfailable draws (%d)", want, unfailable)
	}
	failed := s.Net.FailRandomLinks(want, graph.NewRand(13))
	if len(failed) != want {
		t.Fatalf("failed %d links, want exactly %d (undercount regression)", len(failed), want)
	}
	seen := map[int]bool{}
	for _, id := range failed {
		if seen[id] {
			t.Fatalf("edge %d failed twice", id)
		}
		seen[id] = true
		e := sf.G.Edge(id)
		if _, ok := s.Net.routerOut[e.U][e.V]; !ok {
			t.Fatalf("reported edge %d has no router-router entry", id)
		}
	}
	// Asking for more than the failable supply fails everything failable
	// and stops, instead of looping or overcounting.
	s.Net.HealAllLinks()
	all := s.Net.FailRandomLinks(sf.G.M(), graph.NewRand(17))
	if got, wantAll := len(all), sf.G.M()-unfailable; got != wantAll {
		t.Fatalf("graph-exhausting request failed %d links, want all %d failable", got, wantAll)
	}
}

func TestHealAllLinks(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 2, 0.8, cfg, 6)
	s.Net.FailRandomLinks(10, graph.NewRand(7))
	s.Net.HealAllLinks()
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 32 << 10})
	res := s.Run(1 * Second)
	if !res[0].Done {
		t.Fatal("healed network must route")
	}
	if s.Net.FailedPacketCount() != 0 {
		t.Fatal("no packets should die after healing")
	}
}

func TestPinnedLayerFlows(t *testing.T) {
	cfg := TCPDefaults(TransportTCP)
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 8)
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 64 << 10, Pinned: true, PinLayer: 2})
	res := s.Run(2 * Second)
	if !res[0].Done {
		t.Fatal("pinned flow did not complete")
	}
	// Out-of-range pin panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range pin")
		}
	}()
	s.AddFlow(FlowSpec{Src: 0, Dst: 1, Bytes: 100, Pinned: true, PinLayer: 99})
}
