package netsim

// Per-shard event storage. The heap is the simulator's hottest data
// structure, so two layout decisions matter:
//
//   - 4-ary instead of binary: sift paths are half as deep and the four
//     children of a node share cache lines, which beats the binary heap's
//     pointer-chasing-like jumps on large queues (see
//     BenchmarkNetsimReplicate).
//   - Struct-of-arrays: the ordering key (at, key) lives in two dense
//     slices the sift loops touch exclusively; the payload (callback /
//     link / packet operands) sits in a parallel slice that is only moved,
//     never compared.
//
// Ordering is (at, key): key is the canonical event key (see engine.go),
// which makes heap order — and therefore execution order — independent of
// the shard count.

// eventPayload is the non-key part of an event.
type eventPayload struct {
	kind eventKind
	fn   func(*Shard) // evFunc only
	link *link        // evTxDone, evDeliver
	pkt  *Packet      // evTxDone, evDeliver
}

type eventHeap struct {
	at  []Time
	key []uint64
	pay []eventPayload
}

func (h *eventHeap) len() int { return len(h.at) }

// minAt returns the earliest queued time, or maxTime when empty.
func (h *eventHeap) minAt() Time {
	if len(h.at) == 0 {
		return maxTime
	}
	return h.at[0]
}

func (h *eventHeap) push(at Time, key uint64, pay eventPayload) {
	h.at = append(h.at, at)
	h.key = append(h.key, key)
	h.pay = append(h.pay, pay)
	// Sift up with a hole: the new element is held in registers and written
	// once at its final slot.
	i := len(h.at) - 1
	for i > 0 {
		par := (i - 1) / 4
		if h.at[par] < at || (h.at[par] == at && h.key[par] <= key) {
			break
		}
		h.at[i], h.key[i], h.pay[i] = h.at[par], h.key[par], h.pay[par]
		i = par
	}
	h.at[i], h.key[i], h.pay[i] = at, key, pay
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() (Time, eventPayload) {
	at0, pay0 := h.at[0], h.pay[0]
	last := len(h.at) - 1
	at, key, pay := h.at[last], h.key[last], h.pay[last]
	h.pay[last] = eventPayload{} // clear fn/link/pkt for the GC
	h.at, h.key, h.pay = h.at[:last], h.key[:last], h.pay[:last]
	if last > 0 {
		// Sift the former tail down from the root, again with a hole.
		i := 0
		for {
			kid := 4*i + 1
			if kid >= last {
				break
			}
			end := kid + 4
			if end > last {
				end = last
			}
			m := kid
			for c := kid + 1; c < end; c++ {
				if h.at[c] < h.at[m] || (h.at[c] == h.at[m] && h.key[c] < h.key[m]) {
					m = c
				}
			}
			if at < h.at[m] || (at == h.at[m] && key <= h.key[m]) {
				break
			}
			h.at[i], h.key[i], h.pay[i] = h.at[m], h.key[m], h.pay[m]
			i = m
		}
		h.at[i], h.key[i], h.pay[i] = at, key, pay
	}
	return at0, pay0
}
