package netsim

import (
	"sync"

	"repro/internal/obs"
)

// windowOccupancyBounds aliases the shared histogram bounds so shards can
// bucket window occupancy locally without touching the registry per window.
var windowOccupancyBounds = obs.WindowOccupancyBuckets

// Conservative parallel execution. The engine advances in synchronization
// windows of lookahead length: with gvt the earliest queued time anywhere,
// every shard may drain its local events in [gvt, gvt+lookahead)
// independently, because any event one shard creates for another — a link
// delivery — is scheduled at least one link delay (>= lookahead) after its
// cause, i.e. at or beyond the window end. Cross-shard events accumulate
// in per-destination outboxes during the window and merge into the target
// heaps at the barrier, single-threaded, before the next window begins.
// The merge order is irrelevant to results: heaps order by the canonical
// (at, key), which is shard-count-invariant by construction (engine.go).

// runParallel drives the shard workers window by window.
func (e *Engine) runParallel(until Time) int {
	before := e.Executed()
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		sh.cmd = make(chan Time, 1)
		sh.done = make(chan struct{}, 1)
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			for wend := range sh.cmd {
				ran := sh.drain(wend, until)
				sh.windows++
				if ran == 0 {
					sh.stalls++
				}
				sh.occ[occBucket(ran)]++
				sh.done <- struct{}{}
			}
		}(sh)
	}

	for {
		gvt := maxTime
		for _, sh := range e.shards {
			if t := sh.heap.minAt(); t < gvt {
				gvt = t
			}
		}
		if gvt == maxTime || gvt > until {
			break
		}
		wend := gvt + e.lookahead
		for _, sh := range e.shards {
			sh.cmd <- wend
		}
		for _, sh := range e.shards {
			<-sh.done
		}
		// Barrier merge: move every outboxed delivery into its target heap.
		// The channel round-trip above orders these accesses with the
		// workers' (now idle) window drains.
		for _, src := range e.shards {
			for d, box := range src.outbox {
				if len(box) == 0 {
					continue
				}
				dst := e.shards[d]
				for i := range box {
					dst.push(box[i].at, box[i].key, box[i].pay)
					box[i] = outEvent{} // drop payload references
				}
				src.outbox[d] = box[:0]
			}
		}
		e.windows++
	}

	for _, sh := range e.shards {
		close(sh.cmd)
	}
	wg.Wait()

	empty := true
	e.now = 0
	for _, sh := range e.shards {
		if sh.now > e.now {
			e.now = sh.now
		}
		if sh.heap.len() > 0 {
			empty = false
		}
	}
	if empty && e.now < until {
		e.now = until
	}
	return int(e.Executed() - before)
}

// occBucket maps a window's executed-event count onto the shared
// window-occupancy histogram bounds (index len(bounds) is overflow).
func occBucket(ran int64) int {
	for i, b := range windowOccupancyBounds {
		if float64(ran) <= b {
			return i
		}
	}
	return len(windowOccupancyBounds)
}
