package netsim

import (
	mrand "math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func(*Shard) { order = append(order, 1) })
	e.At(5, func(*Shard) { order = append(order, 0) })
	e.At(10, func(*Shard) { order = append(order, 2) }) // same-time FIFO
	n := e.Run(100)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order=%v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("now=%d, want horizon 100", e.Now())
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(1000, func(*Shard) { fired = true })
	e.Run(500)
	if fired {
		t.Fatal("event beyond horizon must not fire")
	}
	if e.Pending() != 1 {
		t.Fatal("event should remain queued")
	}
}

// starSim builds a single-switch network with n hosts.
func starSim(t *testing.T, n int, cfg Config) *Sim {
	t.Helper()
	st, err := topo.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := layers.Random(st.G, 1, 1.0, graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	fwd := layers.NewForwarding(ls, 0)
	return NewSim(st, fwd, cfg)
}

func TestNDPSingleFlowLineRate(t *testing.T) {
	cfg := NDPDefaults()
	cfg.LB = LBMinimalLayer
	s := starSim(t, 4, cfg)
	const bytes = 1 << 20 // 1 MiB
	s.AddFlow(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, Start: 0})
	res := s.Run(1 * Second)
	if !res[0].Done {
		t.Fatal("flow did not complete")
	}
	// 1MiB at 10 Gb/s ≈ 0.84 ms serialization; allow up to 3x for the
	// two-hop store-and-forward pipeline and pacing.
	fct := res[0].FCT()
	if fct < 800*Microsecond || fct > 2600*Microsecond {
		t.Fatalf("FCT=%v, want ≈0.9–2.6ms", fct)
	}
	tp := res[0].ThroughputMiBs()
	if tp < 400 {
		t.Fatalf("throughput %.0f MiB/s, want near line rate (~1192 max)", tp)
	}
}

func TestNDPIncastCompletesWithTrims(t *testing.T) {
	cfg := NDPDefaults()
	cfg.LB = LBMinimalLayer
	s := starSim(t, 9, cfg)
	for i := int32(1); i < 9; i++ {
		s.AddFlow(FlowSpec{Src: i, Dst: 0, Bytes: 256 << 10, Start: 0})
	}
	res := s.Run(2 * Second)
	for i, r := range res {
		if !r.Done {
			t.Fatalf("incast flow %d did not complete", i)
		}
	}
	if s.Net.TotalTrims() == 0 {
		t.Fatal("8-to-1 incast with 8-packet queues must trim payloads")
	}
	// NDP's trimming means practically no full drops of data packets.
	if s.Net.TotalDrops() > s.Net.TotalTrims()/4 {
		t.Fatalf("drops=%d vs trims=%d: purified transport should avoid drops",
			s.Net.TotalDrops(), s.Net.TotalTrims())
	}
}

func TestTCPSingleFlowCompletes(t *testing.T) {
	cfg := TCPDefaults(TransportTCP)
	cfg.LB = LBMinimalLayer
	s := starSim(t, 4, cfg)
	s.AddFlow(FlowSpec{Src: 0, Dst: 1, Bytes: 1 << 20, Start: 0})
	res := s.Run(1 * Second)
	if !res[0].Done {
		t.Fatal("TCP flow did not complete")
	}
	// Slow start adds RTTs: allow up to 6ms for 1MiB.
	if fct := res[0].FCT(); fct > 6*Millisecond {
		t.Fatalf("FCT=%v, too slow", fct)
	}
}

func TestTCPFairSharing(t *testing.T) {
	cfg := TCPDefaults(TransportTCP)
	cfg.LB = LBMinimalLayer
	s := starSim(t, 4, cfg)
	// Two long flows into the same destination share its access link.
	s.AddFlow(FlowSpec{Src: 0, Dst: 2, Bytes: 2 << 20, Start: 0})
	s.AddFlow(FlowSpec{Src: 1, Dst: 2, Bytes: 2 << 20, Start: 0})
	res := s.Run(4 * Second)
	if !res[0].Done || !res[1].Done {
		t.Fatal("flows did not complete")
	}
	// Each should get roughly half the line rate: FCT ≈ 2x solo.
	for i, r := range res {
		if r.FCT() < 2500*Microsecond {
			t.Fatalf("flow %d FCT=%v suspiciously fast for a shared link", i, r.FCT())
		}
		if r.FCT() > 20*Millisecond {
			t.Fatalf("flow %d FCT=%v too slow", i, r.FCT())
		}
	}
}

func TestDCTCPMarksAndCompletes(t *testing.T) {
	cfg := TCPDefaults(TransportDCTCP)
	cfg.LB = LBMinimalLayer
	s := starSim(t, 6, cfg)
	for i := int32(1); i < 6; i++ {
		s.AddFlow(FlowSpec{Src: i, Dst: 0, Bytes: 512 << 10, Start: 0})
	}
	res := s.Run(4 * Second)
	for i, r := range res {
		if !r.Done {
			t.Fatalf("DCTCP flow %d did not complete", i)
		}
	}
}

// sfSim builds a Slim Fly network with layered forwarding.
func sfSim(t *testing.T, q, nLayers int, rho float64, cfg Config, seed int64) (*Sim, *topo.Topology) {
	t.Helper()
	sf, err := topo.SlimFly(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := graph.NewRand(seed)
	ls, err := layers.Random(sf.G, nLayers, rho, rng)
	if err != nil {
		t.Fatal(err)
	}
	fwd := layers.NewForwarding(ls, seed)
	return NewSim(sf, fwd, cfg), sf
}

func TestSlimFlyFlowTraversesFabric(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 4, 0.6, cfg, 7)
	// Endpoints on distinct routers.
	src, dst := int32(0), int32(sf.N()-1)
	s.AddFlow(FlowSpec{Src: src, Dst: dst, Bytes: 128 << 10, Start: 0})
	res := s.Run(1 * Second)
	if !res[0].Done {
		t.Fatal("flow did not complete across the fabric")
	}
}

// adversarialCollisions builds the controlled collision workload of the
// §IV-A analysis: all p endpoints of each router send to the next router,
// colliding on single shortest paths.
func adversarialCollisions(sf *topo.Topology, bytes int64) []FlowSpec {
	var flows []FlowSpec
	p := int(sf.MeanConcentration())
	for e := 0; e < sf.N(); e++ {
		d := (e + p) % sf.N()
		flows = append(flows, FlowSpec{Src: int32(e), Dst: int32(d), Bytes: bytes, Start: 0})
	}
	return flows
}

func TestFatPathsBeatsECMPOnCollidingTraffic(t *testing.T) {
	// The paper's headline mechanism: with colliding flows and only one
	// shortest path per router pair, ECMP serializes flows while FatPaths
	// spreads flowlets over non-minimal layers (§VII-B2, Fig 14).
	const q, flowBytes = 5, 256 << 10
	run := func(lb LoadBalance, nLayers int, rho float64) Time {
		cfg := NDPDefaults()
		cfg.LB = lb
		s, sf := sfSim(t, q, nLayers, rho, cfg, 11)
		for _, fs := range adversarialCollisions(sf, flowBytes) {
			s.AddFlow(fs)
		}
		res := s.Run(4 * Second)
		var worst Time
		for i, r := range res {
			if !r.Done {
				t.Fatalf("%v: flow %d incomplete", lb, i)
			}
			if r.FCT() > worst {
				worst = r.FCT()
			}
		}
		return worst
	}
	ecmpTail := run(LBECMP, 1, 1.0)
	fpTail := run(LBFatPaths, 9, 0.6)
	if float64(fpTail) > 0.85*float64(ecmpTail) {
		t.Fatalf("FatPaths tail FCT %v not clearly better than ECMP %v on colliding traffic", fpTail, ecmpTail)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	runOnce := func() []FlowResult {
		cfg := NDPDefaults()
		cfg.Seed = 99
		s, sf := sfSim(t, 5, 4, 0.7, cfg, 42)
		for _, fs := range adversarialCollisions(sf, 64<<10) {
			s.AddFlow(fs)
		}
		return s.Run(2 * Second)
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("result count mismatch")
	}
	for i := range a {
		if a[i].Finish != b[i].Finish || a[i].Retx != b[i].Retx {
			t.Fatalf("flow %d: runs differ (%v vs %v)", i, a[i], b[i])
		}
	}
}

func TestLetFlowAndSprayPolicies(t *testing.T) {
	for _, lb := range []LoadBalance{LBLetFlow, LBPacketSpray, LBECMP} {
		cfg := NDPDefaults()
		cfg.LB = lb
		s, sf := sfSim(t, 5, 1, 1.0, cfg, 3)
		s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 64 << 10, Start: 0})
		res := s.Run(1 * Second)
		if !res[0].Done {
			t.Fatalf("lb=%v: flow did not complete", lb)
		}
	}
}

func TestSummaries(t *testing.T) {
	res := []FlowResult{
		{FlowSpec: FlowSpec{Bytes: 1 << 20, Start: 0}, Done: true, Finish: Time(1 * Millisecond)},
		{FlowSpec: FlowSpec{Bytes: 1 << 20, Start: 0}, Done: false},
	}
	if CompletedFraction(res) != 0.5 {
		t.Fatal("completed fraction wrong")
	}
	fct := SummarizeFCT(res)
	if fct.N != 1 || fct.Mean != 1.0 {
		t.Fatalf("FCT summary %+v", fct)
	}
	tp := SummarizeThroughput(res)
	if tp.N != 1 || tp.Mean < 999 || tp.Mean > 1001 {
		t.Fatalf("throughput summary %+v (want 1000 MiB/s)", tp)
	}
}

func TestAddFlowValidation(t *testing.T) {
	cfg := NDPDefaults()
	s := starSim(t, 4, cfg)
	for _, bad := range []FlowSpec{
		{Src: 1, Dst: 1, Bytes: 100},
		{Src: -1, Dst: 1, Bytes: 100},
		{Src: 0, Dst: 100, Bytes: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddFlow(%+v) should panic", bad)
				}
			}()
			s.AddFlow(bad)
		}()
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	cfg := NDPDefaults()
	s := starSim(t, 3, cfg)
	s.AddFlow(FlowSpec{Src: 0, Dst: 1, Bytes: 10, Start: 0})
	res := s.Run(100 * Millisecond)
	if !res[0].Done {
		t.Fatal("single-packet flow did not complete")
	}
	// RTT-scale completion: two links of ~1µs delay plus tiny serialization
	// plus software latency.
	if res[0].FCT() > 200*Microsecond {
		t.Fatalf("FCT=%v for a 10-byte flow", res[0].FCT())
	}
}

// Invariant: completed flows delivered exactly their payload bytes — the
// simulator conserves data end to end.
func TestByteConservation(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 21)
	specs := []FlowSpec{
		{Src: 0, Dst: int32(sf.N() - 1), Bytes: 100},
		{Src: 1, Dst: int32(sf.N() - 2), Bytes: 9000},
		{Src: 2, Dst: int32(sf.N() - 3), Bytes: 1234567},
	}
	for _, fs := range specs {
		s.AddFlow(fs)
	}
	res := s.Run(2 * Second)
	for i, r := range res {
		if !r.Done {
			t.Fatalf("flow %d incomplete", i)
		}
		f := s.flows[i]
		var payload int64
		for seq := int32(0); seq < f.total; seq++ {
			if !f.received[seq] {
				t.Fatalf("flow %d missing seq %d", i, seq)
			}
			sz := int64(f.mss)
			if int64(seq+1)*int64(f.mss) > f.spec.Bytes {
				sz = f.spec.Bytes - int64(seq)*int64(f.mss)
				if sz < 1 {
					sz = 1
				}
			}
			payload += sz
		}
		if payload < r.Bytes {
			t.Fatalf("flow %d delivered %d bytes, want >= %d", i, payload, r.Bytes)
		}
	}
}

// Invariant: per-link transmit counters are consistent: transmitted packets
// equal deliveries plus in-flight (zero after quiescence) for every flow,
// and no link reports negative stats.
func TestLinkStatsSanity(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 2, 0.8, cfg, 22)
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 256 << 10})
	s.Run(2 * Second)
	check := func(l *link) {
		if l.Drops < 0 || l.Trims < 0 || l.TxPackets < 0 || l.TxBytes < 0 {
			t.Fatal("negative link stats")
		}
		if l.TxPackets > 0 && l.TxBytes < l.TxPackets*HeaderBytes {
			t.Fatal("transmitted bytes below header floor")
		}
	}
	for _, m := range s.Net.routerOut {
		for _, l := range m {
			check(l)
		}
	}
	for _, l := range s.Net.hostUp {
		check(l)
	}
	for _, l := range s.Net.hostDown {
		check(l)
	}
}

// Property: the event engine executes events in non-decreasing time order
// regardless of insertion order.
func TestEngineOrderProperty(t *testing.T) {
	rng := randNew(23)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var times []Time
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			e.At(at, func(sh *Shard) { times = append(times, sh.Now()) })
		}
		e.Run(10000)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatal("events executed out of order")
			}
		}
		if len(times) != n {
			t.Fatalf("executed %d of %d events", len(times), n)
		}
	}
}

func randNew(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

func TestLinkUtilization(t *testing.T) {
	cfg := NDPDefaults()
	s, sf := sfSim(t, 5, 2, 0.8, cfg, 30)
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 1 << 20})
	s.Run(1 * Second)
	mean, max := s.Net.LinkUtilization(s.Eng.Now())
	if mean <= 0 || max <= 0 || max > 1.01 || mean > max {
		t.Fatalf("utilization mean=%f max=%f out of range", mean, max)
	}
	if m, x := s.Net.LinkUtilization(0); m != 0 || x != 0 {
		t.Fatal("zero elapsed must give zero utilization")
	}
}

func TestMPTCPSingleFlowCompletes(t *testing.T) {
	cfg := TCPDefaults(TransportMPTCP)
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 40)
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 1 << 20})
	res := s.Run(2 * Second)
	if !res[0].Done {
		t.Fatal("MPTCP flow did not complete")
	}
	if fct := res[0].FCT(); fct > 8*Millisecond {
		t.Fatalf("FCT=%v, too slow for 1MiB over 4 subflows", fct)
	}
}

func TestMPTCPUsesMultipleLayers(t *testing.T) {
	cfg := TCPDefaults(TransportMPTCP)
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 41)
	s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 1 << 20})
	s.Run(2 * Second)
	f := s.flows[0]
	if len(f.mptcp) < 2 {
		t.Fatalf("expected multiple subflows, got %d", len(f.mptcp))
	}
	seen := map[int8]bool{}
	for _, ms := range f.mptcp {
		seen[ms.layer] = true
		if !ms.done() {
			t.Fatalf("subflow [%d,%d) incomplete", ms.lo, ms.hi)
		}
	}
	if len(seen) < 2 {
		t.Fatal("subflows should be pinned to distinct layers")
	}
	// Ranges partition the sequence space.
	covered := int32(0)
	for _, ms := range f.mptcp {
		covered += ms.hi - ms.lo
	}
	if covered != f.total {
		t.Fatalf("subflow ranges cover %d of %d packets", covered, f.total)
	}
}

func TestMPTCPIncastWithECN(t *testing.T) {
	cfg := TCPDefaults(TransportMPTCP)
	cfg.LB = LBFatPaths
	s, sf := sfSim(t, 5, 4, 0.7, cfg, 42)
	// Several flows into one endpoint force ECN marks on the shared
	// downlink; the ECN window law must still let everything finish.
	for i := 1; i <= 6; i++ {
		lo, _ := sf.Endpoints(i * 3)
		s.AddFlow(FlowSpec{Src: int32(lo), Dst: 0, Bytes: 512 << 10})
	}
	res := s.Run(6 * Second)
	for i, r := range res {
		if !r.Done {
			t.Fatalf("MPTCP incast flow %d incomplete", i)
		}
	}
}

func TestLIAAlphaCoupling(t *testing.T) {
	// Equal windows: alpha = total*max/sum^2 = k*w*w/(k*w)^2 = 1/k.
	subs := []*mptcpSub{
		{cwnd: 10, hi: 100}, {cwnd: 10, hi: 200, lo: 100},
	}
	if a := liaAlpha(subs); a < 0.49 || a > 0.51 {
		t.Fatalf("alpha=%f, want 0.5 for two equal subflows", a)
	}
	// Degenerate: all done -> alpha 1 (no coupling left).
	done := []*mptcpSub{{cwnd: 10, lo: 0, hi: 10, cumAck: 10}}
	if a := liaAlpha(done); a != 1 {
		t.Fatalf("alpha=%f, want 1 when no live subflows", a)
	}
}

func TestMPTCPvsTCPAggregateFairness(t *testing.T) {
	// LIA coupling: an MPTCP flow over 4 subflows must not grossly beat a
	// single TCP on an uncontended path (its aggregate window grows about
	// like one TCP), so FCTs should be the same order of magnitude.
	run := func(tr Transport) Time {
		cfg := TCPDefaults(tr)
		s, sf := sfSim(t, 5, 4, 0.7, cfg, 43)
		s.AddFlow(FlowSpec{Src: 0, Dst: int32(sf.N() - 1), Bytes: 2 << 20})
		res := s.Run(4 * Second)
		if !res[0].Done {
			t.Fatalf("transport %d incomplete", tr)
		}
		return res[0].FCT()
	}
	tcp := run(TransportTCP)
	mptcp := run(TransportMPTCP)
	if float64(mptcp) < 0.3*float64(tcp) {
		t.Fatalf("MPTCP %v vs TCP %v: coupling should prevent a >3x win on one path", mptcp, tcp)
	}
	if float64(mptcp) > 5*float64(tcp) {
		t.Fatalf("MPTCP %v vs TCP %v: striping should not be pathologically slow", mptcp, tcp)
	}
}
