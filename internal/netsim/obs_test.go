package netsim

import (
	"testing"

	"repro/internal/obs"
)

// TestMetricsFlush runs a small fabric with a metrics bundle attached and
// checks the simulator's end-of-run flush: event and flow tallies land in
// the registry with values consistent with the returned results.
func TestMetricsFlush(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := NDPDefaults()
	cfg.Metrics = obs.NewSimMetrics(reg)
	s, sf := sfSim(t, 5, 4, 0.6, cfg, 7)
	const flows = 8
	for i := 0; i < flows; i++ {
		s.AddFlow(FlowSpec{Src: int32(i), Dst: int32(sf.N() - 1 - i), Bytes: 64 << 10, Start: 0})
	}
	res := s.Run(1 * Second)

	done := 0
	for _, r := range res {
		if r.Done {
			done++
		}
	}
	snap := reg.Snapshot()
	if snap[obs.MetricSimEvents] != int64(s.Eng.Executed()) {
		t.Fatalf("events_processed = %d, engine executed %d",
			snap[obs.MetricSimEvents], s.Eng.Executed())
	}
	if snap[obs.MetricSimEvents] == 0 {
		t.Fatal("no events counted")
	}
	if got := snap[obs.MetricSimFlowsCompleted]; got != int64(done) {
		t.Fatalf("flows_completed = %d, results say %d", got, done)
	}
	if got := reg.Histogram(obs.MetricSimFCTms, obs.FCTBucketsMs).Count(); got != int64(done) {
		t.Fatalf("FCT histogram count = %d, want one sample per completed flow (%d)", got, done)
	}
	if got := reg.Histogram(obs.MetricSimPathHops, obs.PathHopBuckets).Count(); got == 0 {
		t.Fatal("path-hop histogram empty; delivery must record hop counts")
	}
	if snap[obs.MetricSimQueueHighWater] <= 0 {
		t.Fatal("event-queue high-water mark not flushed")
	}
	if snap[obs.MetricSimInflightHW] <= 0 {
		t.Fatal("in-flight packet high-water mark not flushed")
	}
}

// TestMetricsDoNotPerturb runs the identical workload with and without a
// metrics bundle and a tracer; the per-flow results must match exactly.
func TestMetricsDoNotPerturb(t *testing.T) {
	run := func(instrument bool) []FlowResult {
		cfg := NDPDefaults()
		if instrument {
			cfg.Metrics = obs.NewSimMetrics(obs.NewRegistry())
			cfg.Tracer = obs.NewTracer(0, int64(50*Millisecond), 0)
		}
		s, sf := sfSim(t, 5, 4, 0.6, cfg, 7)
		for i := 0; i < 8; i++ {
			s.AddFlow(FlowSpec{Src: int32(i), Dst: int32(sf.N() - 1 - i), Bytes: 64 << 10, Start: 0})
		}
		return s.Run(1 * Second)
	}
	plain, instrumented := run(false), run(true)
	if len(plain) != len(instrumented) {
		t.Fatalf("result lengths differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("flow %d diverged under instrumentation:\nplain: %+v\ninstr: %+v",
				i, plain[i], instrumented[i])
		}
	}
}
