package netsim

// MPTCP transport (§VIII-A2): FatPaths "uses MPTCP for congestion control,
// as it already provides basic infrastructure ... for setting up multiple
// data streams. Our design uses ECN as a measure of congestion instead of
// packet loss. If an incoming ACK packet does not have the ECN field set,
// we increase the window analogously to traditional TCP. Otherwise (every
// roundtrip time) we update the congestion window size accordingly."
//
// Implementation: a flow opens up to MPTCPSubflows subflows, each pinned
// to a distinct layer and owning a disjoint contiguous range of the
// sequence space. Each subflow runs the Reno machinery of tcp.go over its
// range; window increase is coupled across subflows with the standard
// Linked-Increases Algorithm (LIA), so the aggregate is no more aggressive
// than one TCP on a shared bottleneck. ECN echoes cut the marked subflow's
// window once per RTT (the paper's ECN-driven variant); loss handling
// (fast retransmit, RTO with go-back-N) stays per subflow.
//
// The wire reuses the existing Packet format: a subflow is identified by
// the sequence range its packets fall into, so routers need nothing new.

// MPTCPSubflows is the number of subflows an MPTCP flow opens (bounded by
// the number of layers that reach the destination).
const MPTCPSubflows = 4

// mptcpSub is per-subflow sender state.
type mptcpSub struct {
	layer    int8
	lo, hi   int32 // sequence range [lo, hi)
	nextNew  int32
	cumAck   int32
	cwnd     float64
	ssthresh float64
	dupacks  int
	inRec    bool
	recover  int32
	rtoGen   int64
	rto      Time
	srtt     Time
	rttvar   Time
	cutSeq   int32 // last window-cut boundary (once-per-RTT ECN response)
}

func (ms *mptcpSub) done() bool { return ms.cumAck >= ms.hi }

// mptcpStart opens the subflows: the sequence space is split contiguously,
// one range per usable layer.
func (s *Sim) mptcpStart(sh *Shard, f *flow) {
	src := int(f.srcPart)
	dst := int(f.dstPart)
	var layersUsable []int8
	for l := 0; l < s.Fwd.NumLayers() && len(layersUsable) < MPTCPSubflows; l++ {
		if src == dst || s.Fwd.Reachable(l, src, dst) {
			layersUsable = append(layersUsable, int8(l))
		}
	}
	if len(layersUsable) == 0 {
		layersUsable = []int8{0}
	}
	k := int32(len(layersUsable))
	per := f.total / k
	if per == 0 {
		per = 1
	}
	var subs []*mptcpSub
	lo := int32(0)
	for i := int32(0); i < k && lo < f.total; i++ {
		hi := lo + per
		if i == k-1 || hi > f.total {
			hi = f.total
		}
		subs = append(subs, &mptcpSub{
			layer:    layersUsable[i],
			lo:       lo,
			hi:       hi,
			nextNew:  lo,
			cumAck:   lo,
			cwnd:     float64(s.Cfg.InitialWindow),
			ssthresh: 1 << 20,
			rto:      1 * Millisecond,
		})
		lo = hi
	}
	f.mptcp = subs
	for _, ms := range subs {
		s.mptcpTrySend(sh, f, ms)
		s.mptcpArmRTO(sh, f, ms)
	}
}

// liaAlpha computes the LIA coupling factor:
// α = cwnd_total · max_i(cwnd_i / rtt_i²) / (Σ_i cwnd_i / rtt_i)².
// With the near-identical subflow RTTs of one fabric this reduces to
// cwnd_total · max_i cwnd_i / (Σ_i cwnd_i)².
func liaAlpha(subs []*mptcpSub) float64 {
	var total, maxW, sum float64
	for _, ms := range subs {
		if ms.done() {
			continue
		}
		total += ms.cwnd
		if ms.cwnd > maxW {
			maxW = ms.cwnd
		}
		sum += ms.cwnd
	}
	if sum == 0 {
		return 1
	}
	return total * maxW / (sum * sum)
}

func (s *Sim) mptcpSubFor(f *flow, seq int32) *mptcpSub {
	for _, ms := range f.mptcp {
		if seq >= ms.lo && seq < ms.hi {
			return ms
		}
	}
	return nil
}

func (s *Sim) mptcpTrySend(sh *Shard, f *flow, ms *mptcpSub) {
	sent := false
	for ms.nextNew < ms.hi {
		if float64(ms.nextNew-ms.cumAck) >= ms.cwnd {
			break
		}
		s.mptcpSendData(sh, f, ms, ms.nextNew, false)
		ms.nextNew++
		sent = true
	}
	if sent {
		s.mptcpArmRTO(sh, f, ms)
	}
}

func (s *Sim) mptcpSendData(sh *Shard, f *flow, ms *mptcpSub, seq int32, retx bool) {
	size := f.mss + HeaderBytes
	if int64(seq+1)*int64(f.mss) > f.spec.Bytes {
		rem := f.spec.Bytes - int64(seq)*int64(f.mss)
		if rem < 1 {
			rem = 1
		}
		size = int32(rem) + HeaderBytes
	}
	p := sh.newPacket()
	*p = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Src,
		DstHost: f.spec.Dst,
		Seq:     seq,
		Bytes:   size,
		Kind:    KindData,
		Layer:   ms.layer, // subflows are pinned to their layer
		Salt:    f.salt,
		Retx:    retx,
	}
	if retx {
		f.snd.retxCount++
	} else {
		f.snd.sendTime[seq] = sh.Now()
	}
	s.Net.sendFromHost(sh, p)
}

// mptcpRecv dispatches receiver data and sender ACKs.
func (s *Sim) mptcpRecv(sh *Shard, f *flow, host int32, p *Packet) {
	switch p.Kind {
	case KindData:
		if host != f.spec.Dst {
			return
		}
		s.mptcpDataAtReceiver(sh, f, p)
	case KindAck:
		if host != f.spec.Src {
			return
		}
		s.mptcpAckAtSender(sh, f, p)
	}
}

func (s *Sim) mptcpDataAtReceiver(sh *Shard, f *flow, p *Packet) {
	if !f.received[p.Seq] {
		f.received[p.Seq] = true
		f.numReceived++
		if f.numReceived == f.total {
			s.markDone(sh, f)
		}
	}
	// Per-subflow cumulative ACK: next expected within the packet's range.
	ms := s.mptcpSubFor(f, p.Seq)
	if ms == nil {
		return
	}
	cum := ms.lo
	for cum < ms.hi && f.received[cum] {
		cum++
	}
	ack := sh.newPacket()
	*ack = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Dst,
		DstHost: f.spec.Src,
		Seq:     cum,
		Bytes:   HeaderBytes,
		Kind:    KindAck,
		Layer:   0,
		ECN:     p.ECN,
		Salt:    uint32(ms.lo), // identifies the subflow at the sender
	}
	s.Net.sendFromHost(sh, ack)
}

func (s *Sim) mptcpAckAtSender(sh *Shard, f *flow, ack *Packet) {
	ms := s.mptcpSubFor(f, int32(ack.Salt))
	if ms == nil {
		return
	}
	cum := ack.Seq
	switch {
	case cum > ms.cumAck:
		newly := cum - ms.cumAck
		if st := f.snd.sendTime[cum-1]; st > 0 {
			s.mptcpUpdateRTT(ms, sh.Now()-st, s.Cfg.RTOMin)
		}
		ms.cumAck = cum
		ms.dupacks = 0
		if ms.inRec {
			if cum >= ms.recover {
				ms.inRec = false
				ms.cwnd = ms.ssthresh
			} else {
				s.mptcpSendData(sh, f, ms, cum, true) // NewReno partial ACK
			}
		}
		if !ms.inRec {
			if ack.ECN && cum > ms.cutSeq {
				// ECN-driven window law: cut once per RTT (§VIII-A2).
				ms.ssthresh = ms.cwnd / 2
				if ms.ssthresh < 2 {
					ms.ssthresh = 2
				}
				ms.cwnd = ms.ssthresh
				ms.cutSeq = ms.nextNew
			} else if ms.cwnd < ms.ssthresh {
				ms.cwnd += float64(newly) // slow start per subflow
			} else {
				// Coupled increase (LIA): min(α/cwnd_total, 1/cwnd_i).
				alpha := liaAlpha(f.mptcp)
				var total float64
				for _, o := range f.mptcp {
					if !o.done() {
						total += o.cwnd
					}
				}
				inc := alpha / total
				if uncoupled := 1 / ms.cwnd; uncoupled < inc {
					inc = uncoupled
				}
				ms.cwnd += float64(newly) * inc
			}
		}
		s.mptcpArmRTO(sh, f, ms)
	case cum == ms.cumAck && cum < ms.hi:
		ms.dupacks++
		if ms.dupacks == 3 && !ms.inRec {
			ms.ssthresh = ms.cwnd / 2
			if ms.ssthresh < 2 {
				ms.ssthresh = 2
			}
			ms.cwnd = ms.ssthresh + 3
			ms.inRec = true
			ms.recover = ms.nextNew
			s.mptcpSendData(sh, f, ms, cum, true)
			s.mptcpArmRTO(sh, f, ms)
		} else if ms.inRec {
			ms.cwnd++
		}
	}
	s.mptcpTrySend(sh, f, ms)
}

func (s *Sim) mptcpUpdateRTT(ms *mptcpSub, sample, rtoMin Time) {
	if ms.srtt == 0 {
		ms.srtt = sample
		ms.rttvar = sample / 2
	} else {
		diff := ms.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		ms.rttvar = (3*ms.rttvar + diff) / 4
		ms.srtt = (7*ms.srtt + sample) / 8
	}
	ms.rto = ms.srtt + 4*ms.rttvar
	if ms.rto < rtoMin {
		ms.rto = rtoMin
	}
	if ms.rto > maxRTO {
		ms.rto = maxRTO
	}
}

func (s *Sim) mptcpArmRTO(sh *Shard, f *flow, ms *mptcpSub) {
	ms.rtoGen++
	gen := ms.rtoGen
	rto := ms.rto
	if rto <= 0 {
		rto = 1 * Millisecond
	}
	sh.after(f.srcPart, rto, func(sh *Shard) { s.mptcpRTOFire(sh, f, ms, gen) })
}

func (s *Sim) mptcpRTOFire(sh *Shard, f *flow, ms *mptcpSub, gen int64) {
	// Completion is judged per subflow from sender state alone (the
	// receiver's done flag lives on another partition).
	if gen != ms.rtoGen || ms.done() {
		return
	}
	if ms.cumAck >= ms.nextNew {
		return
	}
	ms.ssthresh = ms.cwnd / 2
	if ms.ssthresh < 2 {
		ms.ssthresh = 2
	}
	ms.cwnd = 1
	ms.dupacks = 0
	ms.inRec = false
	ms.rto *= 2
	if ms.rto > maxRTO {
		ms.rto = maxRTO
	}
	f.snd.retxCount += int64(ms.nextNew - ms.cumAck)
	ms.nextNew = ms.cumAck // go-back-N within the subflow
	s.mptcpTrySend(sh, f, ms)
	s.mptcpArmRTO(sh, f, ms)
}
