// Package netsim is the packet-level discrete-event network simulator used
// for the paper's §VII evaluation — an htsim/OMNeT-style substrate with
// full-duplex links, output-queued routers (tail-drop, ECN marking, or
// NDP-style payload trimming with priority queues), per-layer
// destination-based forwarding, ECMP hashing, flowlet switching, and three
// transports: the purified NDP-style receiver-driven transport of §III-C,
// TCP Reno, and DCTCP.
package netsim

import "repro/internal/obs"

// Time is simulation time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// eventKind discriminates the event payload. The two link events carry
// their operands inline instead of in a closure: every packet transmission
// schedules two events per hop, so avoiding those closure allocations is
// the simulator's single largest allocation saving per replicate.
type eventKind uint8

const (
	evFunc    eventKind = iota // generic callback
	evTxDone                   // link finished serializing pkt; start next, then deliver
	evDeliver                  // pkt arrives at the far end of link
)

type event struct {
	at   Time
	seq  int64
	kind eventKind
	fn   func()  // evFunc only
	link *link   // evTxDone, evDeliver
	pkt  *Packet // evTxDone, evDeliver
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift operations
// are hand-rolled rather than going through container/heap: the interface
// indirection there boxes every pushed event into an allocation, and the
// event queue is the simulator's hottest data structure.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		kid := 2*i + 1
		if kid >= n {
			return
		}
		if r := kid + 1; r < n && h.less(r, kid) {
			kid = r
		}
		if !h.less(kid, i) {
			return
		}
		h[i], h[kid] = h[kid], h[i]
		i = kid
	}
}

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same instant execute in scheduling order.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap

	// Observability. The engine runs on one goroutine, so these are plain
	// fields updated inline (no atomics on the hot loop); Sim.Run flushes
	// them into the shared metrics registry afterwards. tracer is nil
	// except for the single simulation that acquired the run's tracer.
	executed int64
	queueHW  int
	tracer   *obs.Tracer
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) push(t Time, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at, ev.seq = t, e.seq
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
	if len(e.events) > e.queueHW {
		e.queueHW = len(e.events)
	}
}

// At schedules fn at absolute time t (>= now).
func (e *Engine) At(t Time, fn func()) { e.push(t, event{kind: evFunc, fn: fn}) }

// After schedules fn after delay d.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// afterTxDone schedules the end of a packet's serialization on a link.
func (e *Engine) afterTxDone(d Time, l *link, p *Packet) {
	e.push(e.now+d, event{kind: evTxDone, link: l, pkt: p})
}

// afterDeliver schedules a packet's arrival at the far end of a link.
func (e *Engine) afterDeliver(d Time, l *link, p *Packet) {
	e.push(e.now+d, event{kind: evDeliver, link: l, pkt: p})
}

// Run executes events until the queue empties or the horizon passes.
// It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.events) > 0 {
		if e.events[0].at > until {
			break
		}
		ev := e.events[0]
		last := len(e.events) - 1
		e.events[0] = e.events[last]
		e.events[last] = event{} // clear fn/link/pkt for the GC
		e.events = e.events[:last]
		e.events.siftDown(0)
		e.now = ev.at
		e.executed++
		if e.tracer != nil {
			e.traceEvent(ev)
		}
		switch ev.kind {
		case evFunc:
			ev.fn()
		case evTxDone:
			l := ev.link
			l.busy = false
			l.kick()
			e.afterDeliver(l.delay, l, ev.pkt)
		case evDeliver:
			ev.link.net.deliver(ev.link, ev.pkt)
		}
		n++
	}
	if e.now < until && len(e.events) == 0 {
		e.now = until
	}
	return n
}

// eventTraceName maps event kinds onto trace slice names.
var eventTraceName = [...]string{evFunc: "timer", evTxDone: "tx-done", evDeliver: "deliver"}

// traceEvent records one executed event in the engine's trace window, plus
// a periodic event-queue-depth counter track. Packet events land on a tid
// derived from the packet's destination so per-flow activity separates
// into rows in the viewer.
func (e *Engine) traceEvent(ev event) {
	ts := int64(e.now)
	if !e.tracer.Active(ts) {
		return
	}
	tid := 0
	name := eventTraceName[ev.kind]
	if ev.pkt != nil {
		tid = 1 + int(ev.pkt.DstHost)%62
		name = pktTraceName(name, ev.pkt)
	}
	e.tracer.Instant("event", name, ts, tid)
	if e.executed%64 == 0 {
		e.tracer.CounterEvent("event_queue_depth", ts, int64(len(e.events)))
	}
}

// pktTraceName renders a packet event's slice name.
func pktTraceName(base string, p *Packet) string {
	switch p.Kind {
	case KindAck:
		return base + ":ack"
	case KindPull:
		return base + ":pull"
	default:
		if p.Trimmed {
			return base + ":trim"
		}
		return base + ":data"
	}
}

// SetTracer attaches an acquired tracer to the engine's event loop.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() int64 { return e.executed }

// QueueHighWater returns the largest event-queue depth reached.
func (e *Engine) QueueHighWater() int { return e.queueHW }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
