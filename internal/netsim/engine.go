// Package netsim is the packet-level discrete-event network simulator used
// for the paper's §VII evaluation — an htsim/OMNeT-style substrate with
// full-duplex links, output-queued routers (tail-drop, ECN marking, or
// NDP-style payload trimming with priority queues), per-layer
// destination-based forwarding, ECMP hashing, flowlet switching, and three
// transports: the purified NDP-style receiver-driven transport of §III-C,
// TCP Reno, and DCTCP.
package netsim

import "repro/internal/obs"

// Time is simulation time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// maxTime is the empty-heap sentinel.
const maxTime = Time(1<<63 - 1)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// eventKind discriminates the event payload. The two link events carry
// their operands inline instead of in a closure: every packet transmission
// schedules two events per hop, so avoiding those closure allocations is
// the simulator's single largest allocation saving per replicate.
type eventKind uint8

const (
	evFunc    eventKind = iota // generic callback
	evTxDone                   // link finished serializing pkt; start next, then deliver
	evDeliver                  // pkt arrives at the far end of link
)

// Canonical event keys. Same-time events execute in ascending key order,
// and keys are constructed so that the total (at, key) order is a property
// of the simulated system alone — never of how partitions were grouped
// into shards:
//
//   - Partition-local events (timers, tx-done) fold the owning partition id
//     and that partition's private push counter. Within one partition,
//     scheduling order is execution order, exactly as in the serial engine.
//   - Link deliveries fold the link's globally stable id and a per-link
//     transmit sequence. A delivery gets this key whether or not it crosses
//     a shard boundary, so co-locating transmitter and receiver (S=1)
//     yields the same order as separating them (S=8).
//
// The delivery class sorts after the local class at equal times, which is
// well-defined either way; what matters is that the rule is fixed.
func localKey(part int32, seq uint32) uint64 {
	return uint64(uint32(part))<<32 | uint64(seq)
}

func deliverKey(linkID int32, seq uint32) uint64 {
	return 1<<63 | uint64(uint32(linkID))<<32 | uint64(seq)
}

// Engine is a deterministic discrete-event scheduler, optionally sharded:
// partitions (one per router, hosts riding with their router) are split
// into contiguous blocks, each drained by its own worker goroutine under
// conservative synchronization — a window of lookahead length is safe to
// drain independently because every cross-partition event (a link
// delivery) is scheduled at least one link delay ahead. Results are
// byte-identical at every shard count; see the canonical-key comment.
type Engine struct {
	shards    []*Shard
	partShard []int32 // partition id -> owning shard
	lookahead Time

	// now is the engine-wide clock: live during serial runs, and updated
	// from the shard clocks when a parallel run returns. Engine.Now is only
	// meaningful between runs — code executing on a shard uses Shard.Now.
	now Time

	// windows / stalls summarize parallel-run synchronization (flushed to
	// the obs layer by Sim.Run). tracer is nil except for the single
	// simulation that acquired the run's tracer; obs.Tracer is internally
	// locked, so shard workers may record concurrently.
	windows int64
	tracer  *obs.Tracer
}

// NewEngine returns a serial (single-shard, single-partition) engine at
// time 0 — the configuration every test helper and standalone use gets.
func NewEngine() *Engine { return NewShardedEngine(1, 1, 0) }

// NewShardedEngine returns an engine over parts partitions drained by
// shards workers. lookahead is the conservative synchronization window —
// the minimum delay of any cross-partition event — and must be positive
// when shards > 1. Shard s owns the contiguous partition block
// {p : p*shards/parts == s}.
func NewShardedEngine(parts, shards int, lookahead Time) *Engine {
	if parts < 1 {
		parts = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > parts {
		shards = parts
	}
	if shards > 1 && lookahead <= 0 {
		panic("netsim: sharded engine requires a positive lookahead (the minimum link delay)")
	}
	e := &Engine{
		partShard: make([]int32, parts),
		lookahead: lookahead,
		shards:    make([]*Shard, shards),
	}
	for p := 0; p < parts; p++ {
		e.partShard[p] = int32(p * shards / parts)
	}
	for s := range e.shards {
		sh := &Shard{
			eng:    e,
			id:     int32(s),
			partLo: -1,
			occ:    make([]int64, len(obs.WindowOccupancyBuckets)+1),
		}
		if shards > 1 {
			sh.outbox = make([][]outEvent, shards)
		}
		e.shards[s] = sh
	}
	for p := 0; p < parts; p++ {
		sh := e.shards[e.partShard[p]]
		if sh.partLo < 0 {
			sh.partLo = int32(p)
		}
		sh.seq = append(sh.seq, 0)
	}
	return e
}

// NumShards reports the engine's worker count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Now returns the current simulation time. Only meaningful between runs;
// event callbacks read their shard's clock instead.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (>= now) on partition 0 — the serial
// engine's scheduling entry point, also used for pre-run setup.
func (e *Engine) At(t Time, fn func(*Shard)) { e.AtPart(t, 0, fn) }

// AtPart schedules fn at absolute time t on the given partition. It must
// not be called while a parallel run is draining (schedule through the
// executing *Shard there); before Run, and on serial engines, it is the
// ordinary front door.
func (e *Engine) AtPart(t Time, part int32, fn func(*Shard)) {
	e.shards[e.partShard[part]].at(part, t, fn)
}

// Run executes events until the queues empty or the horizon passes. It
// returns the number of events executed.
func (e *Engine) Run(until Time) int {
	if len(e.shards) == 1 {
		return e.runSerial(until)
	}
	return e.runParallel(until)
}

// runSerial is the single-shard fast path: no windows, no barriers, drain
// straight to the horizon.
func (e *Engine) runSerial(until Time) int {
	sh := e.shards[0]
	n := 0
	for sh.heap.len() > 0 && sh.heap.minAt() <= until {
		sh.step()
		n++
	}
	if sh.now < until && sh.heap.len() == 0 {
		sh.now = until
	}
	e.now = sh.now
	return n
}

// eventTraceName maps event kinds onto trace slice names.
var eventTraceName = [...]string{evFunc: "timer", evTxDone: "tx-done", evDeliver: "deliver"}

// traceEvent records one executed event in the engine's trace window, plus
// a periodic event-queue-depth counter track. Packet events land on a tid
// derived from the packet's destination so per-flow activity separates
// into rows in the viewer.
func (sh *Shard) traceEvent(pay eventPayload) {
	ts := int64(sh.now)
	tr := sh.eng.tracer
	if !tr.Active(ts) {
		return
	}
	tid := 0
	name := eventTraceName[pay.kind]
	if pay.pkt != nil {
		tid = 1 + int(pay.pkt.DstHost)%62
		name = pktTraceName(name, pay.pkt)
	}
	tr.Instant("event", name, ts, tid)
	if sh.executed%64 == 0 {
		tr.CounterEvent("event_queue_depth", ts, int64(sh.heap.len()))
	}
}

// pktTraceName renders a packet event's slice name.
func pktTraceName(base string, p *Packet) string {
	switch p.Kind {
	case KindAck:
		return base + ":ack"
	case KindPull:
		return base + ":pull"
	default:
		if p.Trimmed {
			return base + ":trim"
		}
		return base + ":data"
	}
}

// SetTracer attaches an acquired tracer to the engine's event loop.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Executed returns the number of events executed so far, summed over
// shards.
func (e *Engine) Executed() int64 {
	var n int64
	for _, sh := range e.shards {
		n += sh.executed
	}
	return n
}

// QueueHighWater returns the largest event-queue depth any shard reached.
func (e *Engine) QueueHighWater() int {
	hw := 0
	for _, sh := range e.shards {
		if sh.queueHW > hw {
			hw = sh.queueHW
		}
	}
	return hw
}

// Pending returns the number of queued events across all shards.
func (e *Engine) Pending() int {
	n := 0
	for _, sh := range e.shards {
		n += sh.heap.len()
	}
	return n
}
