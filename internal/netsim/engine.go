// Package netsim is the packet-level discrete-event network simulator used
// for the paper's §VII evaluation — an htsim/OMNeT-style substrate with
// full-duplex links, output-queued routers (tail-drop, ECN marking, or
// NDP-style payload trimming with priority queues), per-layer
// destination-based forwarding, ECMP hashing, flowlet switching, and three
// transports: the purified NDP-style receiver-driven transport of §III-C,
// TCP Reno, and DCTCP.
package netsim

import "container/heap"

// Time is simulation time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same instant execute in scheduling order.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (>= now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after delay d.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the queue empties or the horizon passes.
// It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.events) > 0 {
		if e.events[0].at > until {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until && len(e.events) == 0 {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
