package netsim

import (
	"math/rand"

	"repro/internal/graph"
)

// Fault tolerance (§V-G of the paper): FatPaths preprovisions multiple
// paths within different layers, so when a link fails the flowlet load
// balancer simply stops using layers whose paths die — the purified
// transport's trims/timeouts (or TCP's RTO) force a flowlet boundary and
// the sender re-randomizes onto a surviving layer. For major topology
// updates routes are recomputed incrementally, per destination
// (layers.Forwarding.WithoutEdges).
//
// A failed link drops every packet handed to it (both directions), exactly
// like a dead cable between two healthy routers.

// FailRouterLink marks the router-router link between routers u and v as
// failed in both directions. It reports whether such a link existed.
func (n *Network) FailRouterLink(u, v int) bool {
	lu, okU := n.routerOut[u][int32(v)]
	lv, okV := n.routerOut[v][int32(u)]
	if !okU || !okV {
		return false
	}
	lu.failed = true
	lv.failed = true
	return true
}

// FailRandomLinks fails count distinct router-router links chosen u.a.r.
// and returns the affected edge IDs. Edge IDs without a router-router
// entry (no failable link) do not count against the quota: the walk keeps
// drawing replacements from the rest of the permutation until count links
// actually failed or the graph is exhausted, so callers asking for k
// failures get exactly k whenever the topology has that many failable
// links. (An earlier revision walked only the first count samples and
// silently failed fewer links when some draws were unfailable.)
func (n *Network) FailRandomLinks(count int, rng *rand.Rand) []int {
	m := n.topo.G.M()
	if count > m {
		count = m
	}
	perm := rng.Perm(m)
	var failed []int
	for _, id := range perm {
		if len(failed) == count {
			break
		}
		e := n.topo.G.Edge(id)
		if n.FailRouterLink(int(e.U), int(e.V)) {
			failed = append(failed, id)
		}
	}
	return failed
}

// FailedPacketCount reports how many packets died on failed links.
func (n *Network) FailedPacketCount() int64 {
	var c int64
	for _, m := range n.routerOut {
		for _, l := range m {
			c += l.failDrops
		}
	}
	return c
}

// HealAllLinks restores every failed link.
func (n *Network) HealAllLinks() {
	for _, m := range n.routerOut {
		for _, l := range m {
			l.failed = false
		}
	}
}

// MaskedForwardingInput returns an edge mask with the given edges removed,
// for checking or recomputing routes after a major topology update (§V-G:
// "for major (infrequent) topology updates, we recompute layers"; the
// repair itself is layers.Forwarding.WithoutEdges).
func MaskedForwardingInput(g *graph.Graph, failedEdges []int) []bool {
	mask := make([]bool, g.M())
	for i := range mask {
		mask[i] = true
	}
	for _, id := range failedEdges {
		mask[id] = false
	}
	return mask
}
