package netsim

// NDP-style purified transport (§III-C), following Handley et al.'s design
// as adapted by FatPaths:
//
//   - The sender transmits the first window (InitialWindow packets) at line
//     rate without probing.
//   - Congested routers trim payloads instead of dropping packets; trimmed
//     headers travel in priority queues, so the receiver always learns what
//     was sent.
//   - The receiver drives the transfer: every arrival (full or trimmed)
//     earns one paced PULL; a PULL releases one packet at the sender —
//     a retransmission of a trimmed sequence first, else the next new one.
//   - Retransmissions are priority-queued (head-of-line blocking relief).
//   - When the receiver sees trimmed packets it piggybacks a layer-change
//     request on the next PULL; the sender then re-randomizes the flowlet
//     layer (the LetFlow-over-layers adaptivity of §V-F).
//   - A sender-side keepalive recovers from lost control packets. It stops
//     when a FIN pull arrives: once the receiver holds the whole message it
//     answers any further data with a FIN instead of a credit, giving the
//     sender an explicit, sender-local completion signal (the sharded
//     engine forbids the sender reading the receiver's done flag directly).

// ndpStart launches a flow: the first RTT worth of packets at line rate.
func (s *Sim) ndpStart(sh *Shard, f *flow) {
	iw := int32(s.Cfg.InitialWindow)
	if iw > f.total {
		iw = f.total
	}
	for i := int32(0); i < iw; i++ {
		s.ndpSendData(sh, f, f.snd.nextNew, false)
		f.snd.nextNew++
	}
	f.snd.lastAct = sh.Now()
	s.ndpKeepalive(sh, f)
}

// ndpSendData transmits one data packet (possibly a retransmission).
func (s *Sim) ndpSendData(sh *Shard, f *flow, seq int32, retx bool) {
	s.pickRoute(sh, f)
	size := f.mss + HeaderBytes
	if int64(seq+1)*int64(f.mss) > f.spec.Bytes {
		rem := f.spec.Bytes - int64(seq)*int64(f.mss)
		if rem < 1 {
			rem = 1
		}
		size = int32(rem) + HeaderBytes
	}
	p := sh.newPacket()
	*p = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Src,
		DstHost: f.spec.Dst,
		Seq:     seq,
		Bytes:   size,
		Kind:    KindData,
		Layer:   f.layer,
		Salt:    f.salt,
		Retx:    retx,
	}
	if retx {
		f.snd.retxCount++
	}
	f.snd.inflight++
	s.Net.sendFromHost(sh, p)
}

// ndpRecv handles both receiver-side data and sender-side pulls.
func (s *Sim) ndpRecv(sh *Shard, f *flow, host int32, p *Packet) {
	switch p.Kind {
	case KindData:
		if host != f.spec.Dst {
			return // stray
		}
		s.ndpDataAtReceiver(sh, f, p)
	case KindPull:
		if host != f.spec.Src {
			return
		}
		s.ndpPullAtSender(sh, f, p)
	}
}

func (s *Sim) ndpDataAtReceiver(sh *Shard, f *flow, p *Packet) {
	wantLayerChange := false
	if p.Trimmed {
		f.trimsSeen++
		wantLayerChange = true
	} else if !f.received[p.Seq] {
		f.received[p.Seq] = true
		f.numReceived++
		if f.numReceived == f.total {
			s.markDone(sh, f)
		}
	}
	if f.pendingLayer {
		wantLayerChange = true
		f.pendingLayer = false
	}
	if f.done {
		// Transfer complete: answer with a FIN pull (no credit, no retx
		// request) so the sender latches completion and its keepalive
		// quiesces. Duplicates arriving later re-trigger the FIN, which
		// also covers a lost one.
		s.ndpSendPull(sh, f, p.Seq, false, false, true)
		return
	}
	if p.Trimmed && f.received[p.Seq] {
		// Duplicate of an already-received sequence got trimmed; still pull
		// (it carries the layer-change hint) but do not request retx.
		s.ndpSendPull(sh, f, p.Seq, false, wantLayerChange, false)
		return
	}
	s.ndpSendPull(sh, f, p.Seq, p.Trimmed, wantLayerChange, false)
}

// ndpSendPull emits a paced PULL carrying the sequence it acknowledges
// (or nacks, when trimmed), the layer-change hint, and the FIN flag.
func (s *Sim) ndpSendPull(sh *Shard, f *flow, seq int32, wasTrimmed, layerChange, fin bool) {
	host := f.spec.Dst
	// Pace pulls at the access-link data rate (one per full-MTU time).
	interval := Time(float64(s.Cfg.MTU*8) / s.Cfg.LinkBps * 1e9)
	at := sh.Now()
	if s.lastPull[host]+interval > at {
		at = s.lastPull[host] + interval
	}
	s.lastPull[host] = at
	pull := sh.newPacket()
	*pull = Packet{
		FlowID:  f.id,
		SrcHost: f.spec.Dst,
		DstHost: f.spec.Src,
		Seq:     seq,
		Bytes:   HeaderBytes,
		Kind:    KindPull,
		Layer:   s.controlLayer(f.spec.Dst, f.spec.Src),
		Trimmed: wasTrimmed,
		ECN:     layerChange, // repurposed bit: "change layer" hint
		Fin:     fin,
	}
	sh.at(f.dstPart, at, func(sh *Shard) { s.Net.sendFromHost(sh, pull) })
}

func (s *Sim) ndpPullAtSender(sh *Shard, f *flow, pull *Packet) {
	f.snd.lastAct = sh.Now()
	if pull.Fin {
		// Receiver has the whole message: stop sending, let the keepalive
		// find the latch and die.
		f.snd.finished = true
		return
	}
	if f.snd.inflight > 0 {
		f.snd.inflight--
	}
	if pull.Trimmed {
		// The referenced sequence lost its payload: queue a priority retx.
		f.snd.retxQ = append(f.snd.retxQ, pull.Seq)
	} else if !f.snd.delivered[pull.Seq] {
		f.snd.delivered[pull.Seq] = true
		f.snd.nDeliv++
	}
	if pull.ECN && s.Cfg.LB == LBFatPaths {
		// Receiver observed congestion on the current layer: re-randomize
		// (forces a flowlet boundary).
		s.reselectLayer(f)
	}
	// A pull releases one packet: retransmissions first.
	if len(f.snd.retxQ) > 0 {
		seq := f.snd.retxQ[0]
		f.snd.retxQ = f.snd.retxQ[1:]
		s.ndpSendData(sh, f, seq, true)
		return
	}
	if f.snd.nextNew < f.total {
		s.ndpSendData(sh, f, f.snd.nextNew, false)
		f.snd.nextNew++
	}
}

// ndpKeepalive recovers from lost control packets: if nothing happened for
// several RTOmin periods and the flow is incomplete, resend the lowest
// sequence not known to be delivered.
func (s *Sim) ndpKeepalive(sh *Shard, f *flow) {
	const idlePeriods = 4
	sh.after(f.srcPart, Time(idlePeriods)*s.Cfg.RTOMin, func(sh *Shard) {
		if f.snd.finished {
			return
		}
		if sh.Now()-f.snd.lastAct >= Time(idlePeriods)*s.Cfg.RTOMin {
			// Rotate through undelivered sequences rather than hammering
			// the lowest one: with lossy control paths the lowest may have
			// arrived long ago while a later one is genuinely missing.
			for probe := int32(0); probe < f.snd.nextNew; probe++ {
				seq := (f.snd.kaNext + probe) % f.snd.nextNew
				if !f.snd.delivered[seq] {
					s.ndpSendData(sh, f, seq, true)
					f.snd.kaNext = seq + 1
					break
				}
			}
			if f.snd.nextNew < f.total {
				// Also nudge a new packet in case all sent ones arrived but
				// their pulls were lost.
				s.ndpSendData(sh, f, f.snd.nextNew, false)
				f.snd.nextNew++
			}
			f.snd.lastAct = sh.Now()
		}
		s.ndpKeepalive(sh, f)
	})
}
