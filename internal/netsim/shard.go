package netsim

// Shard is one worker of the sharded event loop: it owns a contiguous
// block of partitions (a partition is one router plus its attached hosts),
// an event heap holding exactly the events that execute on those
// partitions, a packet arena, and plain-field tallies. Within a
// synchronization window a shard drains its heap with no locks and no
// atomics — every mutable structure it touches (flow state of hosts it
// owns, transmit queues of links it owns, its arena) is reached only from
// events keyed to its partitions. Event callbacks receive the executing
// *Shard, which is the only legal source of Now() and of new events while
// a simulation runs.
type Shard struct {
	eng *Engine
	id  int32
	now Time

	heap eventHeap

	// Owned partitions form the contiguous range [partLo, partLo+len(seq));
	// seq holds the per-partition push counters that make local event keys
	// canonical (see engine.go).
	partLo int32
	seq    []uint32

	// outbox[d] collects cross-shard deliveries destined for shard d during
	// a window; the coordinator merges them at the barrier.
	outbox [][]outEvent

	// Packet arena: a free list fed by chunked allocations. Packets are
	// allocated on the shard that sends them and recycled on the shard that
	// retires them; migrating between free lists is harmless.
	pfree []*Packet

	// Engine tallies.
	executed int64
	queueHW  int
	windows  int64 // synchronization windows participated in
	stalls   int64 // windows in which this shard had no executable event
	occ      []int64

	// Network tallies (the per-shard split of the old Network fields).
	delivered  int64
	inflight   int64
	inflightHW int64
	hopHist    [maxHopBucket + 1]int64

	// Worker channels (parallel runs only).
	cmd  chan Time
	done chan struct{}
}

// outEvent is one cross-shard event awaiting the window barrier.
type outEvent struct {
	at  Time
	key uint64
	pay eventPayload
}

// Now returns the shard's current simulation time. During a parallel
// window shards advance independently within the lookahead bound, so this
// is the only meaningful clock for code running on the shard.
func (sh *Shard) Now() Time { return sh.now }

// push queues an event with an explicit canonical key on this shard.
func (sh *Shard) push(t Time, key uint64, pay eventPayload) {
	if t < sh.now {
		t = sh.now
	}
	sh.heap.push(t, key, pay)
	if n := sh.heap.len(); n > sh.queueHW {
		sh.queueHW = n
	}
}

// pushLocal queues a partition-local event: the key folds the owning
// partition and that partition's push counter, so it is identical at every
// shard count.
func (sh *Shard) pushLocal(t Time, part int32, pay eventPayload) {
	i := part - sh.partLo
	sh.seq[i]++
	sh.push(t, localKey(part, sh.seq[i]), pay)
}

// at schedules fn at absolute time t on partition part, which must be
// owned by this shard (hosts schedule on their own router's partition).
func (sh *Shard) at(part int32, t Time, fn func(*Shard)) {
	sh.pushLocal(t, part, eventPayload{kind: evFunc, fn: fn})
}

// after schedules fn after delay d on partition part.
func (sh *Shard) after(part int32, d Time, fn func(*Shard)) {
	sh.at(part, sh.now+d, fn)
}

// afterTxDone schedules the end of a packet's serialization on a link the
// shard owns (the transmit side of l lives on partition l.txPart).
func (sh *Shard) afterTxDone(d Time, l *link, p *Packet) {
	sh.pushLocal(sh.now+d, l.txPart, eventPayload{kind: evTxDone, link: l, pkt: p})
}

// afterDeliver schedules a packet's arrival at the far end of a link. The
// arrival executes on the receiving partition, which may live on another
// shard: link delay >= the engine lookahead, so the event always lands at
// or beyond the current window's end and can safely cross at the barrier.
// Delivery keys fold the (globally stable) link id and a per-link sequence
// instead of a partition counter, so the merge order at the barrier — and
// hence execution order — is identical at every shard count, including
// when transmitter and receiver share a shard.
func (sh *Shard) afterDeliver(l *link, p *Packet) {
	t := sh.now + l.delay
	l.deliverSeq++
	key := deliverKey(l.id, l.deliverSeq)
	pay := eventPayload{kind: evDeliver, link: l, pkt: p}
	dst := sh.eng.partShard[l.rxPart]
	if dst == sh.id {
		sh.push(t, key, pay)
		return
	}
	sh.outbox[dst] = append(sh.outbox[dst], outEvent{at: t, key: key, pay: pay})
}

// step executes the shard's earliest event.
func (sh *Shard) step() {
	at, pay := sh.heap.pop()
	sh.now = at
	sh.executed++
	if sh.eng.tracer != nil {
		sh.traceEvent(pay)
	}
	switch pay.kind {
	case evFunc:
		pay.fn(sh)
	case evTxDone:
		l := pay.link
		l.busy = false
		l.kick(sh)
		sh.afterDeliver(l, pay.pkt)
	case evDeliver:
		pay.link.net.deliver(sh, pay.link, pay.pkt)
	}
}

// drain executes local events strictly before wend (exclusive — events at
// the window end wait for the barrier merge) and at or before the horizon
// (inclusive, matching the serial engine's contract). It returns the
// number of events executed.
func (sh *Shard) drain(wend, until Time) int64 {
	n0 := sh.executed
	for sh.heap.len() > 0 {
		t := sh.heap.minAt()
		if t >= wend || t > until {
			break
		}
		sh.step()
	}
	return sh.executed - n0
}

// newPacket takes a Packet from the shard's arena. Callers overwrite every
// field (allocation sites assign a full composite literal), so no zeroing
// happens here.
func (sh *Shard) newPacket() *Packet {
	if n := len(sh.pfree); n > 0 {
		p := sh.pfree[n-1]
		sh.pfree = sh.pfree[:n-1]
		return p
	}
	chunk := make([]Packet, packetChunk)
	for i := 1; i < len(chunk); i++ {
		sh.pfree = append(sh.pfree, &chunk[i])
	}
	return &chunk[0]
}

// freePacket recycles a dead packet into this shard's arena. The struct is
// zeroed so a stale field read after free fails loudly rather than
// plausibly.
func (sh *Shard) freePacket(p *Packet) {
	*p = Packet{}
	sh.pfree = append(sh.pfree, p)
}

// packetChunk is the arena growth quantum.
const packetChunk = 256
