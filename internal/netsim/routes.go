package netsim

import "hash/fnv"

// Route lookup lives in internal/routing (surfaced through
// layers.Forwarding): per-(layer, destination) multi-next-hop tables in
// CSR form, built lazily under striped locks and shared by every
// simulation of one fabric — including simulations running concurrently
// on different worker goroutines. This file keeps only the simulator-side
// selection: hashing a packet onto one of the ECMP candidates.

// hashNext picks one candidate next hop by flow hash (flow-based ECMP with
// the Fowler–Noll–Vo hash, §VII-A6) at router r. The flowlet salt changes
// the hash when the sender opens a new flowlet, and the layer is folded in
// so the same flow maps independently within each layer.
func hashNext(cands []int32, r int, p *Packet) int32 {
	if len(cands) == 1 {
		return cands[0]
	}
	h := fnv.New32a()
	var buf [14]byte
	buf[0] = byte(p.FlowID)
	buf[1] = byte(p.FlowID >> 8)
	buf[2] = byte(p.FlowID >> 16)
	buf[3] = byte(p.FlowID >> 24)
	buf[4] = byte(p.Salt)
	buf[5] = byte(p.Salt >> 8)
	buf[6] = byte(p.Salt >> 16)
	buf[7] = byte(p.Salt >> 24)
	buf[8] = byte(r)
	buf[9] = byte(r >> 8)
	buf[10] = byte(r >> 16)
	buf[11] = byte(r >> 24)
	buf[12] = byte(p.Kind)
	buf[13] = byte(p.Layer)
	h.Write(buf[:])
	return cands[h.Sum32()%uint32(len(cands))]
}

// Packet recycling moved to per-shard arenas (Shard.newPacket /
// Shard.freePacket): the old process-global sync.Pool serialized
// concurrently running replicates on its shards' locks and bounced packet
// structs between cores; a shard-local free list costs one slice append
// with no synchronization at all.
