package netsim

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/topo"
)

// RouteCache holds the per-destination minimal (ECMP) next-hop tables for
// one topology. A table is a pure function of the router graph, so every
// simulation replicate of the same fabric can share one cache instead of
// recomputing the reverse BFS per destination per replicate — the dominant
// setup cost of short simulations. The cache is safe for concurrent use by
// simulations running on different worker goroutines.
type RouteCache struct {
	topo *topo.Topology

	mu   sync.RWMutex
	ecmp [][][]int32 // [dst][src] -> neighbors of src one hop closer to dst
}

// NewRouteCache returns an empty cache for a topology. Tables materialize
// lazily, per destination, on first use.
func NewRouteCache(t *topo.Topology) *RouteCache {
	return &RouteCache{topo: t, ecmp: make([][][]int32, t.Nr())}
}

// minimalTable returns the minimal next-hop table toward dst, building it
// on first use.
func (rc *RouteCache) minimalTable(dst int) [][]int32 {
	rc.mu.RLock()
	tab := rc.ecmp[dst]
	rc.mu.RUnlock()
	if tab != nil {
		return tab
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.ecmp[dst] == nil {
		rc.ecmp[dst] = buildECMPTable(rc.topo.G, dst)
	}
	return rc.ecmp[dst]
}

// buildECMPTable computes, for one destination router, every router's set
// of minimal next hops via a reverse BFS.
func buildECMPTable(g *graph.Graph, dst int) [][]int32 {
	dist := g.BFS(dst)
	table := make([][]int32, g.N())
	for src := 0; src < g.N(); src++ {
		if src == dst || dist[src] < 0 {
			continue
		}
		var cands []int32
		for _, h := range g.Neighbors(src) {
			if dist[h.To] == dist[src]-1 {
				cands = append(cands, h.To)
			}
		}
		table[src] = cands
	}
	return table
}

// packetPool recycles Packet structs across all simulations in the
// process, including successive replicates of the same fabric: a packet is
// taken at each transmission site and returned when it dies (delivered to
// its destination host, or dropped at a full queue or failed link).
var packetPool = sync.Pool{New: func() interface{} { return new(Packet) }}

// newPacket returns a Packet from the pool. Callers overwrite every field
// (allocation sites assign a full composite literal), so no zeroing happens
// here.
func newPacket() *Packet { return packetPool.Get().(*Packet) }

// freePacket returns a dead packet to the pool. The struct is zeroed so a
// stale field read after free fails loudly rather than plausibly.
func freePacket(p *Packet) {
	*p = Packet{}
	packetPool.Put(p)
}
