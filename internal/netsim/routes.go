package netsim

import (
	"hash/fnv"
	"sync"
)

// Route lookup lives in internal/routing (surfaced through
// layers.Forwarding): per-(layer, destination) multi-next-hop tables in
// CSR form, built lazily under striped locks and shared by every
// simulation of one fabric — including simulations running concurrently
// on different worker goroutines. This file keeps only the simulator-side
// selection: hashing a packet onto one of the ECMP candidates.

// hashNext picks one candidate next hop by flow hash (flow-based ECMP with
// the Fowler–Noll–Vo hash, §VII-A6) at router r. The flowlet salt changes
// the hash when the sender opens a new flowlet, and the layer is folded in
// so the same flow maps independently within each layer.
func hashNext(cands []int32, r int, p *Packet) int32 {
	if len(cands) == 1 {
		return cands[0]
	}
	h := fnv.New32a()
	var buf [14]byte
	buf[0] = byte(p.FlowID)
	buf[1] = byte(p.FlowID >> 8)
	buf[2] = byte(p.FlowID >> 16)
	buf[3] = byte(p.FlowID >> 24)
	buf[4] = byte(p.Salt)
	buf[5] = byte(p.Salt >> 8)
	buf[6] = byte(p.Salt >> 16)
	buf[7] = byte(p.Salt >> 24)
	buf[8] = byte(r)
	buf[9] = byte(r >> 8)
	buf[10] = byte(r >> 16)
	buf[11] = byte(r >> 24)
	buf[12] = byte(p.Kind)
	buf[13] = byte(p.Layer)
	h.Write(buf[:])
	return cands[h.Sum32()%uint32(len(cands))]
}

// packetPool recycles Packet structs across all simulations in the
// process, including successive replicates of the same fabric: a packet is
// taken at each transmission site and returned when it dies (delivered to
// its destination host, or dropped at a full queue or failed link).
var packetPool = sync.Pool{New: func() interface{} { return new(Packet) }}

// newPacket returns a Packet from the pool. Callers overwrite every field
// (allocation sites assign a full composite literal), so no zeroing happens
// here.
func newPacket() *Packet { return packetPool.Get().(*Packet) }

// freePacket returns a dead packet to the pool. The struct is zeroed so a
// stale field read after free fails loudly rather than plausibly.
func freePacket(p *Packet) {
	*p = Packet{}
	packetPool.Put(p)
}
