package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Jellyfish (Singla et al., NSDI'12): a random (near-)regular graph built by
// the incremental construction from the original paper — repeatedly connect
// random router pairs with free ports; when stuck with free ports left,
// break a random existing edge (a,b) and rewire it through a router u that
// still has ≥2 free ports, adding (u,a) and (u,b).
//
// If nr·kp is odd, a single port is left unused (one router ends with
// degree kp-1), matching the "homogeneous" variant's behaviour on
// infeasible parameter combinations.

// Jellyfish builds a random kp-regular graph on nr routers with p endpoints
// per router. The construction retries (reseeding deterministically) until
// the result is connected.
func Jellyfish(nr, kp, p int, rng *rand.Rand) (*Topology, error) {
	if nr < 2 || kp < 1 || kp >= nr {
		return nil, fmt.Errorf("jellyfish: invalid nr=%d kp=%d", nr, kp)
	}
	if p <= 0 {
		return nil, fmt.Errorf("jellyfish: p=%d must be positive", p)
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := jellyfishAttempt(nr, kp, rng)
		if !ok || !g.Connected() {
			continue
		}
		conc := make([]int, nr)
		for i := range conc {
			conc[i] = p
		}
		linkOf := make([]LinkClass, g.M())
		for i := range linkOf {
			linkOf[i] = Fiber // random wiring: no locality, all long cables
		}
		t := &Topology{
			Name:         fmt.Sprintf("JF(Nr=%d,k'=%d,p=%d)", nr, kp, p),
			Kind:         "JF",
			G:            g,
			Conc:         conc,
			LinkOf:       linkOf,
			Diameter:     -1, // probabilistic; usually <= 3-4
			NominalRadix: kp,
		}
		return t.finish(), nil
	}
	return nil, fmt.Errorf("jellyfish: failed to build connected graph after %d attempts", maxAttempts)
}

func jellyfishAttempt(nr, kp int, rng *rand.Rand) (*graph.Graph, bool) {
	g := graph.New(nr)
	free := make([]int, nr)
	for i := range free {
		free[i] = kp
	}
	// Routers with at least one free port.
	openSet := make([]int, nr)
	for i := range openSet {
		openSet[i] = i
	}
	compact := func() {
		w := 0
		for _, v := range openSet {
			if free[v] > 0 {
				openSet[w] = v
				w++
			}
		}
		openSet = openSet[:w]
	}
	totalFree := nr * kp
	stuck := 0
	for totalFree > 1 {
		compact()
		if len(openSet) == 0 {
			break
		}
		if len(openSet) == 1 || stuck > 4*nr {
			// Rewire step from the Jellyfish paper: u has >= 2 free ports;
			// pick a random edge (a,b) not incident to u, remove it, add
			// (u,a) and (u,b).
			u := openSet[0]
			if free[u] < 2 || g.M() == 0 {
				break
			}
			rewired := false
			for try := 0; try < 64; try++ {
				e := g.Edge(rng.Intn(g.M()))
				a, b := int(e.U), int(e.V)
				if a == u || b == u || g.HasEdge(u, a) || g.HasEdge(u, b) {
					continue
				}
				// Rebuild without edge (a,b): graph has no edge removal, so
				// reconstruct. Cheap at these sizes and keeps Graph simple.
				ng := graph.New(nr)
				for _, old := range g.Edges() {
					if (int(old.U) == a && int(old.V) == b) || (int(old.U) == b && int(old.V) == a) {
						continue
					}
					ng.AddEdge(int(old.U), int(old.V))
				}
				ng.AddEdge(u, a)
				ng.AddEdge(u, b)
				g = ng
				free[u] -= 2
				totalFree -= 2
				rewired = true
				break
			}
			if !rewired {
				return g, false
			}
			stuck = 0
			continue
		}
		i := rng.Intn(len(openSet))
		j := rng.Intn(len(openSet) - 1)
		if j >= i {
			j++
		}
		u, v := openSet[i], openSet[j]
		if g.TryAddEdge(u, v) {
			free[u]--
			free[v]--
			totalFree -= 2
			stuck = 0
		} else {
			stuck++
		}
	}
	return g, true
}

// EquivalentJellyfish builds the X-JF network of §II-B: a Jellyfish with the
// same router count, network radix, and concentration as t. For
// heterogeneous topologies (fat trees) it uses the average router-router
// degree and average concentration, as the paper does when N/Nr is
// fractional.
func EquivalentJellyfish(t *Topology, rng *rand.Rand) (*Topology, error) {
	nr := t.Nr()
	kp := int(float64(2*t.G.M())/float64(nr) + 0.5)
	if kp >= nr {
		kp = nr - 1
	}
	p := int(float64(t.N())/float64(nr) + 0.5)
	if p < 1 {
		p = 1
	}
	jf, err := Jellyfish(nr, kp, p, rng)
	if err != nil {
		return nil, err
	}
	jf.Name = t.Name + "-JF"
	return jf, nil
}
