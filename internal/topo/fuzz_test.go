package topo

import (
	"math/rand"
	"testing"
)

// FuzzBuilders drives every topology constructor with arbitrary small
// parameters: a builder must either return an error or a topology passing
// Validate (connected router graph, consistent concentration table,
// endpoints attached) — never panic. Parameters are bounded so a fuzzing
// session explores parameter validity, not construction scale.
func FuzzBuilders(f *testing.F) {
	for _, seed := range [][4]int64{
		{0, 5, 0, 1},  // SlimFly q=5
		{0, 4, 0, 1},  // SlimFly non-prime
		{0, -7, 3, 1}, // negative q
		{1, 3, 0, 1},  // Dragonfly
		{2, 4, 3, 1},  // HyperX
		{3, 4, 2, 1},  // FatTree3
		{4, 15, 0, 1}, // Complete
		{5, 24, 0, 1}, // Star
		{5, 0, 0, 1},  // Star n=0
		{6, 8, 8, 7},  // Xpander
		{7, 18, 5, 7}, // Jellyfish
		{7, 3, 9, 7},  // Jellyfish kp >= nr
		{8, 6, 2, 7},  // XpanderMultiLift
	} {
		f.Add(int16(seed[0]), int16(seed[1]), int16(seed[2]), seed[3])
	}
	f.Fuzz(func(t *testing.T, which, a, b int16, seed int64) {
		pa, pb := int(a), int(b)
		rng := rand.New(rand.NewSource(seed))
		var tp *Topology
		var err error
		switch mod(int(which), 9) {
		case 0:
			tp, err = SlimFly(mod(pa, 30), mod(pb, 40))
		case 1:
			tp, err = Dragonfly(mod(pa, 6))
		case 2:
			tp, err = HyperX(mod(pa, 5), mod(pb, 9), 0)
		case 3:
			tp, err = FatTree3(mod(pa, 7), mod(pb, 4))
		case 4:
			tp, err = Complete(mod(pa, 40), mod(pb, 40))
		case 5:
			tp, err = Star(mod(pa, 64))
		case 6:
			tp, err = Xpander(mod(pa, 12), mod(pb, 12), 0, rng)
		case 7:
			tp, err = Jellyfish(mod(pa, 40), mod(pb, 16), 2, rng)
		case 8:
			tp, err = XpanderMultiLift(mod(pa, 8), mod(pb, 4), 0, rng)
		}
		if err != nil {
			return
		}
		if tp == nil {
			t.Fatal("builder returned neither topology nor error")
		}
		if verr := tp.Validate(); verr != nil {
			t.Fatalf("builder accepted (which=%d a=%d b=%d) but built an invalid topology: %v", which, a, b, verr)
		}
	})
}

// FuzzByName checks the name-based registry entry point used by the
// scenario engine: any (kind, class) pair yields a valid topology or an
// error. The medium class builds the paper's N≈10k networks, so only the
// small class (and invalid classes) are fuzzed.
func FuzzByName(f *testing.F) {
	for _, kind := range []string{"SF", "DF", "HX", "XP", "FT3", "FT", "JF", "Clique", "Star", "TORUS", ""} {
		f.Add(kind, int16(0), int64(1))
	}
	f.Add("SF", int16(9), int64(1)) // invalid size class
	f.Fuzz(func(t *testing.T, kind string, class int16, seed int64) {
		cl := SizeClass(class)
		if cl == Medium {
			cl = Small
		}
		tp, err := ByName(kind, cl, rand.New(rand.NewSource(seed)))
		if err != nil {
			return
		}
		if verr := tp.Validate(); verr != nil {
			t.Fatalf("ByName(%q, %d) built an invalid topology: %v", kind, cl, verr)
		}
	})
}
