package topo

import "fmt"

// CostModel is the linear equipment cost model of §VII-A2, following the
// Slim Fly / Dragonfly / Flattened Butterfly cost methodology: router cost
// is linear in total radix, cables are priced per link with fiber (long,
// inter-group) more expensive than copper (short, intra-group and endpoint)
// cables. Prices are k$ per unit and parametrize 100GbE-class equipment;
// the defaults follow the published per-port figures used by the Slim Fly
// paper's model.
type CostModel struct {
	// SwitchBase is the fixed cost of a router chassis (k$).
	SwitchBase float64
	// SwitchPerPort is the marginal cost per router port (k$/port).
	SwitchPerPort float64
	// CopperPerLink is the cost of a short electric cable (k$).
	CopperPerLink float64
	// FiberPerLink is the cost of a long optic cable (k$).
	FiberPerLink float64
	// EndpointNIC is the per-endpoint adapter cost (k$).
	EndpointNIC float64
}

// Default100GbE is the 100GbE-class price point used for Figure 10.
func Default100GbE() CostModel {
	return CostModel{
		SwitchBase:    1.0,
		SwitchPerPort: 0.350,
		CopperPerLink: 0.110,
		FiberPerLink:  0.400,
		EndpointNIC:   0.550,
	}
}

// CostBreakdown is the per-endpoint cost split plotted in Figure 10.
type CostBreakdown struct {
	Switches       float64 // router cost per endpoint (k$)
	EndpointLinks  float64 // endpoint cables + NICs per endpoint (k$)
	InterconnLinks float64 // router-router cables per endpoint (k$)
}

// Total returns the total cost per endpoint.
func (c CostBreakdown) Total() float64 {
	return c.Switches + c.EndpointLinks + c.InterconnLinks
}

func (c CostBreakdown) String() string {
	return fmt.Sprintf("total=%.3f (switches=%.3f endpoints=%.3f interconnect=%.3f) k$/endpoint",
		c.Total(), c.Switches, c.EndpointLinks, c.InterconnLinks)
}

// Cost evaluates the model on a topology, returning per-endpoint costs.
func (m CostModel) Cost(t *Topology) CostBreakdown {
	n := float64(t.N())
	var switches float64
	for r := 0; r < t.Nr(); r++ {
		ports := t.Conc[r] + t.G.Degree(r)
		switches += m.SwitchBase + m.SwitchPerPort*float64(ports)
	}
	var interconnect float64
	for id := range t.G.Edges() {
		switch t.LinkOf[id] {
		case Copper:
			interconnect += m.CopperPerLink
		case Fiber:
			interconnect += m.FiberPerLink
		}
	}
	endpoints := n * (m.CopperPerLink + m.EndpointNIC)
	return CostBreakdown{
		Switches:       switches / n,
		EndpointLinks:  endpoints / n,
		InterconnLinks: interconnect / n,
	}
}
