package topo

import (
	"fmt"

	"repro/internal/graph"
)

// Slim Fly (Besta & Hoefler, SC'14) is the diameter-2 MMS-graph topology.
// For a prime q = 4w + δ with δ ∈ {-1, +1}, the MMS graph has N_r = 2q²
// routers arranged as two subgraphs of q groups with q routers each.
// Vertices are (b, x, y) with b ∈ {0,1} and x, y ∈ GF(q):
//
//	(0, x, y) ~ (0, x, y′)  iff  y − y′ ∈ X   (intra-group, subgraph 0)
//	(1, m, c) ~ (1, m, c′)  iff  c − c′ ∈ X′  (intra-group, subgraph 1)
//	(0, x, y) ~ (1, m, c)   iff  y = m·x + c  (inter-subgraph)
//
// where, with ξ a primitive root of GF(q):
//
//	δ = +1 (q ≡ 1 mod 4): X = even powers of ξ, X′ = odd powers.
//	δ = −1 (q ≡ 3 mod 4): X = {±ξ^{2i} : 0 ≤ i < w}, X′ = {±ξ^{2i+1}}.
//
// Both generator sets are inverse-closed, so the graph is undirected. The
// network radix is k′ = (3q − δ)/2 and the diameter is 2. The paper attaches
// p = ⌈k′/2⌉ endpoints per router.

// SlimFly builds the MMS Slim Fly for prime q ≡ 1 or 3 (mod 4). Pass p <= 0
// for the paper's default concentration ⌈k′/2⌉.
func SlimFly(q, p int) (*Topology, error) {
	if q < 3 || !isPrime(q) {
		return nil, fmt.Errorf("slimfly: q=%d must be an odd prime (prime-power fields not implemented; see README.md's topology notes)", q)
	}
	var delta int
	switch q % 4 {
	case 1:
		delta = 1
	case 3:
		delta = -1
	default:
		return nil, fmt.Errorf("slimfly: q=%d is not ±1 mod 4", q)
	}
	xi := primitiveRoot(q)
	X, Xp := mmsGeneratorSets(q, delta, xi)

	nr := 2 * q * q
	kp := (3*q - delta) / 2
	if p <= 0 {
		p = ceilDiv(kp, 2)
	}
	g := graph.New(nr)
	linkOf := make([]LinkClass, 0, nr*kp/2)
	id := func(b, x, y int) int { return b*q*q + x*q + y }

	// Intra-group edges in both subgraphs (short, copper).
	addIntra := func(b int, gen map[int]bool) {
		for x := 0; x < q; x++ {
			for y := 0; y < q; y++ {
				for yp := y + 1; yp < q; yp++ {
					if gen[mod(y-yp, q)] {
						g.AddEdge(id(b, x, y), id(b, x, yp))
						linkOf = append(linkOf, Copper)
					}
				}
			}
		}
	}
	addIntra(0, X)
	addIntra(1, Xp)

	// Inter-subgraph edges: (0,x,y) ~ (1,m,c) iff y = m·x + c (long, fiber).
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			for x := 0; x < q; x++ {
				y := (m*x + c) % q
				g.AddEdge(id(0, x, y), id(1, m, c))
				linkOf = append(linkOf, Fiber)
			}
		}
	}

	if ok, d := g.IsRegular(); !ok || d != kp {
		return nil, fmt.Errorf("slimfly: q=%d produced non-%d-regular graph (construction bug)", q, kp)
	}
	conc := make([]int, nr)
	for i := range conc {
		conc[i] = p
	}
	t := &Topology{
		Name:         fmt.Sprintf("SF(q=%d,p=%d)", q, p),
		Kind:         "SF",
		G:            g,
		Conc:         conc,
		LinkOf:       linkOf,
		Diameter:     2,
		NominalRadix: kp,
	}
	return t.finish(), nil
}

// mmsGeneratorSets returns the inverse-closed generator sets X and X′ for
// the MMS construction.
func mmsGeneratorSets(q, delta, xi int) (X, Xp map[int]bool) {
	X = make(map[int]bool)
	Xp = make(map[int]bool)
	if delta == 1 {
		// All even and odd powers of ξ respectively; each has (q-1)/2
		// elements and is inverse-closed because -1 is a quadratic residue.
		pow := 1
		for i := 0; i < q-1; i++ {
			if i%2 == 0 {
				X[pow] = true
			} else {
				Xp[pow] = true
			}
			pow = pow * xi % q
		}
		return X, Xp
	}
	// δ = -1, q = 4w - 1: X = {±ξ^{2i}}, X′ = {±ξ^{2i+1}} for 0 ≤ i < w.
	w := (q + 1) / 4
	pow := 1
	for i := 0; i < 2*w; i++ {
		if i%2 == 0 {
			X[pow] = true
			X[mod(-pow, q)] = true
		} else {
			Xp[pow] = true
			Xp[mod(-pow, q)] = true
		}
		pow = pow * xi % q
	}
	return X, Xp
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// primitiveRoot returns a generator of the multiplicative group of GF(q)
// for prime q.
func primitiveRoot(q int) int {
	phi := q - 1
	// Prime factors of phi.
	var factors []int
	m := phi
	for d := 2; d*d <= m; d++ {
		if m%d == 0 {
			factors = append(factors, d)
			for m%d == 0 {
				m /= d
			}
		}
	}
	if m > 1 {
		factors = append(factors, m)
	}
	for g := 2; g < q; g++ {
		ok := true
		for _, f := range factors {
			if powMod(g, phi/f, q) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	panic("primitiveRoot: none found (q not prime?)")
}

func powMod(b, e, m int) int {
	r := 1
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = r * b % m
		}
		b = b * b % m
		e >>= 1
	}
	return r
}

// SlimFlyQs lists the prime q values usable by SlimFly in increasing order
// up to max (primes ≡ ±1 mod 4, i.e. all odd primes).
func SlimFlyQs(max int) []int {
	var qs []int
	for q := 3; q <= max; q++ {
		if isPrime(q) {
			qs = append(qs, q)
		}
	}
	return qs
}
