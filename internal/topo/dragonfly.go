package topo

import (
	"fmt"

	"repro/internal/graph"
)

// Dragonfly (Kim et al., ISCA'08), "balanced" variant of §3.1 of that paper
// as used by FatPaths (Table V): a single parameter p determines
//
//	a = 2p   routers per group (fully connected locally),
//	h = p    global channels per router,
//	g = a·h + 1 = 2p² + 1 groups (fully connected group graph, one link
//	         per group pair),
//	N_r = a·g = 4p³ + 2p routers, k′ = a − 1 + h = 3p − 1, D = 3.
//
// Global link arrangement is the standard "absolute" one: group i reserves
// slot s = (j − i − 1) mod g for its link to group j; slot s belongs to
// router s/h, port s mod h.
func Dragonfly(p int) (*Topology, error) {
	if p < 1 {
		return nil, fmt.Errorf("dragonfly: p=%d must be >= 1", p)
	}
	a := 2 * p
	h := p
	ng := a*h + 1
	nr := a * ng
	g := graph.New(nr)
	var linkOf []LinkClass
	id := func(grp, r int) int { return grp*a + r }

	// Local links: clique within each group (copper).
	for grp := 0; grp < ng; grp++ {
		for r1 := 0; r1 < a; r1++ {
			for r2 := r1 + 1; r2 < a; r2++ {
				g.AddEdge(id(grp, r1), id(grp, r2))
				linkOf = append(linkOf, Copper)
			}
		}
	}
	// Global links: one per group pair (fiber).
	for i := 0; i < ng; i++ {
		for j := i + 1; j < ng; j++ {
			si := mod(j-i-1, ng)
			sj := mod(i-j-1, ng)
			g.AddEdge(id(i, si/h), id(j, sj/h))
			linkOf = append(linkOf, Fiber)
		}
	}

	if ok, d := g.IsRegular(); !ok || d != 3*p-1 {
		return nil, fmt.Errorf("dragonfly: p=%d produced irregular graph (construction bug)", p)
	}
	conc := make([]int, nr)
	for i := range conc {
		conc[i] = p
	}
	t := &Topology{
		Name:         fmt.Sprintf("DF(p=%d)", p),
		Kind:         "DF",
		G:            g,
		Conc:         conc,
		LinkOf:       linkOf,
		Diameter:     3,
		NominalRadix: 3*p - 1,
	}
	return t.finish(), nil
}

// DragonflyGroupOf returns the group index of router r for a Dragonfly
// built with parameter p.
func DragonflyGroupOf(p, r int) int { return r / (2 * p) }
