package topo

import (
	"fmt"
	"math/rand"
)

// SizeClass selects one of the paper's network size categories (§II-B).
// Packet-level experiments default to Small; analytic experiments use the
// paper's exact Table IV configurations via TableIVSet.
type SizeClass int

const (
	// Small is N ≈ 200–1,000 endpoints (fast enough for packet simulation
	// inside `go test`).
	Small SizeClass = iota
	// Medium is N ≈ 7,000–17,000 endpoints (the paper's N≈10k class).
	Medium
)

// Suite holds one topology of each deterministic family at comparable size,
// the set compared throughout the evaluation.
type Suite struct {
	SF, DF, HX, XP, FT *Topology
}

// All returns the suite members in the paper's presentation order.
func (s *Suite) All() []*Topology {
	return []*Topology{s.SF, s.DF, s.HX, s.XP, s.FT}
}

// BuildSuite constructs the comparison suite for a size class. All
// constructions are deterministic given rng.
func BuildSuite(class SizeClass, rng *rand.Rand) (*Suite, error) {
	var s Suite
	var err error
	switch class {
	case Small:
		// N: SF 588, DF 342, HX 500, XP 288, FT 500.
		if s.SF, err = SlimFly(7, 0); err != nil {
			return nil, err
		}
		if s.DF, err = Dragonfly(3); err != nil {
			return nil, err
		}
		if s.HX, err = HyperX(3, 5, 0); err != nil {
			return nil, err
		}
		if s.XP, err = Xpander(8, 8, 0, rng); err != nil {
			return nil, err
		}
		if s.FT, err = FatTree3(5, 2); err != nil {
			return nil, err
		}
	case Medium:
		// The paper's N≈10k class (Table IV parameters).
		if s.SF, err = SlimFly(19, 14); err != nil {
			return nil, err
		}
		if s.DF, err = Dragonfly(8); err != nil {
			return nil, err
		}
		if s.HX, err = HyperX(3, 11, 10); err != nil {
			return nil, err
		}
		if s.XP, err = Xpander(32, 32, 16, rng); err != nil {
			return nil, err
		}
		if s.FT, err = FatTree3(18, 1); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown size class %d", class)
	}
	return &s, nil
}

// TableIVConfig describes one row of the paper's Table IV with the exact
// published parameters.
type TableIVConfig struct {
	Name  string
	DPrim int // the distance d' at which CDP and PI are evaluated
	Build func(rng *rand.Rand) (*Topology, error)
}

// TableIVSet returns the six default-variant rows of Table IV (clique, SF,
// XP, HX, DF, FT3) with the paper's exact k′, N_r, N.
func TableIVSet() []TableIVConfig {
	return []TableIVConfig{
		{"clique", 2, func(*rand.Rand) (*Topology, error) { return Complete(100, 100) }},
		{"SF", 3, func(*rand.Rand) (*Topology, error) { return SlimFly(19, 14) }},
		{"XP", 3, func(r *rand.Rand) (*Topology, error) { return Xpander(32, 32, 16, r) }},
		{"HX", 3, func(*rand.Rand) (*Topology, error) { return HyperX(3, 11, 10) }},
		{"DF", 4, func(*rand.Rand) (*Topology, error) { return Dragonfly(8) }},
		{"FT3", 4, func(*rand.Rand) (*Topology, error) { return FatTree3(18, 1) }},
	}
}

// ByName builds a topology family at a size class by its paper abbreviation
// (SF, DF, HX, XP, FT3, JF, Clique). JF is the SF-equivalent Jellyfish.
func ByName(kind string, class SizeClass, rng *rand.Rand) (*Topology, error) {
	suite, err := BuildSuite(class, rng)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "SF":
		return suite.SF, nil
	case "DF":
		return suite.DF, nil
	case "HX":
		return suite.HX, nil
	case "XP":
		return suite.XP, nil
	case "FT3", "FT":
		return suite.FT, nil
	case "JF":
		return EquivalentJellyfish(suite.SF, rng)
	case "Clique":
		if class == Medium {
			return Complete(100, 100)
		}
		return Complete(31, 31)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}
