package topo

import (
	"fmt"

	"repro/internal/graph"
)

// FatTree3 builds a three-stage fat tree (three router layers, the paper's
// FT3) parametrized by the half-radix m and an integer oversubscription
// factor o:
//
//	pods:        2m, each with m edge and m aggregation routers
//	core:        m² routers in m groups of m
//	edge router: o·m endpoints + m uplinks (one to each agg in its pod)
//	agg router:  m downlinks + m uplinks (agg j -> core group j, all m)
//	N_r = 5m², N = 2m · m · o·m = 2·o·m³, D = 4.
//
// o=1 is the classic non-blocking k-ary fat tree with k = 2m (N = k³/4,
// N_r = 5k²/4, matching Table V); o=2 is the paper's 2×-oversubscribed
// variant used for cost-equalized comparisons (§VII-A1).
//
// Router numbering: pods first (edge then agg within each pod), core last.
func FatTree3(m, o int) (*Topology, error) {
	if m < 1 || o < 1 {
		return nil, fmt.Errorf("fattree3: invalid m=%d o=%d", m, o)
	}
	pods := 2 * m
	nr := pods*2*m + m*m
	g := graph.New(nr)
	var linkOf []LinkClass

	edgeID := func(pod, i int) int { return pod*2*m + i }
	aggID := func(pod, j int) int { return pod*2*m + m + j }
	coreID := func(grp, c int) int { return pods*2*m + grp*m + c }

	for pod := 0; pod < pods; pod++ {
		// Edge <-> agg: complete bipartite within the pod (copper).
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				g.AddEdge(edgeID(pod, i), aggID(pod, j))
				linkOf = append(linkOf, Copper)
			}
		}
		// Agg j <-> all cores in group j (fiber).
		for j := 0; j < m; j++ {
			for c := 0; c < m; c++ {
				g.AddEdge(aggID(pod, j), coreID(j, c))
				linkOf = append(linkOf, Fiber)
			}
		}
	}

	conc := make([]int, nr)
	for pod := 0; pod < pods; pod++ {
		for i := 0; i < m; i++ {
			conc[edgeID(pod, i)] = o * m
		}
	}
	t := &Topology{
		Name:         fmt.Sprintf("FT3(m=%d,o=%d)", m, o),
		Kind:         "FT3",
		G:            g,
		Conc:         conc,
		LinkOf:       linkOf,
		Diameter:     4,
		NominalRadix: m, // network radix of endpoint-hosting (edge) routers
	}
	return t.finish(), nil
}

// FT3Layer reports which layer a router of an FT3(m, ·) belongs to:
// 0 = edge, 1 = aggregation, 2 = core.
func FT3Layer(m, r int) int {
	pods := 2 * m
	if r >= pods*2*m {
		return 2
	}
	if r%(2*m) < m {
		return 0
	}
	return 1
}

// Complete builds the fully connected graph K_{k′+1} with p endpoints per
// router (default p = k′, the 2×-oversubscribed crossbar of Appendix A-G).
func Complete(kp, p int) (*Topology, error) {
	if kp < 1 {
		return nil, fmt.Errorf("complete: k'=%d must be >= 1", kp)
	}
	if p <= 0 {
		p = kp
	}
	nr := kp + 1
	g := graph.New(nr)
	var linkOf []LinkClass
	for i := 0; i < nr; i++ {
		for j := i + 1; j < nr; j++ {
			g.AddEdge(i, j)
			linkOf = append(linkOf, Fiber)
		}
	}
	conc := make([]int, nr)
	for i := range conc {
		conc[i] = p
	}
	t := &Topology{
		Name:         fmt.Sprintf("Clique(k'=%d,p=%d)", kp, p),
		Kind:         "Clique",
		G:            g,
		Conc:         conc,
		LinkOf:       linkOf,
		Diameter:     1,
		NominalRadix: kp,
	}
	return t.finish(), nil
}

// Star builds the single-crossbar baseline of Appendix D: one router with n
// endpoints and no router-router links. It is the TCP-effects calibration
// target (Fig 20/21).
func Star(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("star: n=%d must be >= 1", n)
	}
	g := graph.New(1)
	t := &Topology{
		Name:         fmt.Sprintf("Star(n=%d)", n),
		Kind:         "Star",
		G:            g,
		Conc:         []int{n},
		LinkOf:       nil,
		Diameter:     0,
		NominalRadix: 0,
	}
	return t.finish(), nil
}
