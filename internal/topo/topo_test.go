package topo

import (
	"testing"

	"repro/internal/graph"
)

func TestSlimFlyStructure(t *testing.T) {
	cases := []struct {
		q, wantNr, wantKp, wantD int
	}{
		{5, 50, 7, 2},  // δ=+1
		{7, 98, 11, 2}, // δ=-1
		{11, 242, 17, 2},
		{13, 338, 19, 2},
		{19, 722, 29, 2}, // Table IV row
	}
	for _, c := range cases {
		sf, err := SlimFly(c.q, 0)
		if err != nil {
			t.Fatalf("SlimFly(%d): %v", c.q, err)
		}
		if sf.Nr() != c.wantNr {
			t.Errorf("q=%d: Nr=%d, want %d", c.q, sf.Nr(), c.wantNr)
		}
		if ok, d := sf.G.IsRegular(); !ok || d != c.wantKp {
			t.Errorf("q=%d: regular=(%v,%d), want (true,%d)", c.q, ok, d, c.wantKp)
		}
		d, _ := sf.G.DiameterAndMean()
		if d != c.wantD {
			t.Errorf("q=%d: diameter=%d, want %d", c.q, d, c.wantD)
		}
		if err := sf.Validate(); err != nil {
			t.Errorf("q=%d: %v", c.q, err)
		}
	}
}

func TestSlimFlyTableIVEndpoints(t *testing.T) {
	sf, err := SlimFly(19, 14)
	if err != nil {
		t.Fatal(err)
	}
	if sf.N() != 10108 {
		t.Fatalf("SF(19) N=%d, want 10108 (Table IV)", sf.N())
	}
}

func TestSlimFlyRejectsBadQ(t *testing.T) {
	for _, q := range []int{4, 6, 8, 9, 15, 1, 0, -3} {
		if _, err := SlimFly(q, 0); err == nil {
			t.Errorf("SlimFly(%d) should fail", q)
		}
	}
}

func TestDragonflyStructure(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		df, err := Dragonfly(p)
		if err != nil {
			t.Fatal(err)
		}
		wantNr := 4*p*p*p + 2*p
		if df.Nr() != wantNr {
			t.Errorf("p=%d: Nr=%d, want %d", p, df.Nr(), wantNr)
		}
		if ok, d := df.G.IsRegular(); !ok || d != 3*p-1 {
			t.Errorf("p=%d: not (3p-1)-regular", p)
		}
		if p <= 4 {
			d, _ := df.G.DiameterAndMean()
			if d != 3 {
				t.Errorf("p=%d: diameter=%d, want 3", p, d)
			}
		}
		if err := df.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Table IV row: DF p=8 -> k'=23, Nr=2064, N=16512.
	df, _ := Dragonfly(8)
	if df.Nr() != 2064 || df.NominalRadix != 23 || df.N() != 16512 {
		t.Fatalf("DF(8): Nr=%d k'=%d N=%d, want 2064/23/16512", df.Nr(), df.NominalRadix, df.N())
	}
}

func TestDragonflyGlobalLinksFormCompleteGroupGraph(t *testing.T) {
	p := 3
	df, _ := Dragonfly(p)
	ng := 2*p*p + 1
	seen := make(map[[2]int]int)
	for _, e := range df.G.Edges() {
		gu, gv := DragonflyGroupOf(p, int(e.U)), DragonflyGroupOf(p, int(e.V))
		if gu == gv {
			continue
		}
		if gu > gv {
			gu, gv = gv, gu
		}
		seen[[2]int{gu, gv}]++
	}
	want := ng * (ng - 1) / 2
	if len(seen) != want {
		t.Fatalf("group pairs with links = %d, want %d", len(seen), want)
	}
	for pair, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("group pair %v has %d links, want exactly 1", pair, cnt)
		}
	}
}

func TestJellyfishStructure(t *testing.T) {
	rng := graph.NewRand(42)
	jf, err := Jellyfish(100, 7, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if jf.Nr() != 100 || jf.N() != 400 {
		t.Fatalf("Nr=%d N=%d", jf.Nr(), jf.N())
	}
	if !jf.G.Connected() {
		t.Fatal("jellyfish must be connected")
	}
	// Degrees: all 7 except possibly one router at 6 (odd Nr*k').
	hist := jf.G.DegreeHistogram()
	if hist[7] < 98 {
		t.Fatalf("degree histogram %v: want almost all routers at degree 7", hist)
	}
}

func TestJellyfishEvenDegreeExactlyRegular(t *testing.T) {
	rng := graph.NewRand(7)
	jf, err := Jellyfish(60, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, d := jf.G.IsRegular(); !ok || d != 6 {
		t.Fatalf("JF(60,6) should be 6-regular, got %v", jf.G.DegreeHistogram())
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	a, _ := Jellyfish(50, 5, 3, graph.NewRand(1))
	b, _ := Jellyfish(50, 5, 3, graph.NewRand(1))
	if a.G.M() != b.G.M() {
		t.Fatal("same seed must give same graph")
	}
	for i, e := range a.G.Edges() {
		if e != b.G.Edge(i) {
			t.Fatal("same seed must give identical edge lists")
		}
	}
}

func TestJellyfishInvalidParams(t *testing.T) {
	rng := graph.NewRand(1)
	if _, err := Jellyfish(1, 1, 1, rng); err == nil {
		t.Error("nr=1 should fail")
	}
	if _, err := Jellyfish(10, 10, 1, rng); err == nil {
		t.Error("kp>=nr should fail")
	}
	if _, err := Jellyfish(10, 3, 0, rng); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestXpanderStructure(t *testing.T) {
	rng := graph.NewRand(3)
	xp, err := Xpander(8, 8, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if xp.Nr() != 72 {
		t.Fatalf("Nr=%d, want 72", xp.Nr())
	}
	if ok, d := xp.G.IsRegular(); !ok || d != 8 {
		t.Fatalf("Xpander must be 8-regular, got %v", xp.G.DegreeHistogram())
	}
	if !xp.G.Connected() {
		t.Fatal("must be connected")
	}
	d, _ := xp.G.DiameterAndMean()
	if d > 4 {
		t.Fatalf("XP(8,8) diameter=%d, expected <= 4 at this tiny scale", d)
	}
	// The paper's D <= 3 claim holds at its parameters (l = k', k' >= 16).
	xpBig, err := Xpander(16, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := xpBig.G.DiameterAndMean(); d > 3 {
		t.Fatalf("XP(16,16) diameter=%d, expected <= 3", d)
	}
	// Table IV row: XP k'=32, Nr=1056, N=16896.
	xp2, err := Xpander(32, 32, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	if xp2.Nr() != 1056 || xp2.N() != 16896 {
		t.Fatalf("XP(32): Nr=%d N=%d, want 1056/16896", xp2.Nr(), xp2.N())
	}
}

func TestHyperXStructure(t *testing.T) {
	hx, err := HyperX(3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hx.Nr() != 125 {
		t.Fatalf("Nr=%d, want 125", hx.Nr())
	}
	if ok, d := hx.G.IsRegular(); !ok || d != 12 {
		t.Fatal("HX(3,5) must be 12-regular")
	}
	d, _ := hx.G.DiameterAndMean()
	if d != 3 {
		t.Fatalf("diameter=%d, want 3", d)
	}
	// Table IV row: HX S=11 L=3: k'=30, Nr=1331, N=13310.
	hx2, _ := HyperX(3, 11, 10)
	if hx2.Nr() != 1331 || hx2.NominalRadix != 30 || hx2.N() != 13310 {
		t.Fatalf("HX(3,11): Nr=%d k'=%d N=%d", hx2.Nr(), hx2.NominalRadix, hx2.N())
	}
	// 2D HyperX is a rook's graph with diameter 2.
	hx3, _ := HyperX(2, 4, 0)
	if d, _ := hx3.G.DiameterAndMean(); d != 2 {
		t.Fatalf("HX(2,4) diameter=%d, want 2", d)
	}
}

func TestFatTree3Structure(t *testing.T) {
	ft, err := FatTree3(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// m=4 (k=8): Nr=5*16=80, N=2*64=128, D=4.
	if ft.Nr() != 80 || ft.N() != 128 {
		t.Fatalf("FT3(4,1): Nr=%d N=%d, want 80/128", ft.Nr(), ft.N())
	}
	d, _ := ft.G.DiameterAndMean()
	if d != 4 {
		t.Fatalf("diameter=%d, want 4", d)
	}
	// Table IV/V row: k=36 -> m=18, o=1: Nr=1620, N=11664.
	ft2, _ := FatTree3(18, 1)
	if ft2.Nr() != 1620 || ft2.N() != 11664 {
		t.Fatalf("FT3(18,1): Nr=%d N=%d, want 1620/11664", ft2.Nr(), ft2.N())
	}
	// Oversubscribed: doubles endpoints, same routers.
	ft3, _ := FatTree3(4, 2)
	if ft3.Nr() != 80 || ft3.N() != 256 {
		t.Fatalf("FT3(4,2): Nr=%d N=%d, want 80/256", ft3.Nr(), ft3.N())
	}
}

func TestFatTree3Layers(t *testing.T) {
	m := 3
	ft, _ := FatTree3(m, 1)
	// Edge routers host endpoints; agg and core host none.
	for r := 0; r < ft.Nr(); r++ {
		layer := FT3Layer(m, r)
		lo, hi := ft.Endpoints(r)
		hosts := hi - lo
		if layer == 0 && hosts != m {
			t.Fatalf("edge router %d hosts %d, want %d", r, hosts, m)
		}
		if layer != 0 && hosts != 0 {
			t.Fatalf("non-edge router %d hosts %d, want 0", r, hosts)
		}
		// Degree by layer: edge m, agg 2m, core 2m (one per pod... core
		// connects to one agg in each of 2m pods).
		deg := ft.G.Degree(r)
		switch layer {
		case 0:
			if deg != m {
				t.Fatalf("edge degree %d, want %d", deg, m)
			}
		case 1:
			if deg != 2*m {
				t.Fatalf("agg degree %d, want %d", deg, 2*m)
			}
		case 2:
			if deg != 2*m {
				t.Fatalf("core degree %d, want %d", deg, 2*m)
			}
		}
	}
}

func TestCompleteAndStar(t *testing.T) {
	c, err := Complete(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nr() != 10 || c.N() != 90 {
		t.Fatalf("clique: Nr=%d N=%d", c.Nr(), c.N())
	}
	if d, _ := c.G.DiameterAndMean(); d != 1 {
		t.Fatal("clique diameter must be 1")
	}
	s, err := Star(64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nr() != 1 || s.N() != 64 || s.G.M() != 0 {
		t.Fatal("star must be a single router")
	}
}

func TestRouterOfAndEndpoints(t *testing.T) {
	ft, _ := FatTree3(3, 1)
	for e := 0; e < ft.N(); e++ {
		r := ft.RouterOf(e)
		lo, hi := ft.Endpoints(r)
		if e < lo || e >= hi {
			t.Fatalf("endpoint %d mapped to router %d with range [%d,%d)", e, r, lo, hi)
		}
	}
	// Round-trip over all routers covers all endpoints exactly once.
	covered := 0
	for r := 0; r < ft.Nr(); r++ {
		lo, hi := ft.Endpoints(r)
		covered += hi - lo
	}
	if covered != ft.N() {
		t.Fatalf("endpoint ranges cover %d, want %d", covered, ft.N())
	}
}

func TestEquivalentJellyfish(t *testing.T) {
	sf, _ := SlimFly(7, 0)
	jf, err := EquivalentJellyfish(sf, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if jf.Nr() != sf.Nr() {
		t.Fatalf("JF Nr=%d, want %d", jf.Nr(), sf.Nr())
	}
	if jf.N() != sf.N() {
		t.Fatalf("JF N=%d, want %d", jf.N(), sf.N())
	}
	if jf.G.M() != sf.G.M() {
		t.Fatalf("JF M=%d, want %d (same hardware)", jf.G.M(), sf.G.M())
	}
}

func TestCostModel(t *testing.T) {
	model := Default100GbE()
	sf, _ := SlimFly(7, 0)
	df, _ := Dragonfly(3)
	cSF, cDF := model.Cost(sf), model.Cost(df)
	if cSF.Total() <= 0 || cDF.Total() <= 0 {
		t.Fatal("costs must be positive")
	}
	if cSF.Switches <= 0 || cSF.EndpointLinks <= 0 || cSF.InterconnLinks <= 0 {
		t.Fatal("all components must be positive")
	}
	// Endpoint cost component is topology-independent per endpoint.
	if cSF.EndpointLinks != cDF.EndpointLinks {
		t.Fatal("endpoint-link cost per endpoint should not depend on topology")
	}
}

func TestEdgeDensityAsymptoticallyConstant(t *testing.T) {
	// Fig 19: edge density is ~2-3 and roughly flat in N for each family.
	var prev float64
	for _, q := range []int{5, 7, 11, 13} {
		sf, _ := SlimFly(q, 0)
		d := sf.EdgeDensity()
		if d < 1.5 || d > 3.5 {
			t.Fatalf("SF(q=%d) edge density %f out of the paper's 2-3 band", q, d)
		}
		if prev != 0 && (d/prev > 1.3 || prev/d > 1.3) {
			t.Fatalf("edge density should be roughly flat: %f -> %f", prev, d)
		}
		prev = d
	}
}

func TestBuildSuiteSmall(t *testing.T) {
	s, err := BuildSuite(Small, graph.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.All() {
		if err := tp.Validate(); err != nil {
			t.Error(err)
		}
		if tp.N() < 100 || tp.N() > 1200 {
			t.Errorf("%s: N=%d outside the small class", tp.Name, tp.N())
		}
	}
}

func TestBuildSuiteMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium suite is slow in -short mode")
	}
	s, err := BuildSuite(Medium, graph.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.All() {
		if err := tp.Validate(); err != nil {
			t.Error(err)
		}
		if tp.N() < 7000 || tp.N() > 18000 {
			t.Errorf("%s: N=%d outside the N≈10k class", tp.Name, tp.N())
		}
	}
}

func TestByName(t *testing.T) {
	rng := graph.NewRand(2)
	for _, kind := range []string{"SF", "DF", "HX", "XP", "FT3", "JF", "Clique"} {
		tp, err := ByName(kind, Small, rng)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := tp.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := ByName("bogus", Small, rng); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestPrimitiveRoot(t *testing.T) {
	for _, q := range []int{3, 5, 7, 11, 13, 17, 19, 23, 29} {
		xi := primitiveRoot(q)
		seen := map[int]bool{}
		pow := 1
		for i := 0; i < q-1; i++ {
			if seen[pow] {
				t.Fatalf("q=%d: %d is not a primitive root", q, xi)
			}
			seen[pow] = true
			pow = pow * xi % q
		}
	}
}

func TestSlimFlyGeneratorSetsInverseClosed(t *testing.T) {
	for _, q := range []int{5, 7, 11, 13, 19} {
		var delta int
		if q%4 == 1 {
			delta = 1
		} else {
			delta = -1
		}
		X, Xp := mmsGeneratorSets(q, delta, primitiveRoot(q))
		for v := range X {
			if !X[mod(-v, q)] {
				t.Fatalf("q=%d: X not inverse-closed at %d", q, v)
			}
		}
		for v := range Xp {
			if !Xp[mod(-v, q)] {
				t.Fatalf("q=%d: X' not inverse-closed at %d", q, v)
			}
		}
		wantSize := (q - delta) / 2
		if len(X) != wantSize || len(Xp) != wantSize {
			t.Fatalf("q=%d: |X|=%d |X'|=%d, want %d", q, len(X), len(Xp), wantSize)
		}
	}
}

func TestXpanderMultiLift(t *testing.T) {
	rng := graph.NewRand(13)
	xp, err := XpanderMultiLift(6, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 2^3 * 7 = 56 routers, 6-regular.
	if xp.Nr() != 56 {
		t.Fatalf("Nr=%d, want 56", xp.Nr())
	}
	if ok, d := xp.G.IsRegular(); !ok || d != 6 {
		t.Fatalf("must stay 6-regular, got %v", xp.G.DegreeHistogram())
	}
	if !xp.G.Connected() {
		t.Fatal("must be connected")
	}
	if _, err := XpanderMultiLift(1, 1, 0, rng); err == nil {
		t.Fatal("kp=1 must fail")
	}
}
