// Package topo builds the interconnection topologies evaluated by the
// FatPaths paper (Table V): Slim Fly (MMS), balanced Dragonfly, Jellyfish,
// Xpander, HyperX/Hamming graphs, three-stage fat trees, complete graphs,
// and star/crossbar baselines — together with endpoint attachment, the
// "equivalent Jellyfish" construction used for fair comparisons, and the
// linear cost model behind the paper's Figure 10 and Figure 19 analyses.
//
// The network model follows §II-A: an undirected graph over routers; N
// endpoints attached with concentration p per router; network radix k′
// (channels to other routers); total radix k = p + k′; diameter D.
package topo

import (
	"fmt"

	"repro/internal/graph"
)

// LinkClass distinguishes short (copper) from long (fiber) router-router
// cables for the cost model of §VII-A2.
type LinkClass uint8

const (
	// Copper marks short intra-group/intra-pod cables.
	Copper LinkClass = iota
	// Fiber marks long inter-group cables.
	Fiber
)

// Topology is a router-level interconnect with endpoint attachment.
type Topology struct {
	// Name identifies the topology family and parameters, e.g. "SF(q=19)".
	Name string
	// Kind is the family tag ("SF", "DF", "JF", "XP", "HX", "FT3",
	// "Clique", "Star").
	Kind string
	// G is the router graph. Vertices are routers.
	G *graph.Graph
	// Conc[r] is the number of endpoints attached to router r (the paper's
	// concentration p; heterogeneous only for fat trees, where aggregation
	// and core routers host no endpoints).
	Conc []int
	// LinkOf classifies each edge (by edge ID) for the cost model.
	LinkOf []LinkClass
	// Diameter is the designed diameter D (verified in tests), or -1 when
	// only probabilistic bounds exist (Jellyfish).
	Diameter int
	// NominalRadix is the network radix k′ of endpoint-hosting routers.
	NominalRadix int

	offsets []int // prefix sums of Conc; len = Nr+1
}

// finish computes endpoint offsets and normalizes adjacency order. Every
// generator must call it before returning.
func (t *Topology) finish() *Topology {
	t.G.SortAdjacency()
	t.offsets = make([]int, t.G.N()+1)
	for r := 0; r < t.G.N(); r++ {
		t.offsets[r+1] = t.offsets[r] + t.Conc[r]
	}
	if len(t.LinkOf) == 0 {
		t.LinkOf = make([]LinkClass, t.G.M())
	}
	if len(t.LinkOf) != t.G.M() {
		panic(fmt.Sprintf("topo %s: LinkOf length %d != M %d", t.Name, len(t.LinkOf), t.G.M()))
	}
	return t
}

// Nr returns the number of routers.
func (t *Topology) Nr() int { return t.G.N() }

// N returns the total number of endpoints.
func (t *Topology) N() int { return t.offsets[len(t.offsets)-1] }

// RouterOf returns the router hosting endpoint e via binary search over the
// offset table.
func (t *Topology) RouterOf(e int) int {
	lo, hi := 0, t.G.N()
	for lo < hi {
		mid := (lo + hi) / 2
		if t.offsets[mid+1] <= e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Endpoints returns the half-open endpoint ID range [lo, hi) of router r.
func (t *Topology) Endpoints(r int) (lo, hi int) {
	return t.offsets[r], t.offsets[r+1]
}

// MeanConcentration returns the average endpoints per endpoint-hosting
// router.
func (t *Topology) MeanConcentration() float64 {
	hosts, total := 0, 0
	for _, p := range t.Conc {
		if p > 0 {
			hosts++
			total += p
		}
	}
	if hosts == 0 {
		return 0
	}
	return float64(total) / float64(hosts)
}

// EdgeDensity returns (#cables)/(#endpoints) counting both router-router
// and endpoint cables, the quantity plotted in the paper's Figure 19.
func (t *Topology) EdgeDensity() float64 {
	n := t.N()
	if n == 0 {
		return 0
	}
	return float64(t.G.M()+n) / float64(n)
}

// TotalRadix returns the maximum total radix k = p + degree over routers.
func (t *Topology) TotalRadix() int {
	max := 0
	for r := 0; r < t.G.N(); r++ {
		if k := t.Conc[r] + t.G.Degree(r); k > max {
			max = k
		}
	}
	return max
}

// Validate performs structural sanity checks shared by all generators.
func (t *Topology) Validate() error {
	if t.G.N() == 0 {
		return fmt.Errorf("%s: no routers", t.Name)
	}
	if t.G.N() > 1 && !t.G.Connected() {
		return fmt.Errorf("%s: disconnected router graph", t.Name)
	}
	if len(t.Conc) != t.G.N() {
		return fmt.Errorf("%s: concentration table size mismatch", t.Name)
	}
	for r, p := range t.Conc {
		if p < 0 {
			return fmt.Errorf("%s: negative concentration at router %d", t.Name, r)
		}
	}
	if t.N() == 0 {
		return fmt.Errorf("%s: no endpoints", t.Name)
	}
	return nil
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
