package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Xpander (Valadarsky et al., HotNets'15): an ℓ-lift of the complete graph
// K_{k′+1}. The lift replaces every vertex of K_{k′+1} by a "metanode" of ℓ
// copies and every edge (u,v) by a random perfect matching between the
// copies of u and the copies of v, yielding a k′-regular expander with
// N_r = ℓ(k′+1) routers. FatPaths uses ℓ = k′ and p = ⌈k′/2⌉ (Appendix A-D).
func Xpander(kp, lift, p int, rng *rand.Rand) (*Topology, error) {
	if kp < 2 {
		return nil, fmt.Errorf("xpander: k'=%d must be >= 2", kp)
	}
	if lift < 1 {
		return nil, fmt.Errorf("xpander: lift=%d must be >= 1", lift)
	}
	if p <= 0 {
		p = ceilDiv(kp, 2)
	}
	base := kp + 1
	nr := lift * base
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := graph.New(nr)
		id := func(meta, copy int) int { return meta*lift + copy }
		for u := 0; u < base; u++ {
			for v := u + 1; v < base; v++ {
				pi := graph.Permutation(rng, lift)
				for i := 0; i < lift; i++ {
					g.AddEdge(id(u, i), id(v, int(pi[i])))
				}
			}
		}
		if !g.Connected() {
			continue
		}
		if ok, d := g.IsRegular(); !ok || d != kp {
			return nil, fmt.Errorf("xpander: lift produced irregular graph (bug)")
		}
		conc := make([]int, nr)
		for i := range conc {
			conc[i] = p
		}
		linkOf := make([]LinkClass, g.M())
		for i := range linkOf {
			linkOf[i] = Fiber
		}
		t := &Topology{
			Name:         fmt.Sprintf("XP(k'=%d,l=%d,p=%d)", kp, lift, p),
			Kind:         "XP",
			G:            g,
			Conc:         conc,
			LinkOf:       linkOf,
			Diameter:     -1, // <= 3 w.h.p. for the used parameters
			NominalRadix: kp,
		}
		return t.finish(), nil
	}
	return nil, fmt.Errorf("xpander: failed to build connected lift after %d attempts", maxAttempts)
}

// XpanderMultiLift builds an Xpander by repeatedly 2-lifting K_{k'+1}
// `lifts` times (the paper's alternative construction, Appendix A-D: "We
// also consider ℓ = 2 with multiple lifts as this ensures good
// properties"). N_r = 2^lifts · (k'+1).
func XpanderMultiLift(kp, lifts, p int, rng *rand.Rand) (*Topology, error) {
	if kp < 2 || lifts < 1 {
		return nil, fmt.Errorf("xpander: invalid kp=%d lifts=%d", kp, lifts)
	}
	if p <= 0 {
		p = ceilDiv(kp, 2)
	}
	// Start from K_{k'+1} and lift repeatedly.
	cur := graph.New(kp + 1)
	for u := 0; u < kp+1; u++ {
		for v := u + 1; v < kp+1; v++ {
			cur.AddEdge(u, v)
		}
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := cur
		ok := true
		for step := 0; step < lifts; step++ {
			lifted := graph.New(2 * g.N())
			for _, e := range g.Edges() {
				// A random 2-lift: either parallel or crossed replacement.
				u, v := int(e.U), int(e.V)
				if rng.Intn(2) == 0 {
					lifted.AddEdge(2*u, 2*v)
					lifted.AddEdge(2*u+1, 2*v+1)
				} else {
					lifted.AddEdge(2*u, 2*v+1)
					lifted.AddEdge(2*u+1, 2*v)
				}
			}
			g = lifted
		}
		if !g.Connected() {
			ok = false
		}
		if ok {
			conc := make([]int, g.N())
			for i := range conc {
				conc[i] = p
			}
			linkOf := make([]LinkClass, g.M())
			for i := range linkOf {
				linkOf[i] = Fiber
			}
			t := &Topology{
				Name:         fmt.Sprintf("XP2(k'=%d,lifts=%d,p=%d)", kp, lifts, p),
				Kind:         "XP",
				G:            g,
				Conc:         conc,
				LinkOf:       linkOf,
				Diameter:     -1,
				NominalRadix: kp,
			}
			return t.finish(), nil
		}
	}
	return nil, fmt.Errorf("xpander: failed to build connected multi-lift")
}
