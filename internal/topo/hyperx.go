package topo

import (
	"fmt"

	"repro/internal/graph"
)

// HyperX (Ahn et al., SC'09), the "regular" variant used by FatPaths: an
// L-dimensional Hamming graph with S routers per dimension and uniform
// relative link capacity K=1. Routers are L-tuples over [S]; two routers are
// adjacent iff they differ in exactly one coordinate (each 1-D row is a
// clique). k′ = L(S−1), D = L, N_r = S^L. FatPaths attaches p = ⌈k′/L⌉
// endpoints (2×-oversubscribed; Appendix A-E).
//
// Cost classification: edges along dimension 0 are treated as short
// (copper, "same 1D row" in the physical layout), higher dimensions as long
// (fiber). This mirrors the row/plane structure discussed in §IV-C2.
func HyperX(L, S, p int) (*Topology, error) {
	if L < 1 || S < 2 {
		return nil, fmt.Errorf("hyperx: invalid L=%d S=%d", L, S)
	}
	nr := 1
	for i := 0; i < L; i++ {
		nr *= S
		if nr > 1<<22 {
			return nil, fmt.Errorf("hyperx: S^L too large")
		}
	}
	kp := L * (S - 1)
	if p <= 0 {
		p = ceilDiv(kp, L)
	}
	g := graph.New(nr)
	var linkOf []LinkClass
	// stride[d] = S^d; coordinate d of router r is (r / stride[d]) % S.
	stride := make([]int, L)
	stride[0] = 1
	for d := 1; d < L; d++ {
		stride[d] = stride[d-1] * S
	}
	for r := 0; r < nr; r++ {
		for d := 0; d < L; d++ {
			cd := (r / stride[d]) % S
			for c2 := cd + 1; c2 < S; c2++ {
				r2 := r + (c2-cd)*stride[d]
				g.AddEdge(r, r2)
				if d == 0 {
					linkOf = append(linkOf, Copper)
				} else {
					linkOf = append(linkOf, Fiber)
				}
			}
		}
	}
	if ok, d := g.IsRegular(); !ok || d != kp {
		return nil, fmt.Errorf("hyperx: construction bug (irregular)")
	}
	conc := make([]int, nr)
	for i := range conc {
		conc[i] = p
	}
	t := &Topology{
		Name:         fmt.Sprintf("HX(L=%d,S=%d,p=%d)", L, S, p),
		Kind:         "HX",
		G:            g,
		Conc:         conc,
		LinkOf:       linkOf,
		Diameter:     L,
		NominalRadix: kp,
	}
	return t.finish(), nil
}

// HyperXCoord returns coordinate d of router r in an (L,S) HyperX.
func HyperXCoord(S, d, r int) int {
	for i := 0; i < d; i++ {
		r /= S
	}
	return r % S
}
