package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestRandomUniformShape(t *testing.T) {
	rng := graph.NewRand(1)
	p := RandomUniform(rng, 100)
	if len(p.Flows) != 100 {
		t.Fatalf("flows=%d, want 100", len(p.Flows))
	}
	if err := p.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	rng := graph.NewRand(2)
	p := RandomPermutation(rng, 64)
	if err := p.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	seenSrc := map[int32]bool{}
	seenDst := map[int32]bool{}
	for _, f := range p.Flows {
		if seenSrc[f.Src] || seenDst[f.Dst] {
			t.Fatal("permutation must not repeat sources or destinations")
		}
		seenSrc[f.Src] = true
		seenDst[f.Dst] = true
	}
}

func TestKRandomPermutationsOversubscription(t *testing.T) {
	rng := graph.NewRand(3)
	p := KRandomPermutations(rng, 50, 4)
	// Up to 4 flows per source (fixed points dropped).
	if len(p.Flows) < 150 || len(p.Flows) > 200 {
		t.Fatalf("flows=%d, want ~200", len(p.Flows))
	}
	if err := p.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
}

func TestOffDiagonal(t *testing.T) {
	p := OffDiagonal(10, 3)
	if len(p.Flows) != 10 {
		t.Fatalf("flows=%d", len(p.Flows))
	}
	for _, f := range p.Flows {
		if (int(f.Src)+3)%10 != int(f.Dst) {
			t.Fatalf("flow %v is not the +3 off-diagonal", f)
		}
	}
	// Negative offsets wrap correctly.
	pn := OffDiagonal(10, -3)
	for _, f := range pn.Flows {
		if (int(f.Src)+7)%10 != int(f.Dst) {
			t.Fatalf("flow %v is not the -3 off-diagonal", f)
		}
	}
	if err := pn.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsValid(t *testing.T) {
	for _, n := range []int{8, 10, 100, 127, 128, 1000} {
		p := Shuffle(n)
		if err := p.ValidateFlows(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(p.Flows) == 0 {
			t.Fatalf("n=%d: shuffle produced no flows", n)
		}
	}
}

func TestStencilOverlay(t *testing.T) {
	p := Stencil2D(100, []int{1, 42})
	// 4 off-diagonals of 100 flows each.
	if len(p.Flows) != 400 {
		t.Fatalf("flows=%d, want 400", len(p.Flows))
	}
	if err := p.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	// Default offsets adapt to large N.
	big := DefaultStencil(20000)
	if err := big.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialOffDiagonal(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	p := AdversarialOffDiagonal(sf)
	if err := p.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != sf.N() {
		t.Fatalf("flows=%d, want %d", len(p.Flows), sf.N())
	}
}

func TestWorstCaseStressesNetwork(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(4)
	wc := WorstCase(sf, 1.0, rng)
	if err := wc.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	// Mean router distance of worst-case must exceed random uniform's
	// (that's the point of the max-weight matching).
	ru := RandomUniform(rng, sf.N())
	if MeanRouterDistance(sf, wc) < MeanRouterDistance(sf, ru) {
		t.Fatalf("worst-case mean distance %.3f < random uniform %.3f",
			MeanRouterDistance(sf, wc), MeanRouterDistance(sf, ru))
	}
	// On a diameter-2 SF the matching should be essentially all at 2 hops.
	if d := MeanRouterDistance(sf, wc); d < 1.9 {
		t.Fatalf("worst-case mean distance %.3f, want ~2 on SF", d)
	}
}

func TestWorstCaseIntensity(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(5)
	full := WorstCase(sf, 1.0, rng)
	half := WorstCase(sf, 0.5, graph.NewRand(5))
	if len(half.Flows) >= len(full.Flows) {
		t.Fatalf("intensity 0.5 should thin flows: %d vs %d", len(half.Flows), len(full.Flows))
	}
}

func TestRandomizeMappingPreservesStructure(t *testing.T) {
	rng := graph.NewRand(6)
	p := OffDiagonal(100, 1)
	r := RandomizeMapping(p, rng)
	if len(r.Flows) != len(p.Flows) {
		t.Fatal("randomization must preserve flow count")
	}
	if err := r.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	// In-degree/out-degree multiset preserved (still a permutation).
	out := map[int32]int{}
	in := map[int32]int{}
	for _, f := range r.Flows {
		out[f.Src]++
		in[f.Dst]++
	}
	for _, c := range out {
		if c != 1 {
			t.Fatal("randomized off-diagonal must remain a permutation")
		}
	}
	for _, c := range in {
		if c != 1 {
			t.Fatal("randomized off-diagonal must remain a permutation")
		}
	}
}

func TestPFabricMeanAboutOneMB(t *testing.T) {
	mean := PFabricMean()
	if mean < 0.7e6 || mean > 1.3e6 {
		t.Fatalf("pFabric mean = %.0f bytes, want ≈1MB", mean)
	}
}

func TestPFabricSamplerMatchesCDF(t *testing.T) {
	rng := graph.NewRand(7)
	var sum float64
	const n = 200000
	small := 0
	for i := 0; i < n; i++ {
		v := PFabricFlowSize(rng)
		sum += float64(v)
		if v <= 50e3 {
			small++
		}
	}
	mean := sum / n
	want := PFabricMean()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("sampled mean %.0f deviates from exact %.0f", mean, want)
	}
	// CDF at 50KB is 0.475: roughly half of flows are small.
	frac := float64(small) / n
	if frac < 0.45 || frac > 0.50 {
		t.Fatalf("P(size<=50KB) = %.3f, want ≈0.475", frac)
	}
}

func TestExpInterarrival(t *testing.T) {
	rng := graph.NewRand(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += ExpInterarrival(rng, 200)
	}
	mean := sum / n
	if math.Abs(mean-1.0/200)/(1.0/200) > 0.05 {
		t.Fatalf("mean interarrival %.6f, want 0.005", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate must panic")
		}
	}()
	ExpInterarrival(rng, 0)
}

func TestIntensityThinning(t *testing.T) {
	rng := graph.NewRand(9)
	p := OffDiagonal(1000, 7)
	thin := Intensity(p, 0.3, rng)
	if len(thin.Flows) < 200 || len(thin.Flows) > 400 {
		t.Fatalf("thinned to %d flows, want ≈300", len(thin.Flows))
	}
	same := Intensity(p, 1.0, rng)
	if len(same.Flows) != len(p.Flows) {
		t.Fatal("intensity 1.0 must be identity")
	}
}

func TestPatternsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := graph.NewRand(seed)
		n := 10 + rng.Intn(200)
		pats := []Pattern{
			RandomUniform(rng, n),
			RandomPermutation(rng, n),
			OffDiagonal(n, 1+rng.Intn(n-1)),
			Shuffle(n),
			DefaultStencil(n),
		}
		for _, p := range pats {
			if p.ValidateFlows() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
