// Package traffic generates the workload patterns of §II-C of the FatPaths
// paper: random uniform, random permutation, off-diagonals, shuffle, 2D
// stencils, adversarial skewed off-diagonals, and a per-topology worst-case
// pattern that maximizes mean flow path length; plus the pFabric web-search
// flow-size distribution and Poisson flow arrivals used in §VII, and the
// randomized workload mapping of §III-D.
package traffic

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/topo"
)

// Flow is one communicating endpoint pair (the paper uses "flow" and
// "message" interchangeably).
type Flow struct {
	Src, Dst int32
}

// Pattern is a named multiset of endpoint flows. Oversubscribed patterns
// (four parallel permutations, stencils) contain several flows per source.
type Pattern struct {
	Name  string
	N     int // endpoint count the pattern was generated for
	Flows []Flow
}

// RandomUniform draws one destination per source u.a.r. (excluding self).
func RandomUniform(rng *rand.Rand, n int) Pattern {
	flows := make([]Flow, 0, n)
	for s := 0; s < n; s++ {
		d := rng.Intn(n - 1)
		if d >= s {
			d++
		}
		flows = append(flows, Flow{int32(s), int32(d)})
	}
	return Pattern{Name: "random-uniform", N: n, Flows: flows}
}

// RandomPermutation pairs sources with a permutation drawn u.a.r.
// Fixed points (s -> s) are dropped, matching the convention that an
// endpoint does not message itself.
func RandomPermutation(rng *rand.Rand, n int) Pattern {
	p := rng.Perm(n)
	flows := make([]Flow, 0, n)
	for s, d := range p {
		if s != d {
			flows = append(flows, Flow{int32(s), int32(d)})
		}
	}
	return Pattern{Name: "random-permutation", N: n, Flows: flows}
}

// KRandomPermutations overlays k independent random permutations (the
// paper's 4×-oversubscribed "four random permutations" pattern for k=4).
func KRandomPermutations(rng *rand.Rand, n, k int) Pattern {
	var flows []Flow
	for i := 0; i < k; i++ {
		flows = append(flows, RandomPermutation(rng, n).Flows...)
	}
	return Pattern{Name: fmt.Sprintf("%d-random-permutations", k), N: n, Flows: flows}
}

// OffDiagonal maps t(s) = (s + c) mod n for a fixed offset c.
func OffDiagonal(n, c int) Pattern {
	flows := make([]Flow, 0, n)
	for s := 0; s < n; s++ {
		d := ((s+c)%n + n) % n
		if d != s {
			flows = append(flows, Flow{int32(s), int32(d)})
		}
	}
	return Pattern{Name: fmt.Sprintf("off-diagonal(c=%d)", c), N: n, Flows: flows}
}

// Shuffle maps t(s) = rotl_b(s) mod n, the bitwise left rotation over
// b = ⌈log2 n⌉ bits, representing MPI all-to-all style collectives.
func Shuffle(n int) Pattern {
	b := bits.Len(uint(n - 1))
	if b == 0 {
		b = 1
	}
	mask := (1 << b) - 1
	flows := make([]Flow, 0, n)
	for s := 0; s < n; s++ {
		d := ((s << 1) | (s >> (b - 1))) & mask
		d %= n
		if d != s {
			flows = append(flows, Flow{int32(s), int32(d)})
		}
	}
	return Pattern{Name: "shuffle", N: n, Flows: flows}
}

// Stencil2D overlays off-diagonals at ±each offset, modeling the paper's
// 2D stencils (4 off-diagonals at offsets {±1, ±w} where w is the logical
// process-grid row width; the paper uses 42 for N<=10k and 1337 above).
func Stencil2D(n int, offsets []int) Pattern {
	var flows []Flow
	for _, c := range offsets {
		flows = append(flows, OffDiagonal(n, c).Flows...)
		flows = append(flows, OffDiagonal(n, -c).Flows...)
	}
	return Pattern{Name: fmt.Sprintf("stencil%v", offsets), N: n, Flows: flows}
}

// DefaultStencil returns the paper's stencil offsets for a given n.
func DefaultStencil(n int) Pattern {
	w := 42
	if n > 10000 {
		w = 1337
	}
	if w >= n {
		w = n/2 + 1
	}
	return Stencil2D(n, []int{1, w})
}

// AdversarialOffDiagonal is the skewed off-diagonal of §II-C: a large
// offset aligned to the concentration p so that ALL p endpoints of every
// router target the same destination router — the maximal path-collision
// pattern ("we make sure that it has many colliding paths").
func AdversarialOffDiagonal(t *topo.Topology) Pattern {
	n := t.N()
	p := int(t.MeanConcentration())
	if p < 1 {
		p = 1
	}
	c := (n / 2 / p) * p
	if c <= 0 || c >= n {
		c = p
	}
	if c >= n {
		c = 1
	}
	pat := OffDiagonal(n, c)
	pat.Name = fmt.Sprintf("adversarial-off-diagonal(c=%d)", c)
	return pat
}

// WorstCase builds the per-topology stress pattern of §VI-C: a pairing of
// endpoints that (approximately) maximizes the average router-level path
// length, computed by a greedy maximum-weight matching on shortest-path
// distance (a 1/2-approximation of the maximum-weight matching used by
// Jyothi et al.'s TopoBench; exact blossom matching is unnecessary for the
// stress property). intensity ∈ (0,1] selects the fraction of endpoint
// pairs that communicate (the paper's "traffic intensity").
func WorstCase(t *topo.Topology, intensity float64, rng *rand.Rand) Pattern {
	nr := t.Nr()
	// Router-level pairwise distances via BFS from every router.
	dist := make([][]int32, nr)
	for r := 0; r < nr; r++ {
		dist[r] = t.G.BFS(r)
	}
	type pair struct {
		a, b int32
		d    int32
	}
	pairs := make([]pair, 0, nr*(nr-1)/2)
	for a := 0; a < nr; a++ {
		for b := a + 1; b < nr; b++ {
			pairs = append(pairs, pair{int32(a), int32(b), dist[a][b]})
		}
	}
	// Greedy matching: longest distances first; shuffle equal-distance runs
	// for tie-breaking diversity.
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].d > pairs[j].d })
	matched := make([]int32, nr)
	for i := range matched {
		matched[i] = -1
	}
	for _, p := range pairs {
		if matched[p.a] < 0 && matched[p.b] < 0 {
			matched[p.a] = p.b
			matched[p.b] = p.a
		}
	}
	// Endpoints of matched router pairs exchange flows both ways.
	var flows []Flow
	for a := 0; a < nr; a++ {
		b := int(matched[a])
		if b < 0 || b < a {
			continue
		}
		alo, ahi := t.Endpoints(a)
		blo, bhi := t.Endpoints(b)
		na, nb := ahi-alo, bhi-blo
		m := na
		if nb < m {
			m = nb
		}
		for i := 0; i < m; i++ {
			if intensity < 1 && rng.Float64() >= intensity {
				continue
			}
			flows = append(flows, Flow{int32(alo + i), int32(blo + i)})
			flows = append(flows, Flow{int32(blo + i), int32(alo + i)})
		}
	}
	return Pattern{Name: fmt.Sprintf("worst-case(intensity=%.2f)", intensity), N: t.N(), Flows: flows}
}

// RandomizeMapping applies the randomized workload mapping of §III-D: a
// u.a.r. relabeling of endpoints, destroying any locality the pattern had.
func RandomizeMapping(p Pattern, rng *rand.Rand) Pattern {
	perm := rng.Perm(p.N)
	flows := make([]Flow, len(p.Flows))
	for i, f := range p.Flows {
		flows[i] = Flow{int32(perm[f.Src]), int32(perm[f.Dst])}
	}
	return Pattern{Name: p.Name + "+randomized", N: p.N, Flows: flows}
}

// MeanRouterDistance reports the average router-level hop distance of a
// pattern's flows on a topology (used to verify worst-case stress).
func MeanRouterDistance(t *topo.Topology, p Pattern) float64 {
	if len(p.Flows) == 0 {
		return 0
	}
	cache := make(map[int][]int32)
	var sum float64
	for _, f := range p.Flows {
		rs, rt := t.RouterOf(int(f.Src)), t.RouterOf(int(f.Dst))
		d, ok := cache[rs]
		if !ok {
			d = t.G.BFS(rs)
			cache[rs] = d
		}
		if d[rt] >= 0 {
			sum += float64(d[rt])
		}
	}
	return sum / float64(len(p.Flows))
}

// ExpInterarrival draws an exponential inter-arrival time for a Poisson
// process with the given rate (events per second). Returns seconds.
func ExpInterarrival(rng *rand.Rand, rate float64) float64 {
	mustPositive("arrival rate", rate)
	return rng.ExpFloat64() / rate
}

// pFabric web-search flow-size distribution, discretized to 20 sizes as in
// §VII-A4, with a ≈1 MB mean. The support spans ~10 KB to 30 MB with the
// characteristic heavy tail (most flows are small, most bytes are in
// elephants). CDF points follow the published web-search workload shape.
var pfabricSizes = [20]int64{
	10e3, 20e3, 30e3, 50e3, 80e3, 130e3, 200e3, 300e3, 400e3, 550e3,
	700e3, 900e3, 1.2e6, 1.6e6, 2.2e6, 3e6, 4.5e6, 7e6, 12e6, 30e6,
}

var pfabricCDF = [20]float64{
	0.135, 0.265, 0.375, 0.475, 0.565, 0.635, 0.695, 0.745, 0.785, 0.825,
	0.855, 0.880, 0.902, 0.921, 0.937, 0.950, 0.962, 0.972, 0.980, 1.0,
}

// PFabricFlowSize samples a flow size (bytes) from the discretized
// web-search distribution.
func PFabricFlowSize(rng *rand.Rand) int64 {
	u := rng.Float64()
	for i, c := range pfabricCDF {
		if u <= c {
			return pfabricSizes[i]
		}
	}
	return pfabricSizes[len(pfabricSizes)-1]
}

// PFabricMean returns the exact mean of the discretized distribution.
func PFabricMean() float64 {
	var mean, prev float64
	for i := range pfabricSizes {
		p := pfabricCDF[i] - prev
		prev = pfabricCDF[i]
		mean += p * float64(pfabricSizes[i])
	}
	return mean
}

// FixedSize returns a degenerate size sampler for experiments that sweep a
// single flow size (Fig 2, Fig 11, ...).
func FixedSize(bytes int64) func(*rand.Rand) int64 {
	return func(*rand.Rand) int64 { return bytes }
}

// Intensity thins a pattern, keeping each flow with the given probability.
func Intensity(p Pattern, frac float64, rng *rand.Rand) Pattern {
	if frac >= 1 {
		return p
	}
	flows := make([]Flow, 0, int(float64(len(p.Flows))*frac)+1)
	for _, f := range p.Flows {
		if rng.Float64() < frac {
			flows = append(flows, f)
		}
	}
	return Pattern{Name: fmt.Sprintf("%s@%.2f", p.Name, frac), N: p.N, Flows: flows}
}

// ValidateFlows checks all endpoints are in range and no self flows exist.
func (p Pattern) ValidateFlows() error {
	for _, f := range p.Flows {
		if f.Src < 0 || f.Dst < 0 || int(f.Src) >= p.N || int(f.Dst) >= p.N {
			return fmt.Errorf("pattern %s: flow %v out of range [0,%d)", p.Name, f, p.N)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("pattern %s: self flow at %d", p.Name, f.Src)
		}
	}
	return nil
}

// mustPositive is a tiny helper guarding experiment parameters.
func mustPositive(name string, v float64) {
	if v <= 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("traffic: %s must be positive, got %v", name, v))
	}
}
