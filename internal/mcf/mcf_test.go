package mcf

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// TestCommoditiesDeterministic: the commodity list must come out in a
// canonical order (map iteration order leaked into the MAT solvers before;
// the golden-table harness caught approximate-MAT results varying run to
// run).
func TestCommoditiesDeterministic(t *testing.T) {
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	pat := traffic.RandomUniform(graph.NewRand(3), sf.N())
	first := CommoditiesFromPattern(sf, pat)
	for trial := 0; trial < 5; trial++ {
		again := CommoditiesFromPattern(sf, pat)
		if len(again) != len(first) {
			t.Fatalf("commodity count changed: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("commodity order not deterministic at %d: %v vs %v", i, first[i], again[i])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Src < first[i-1].Src ||
			(first[i].Src == first[i-1].Src && first[i].Dst <= first[i-1].Dst) {
			t.Fatalf("commodities not in canonical (Src, Dst) order at %d: %v after %v", i, first[i], first[i-1])
		}
	}
}

func TestGeneralMATRing(t *testing.T) {
	// C4, one commodity 0->2, demand 1: two arc-disjoint 2-hop paths,
	// capacity 1 each -> T = 2.
	g := ring(4)
	got, err := GeneralMAT(g, []Commodity{{Src: 0, Dst: 2, Demand: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("T=%f, want 2", got)
	}
}

func TestGeneralMATContention(t *testing.T) {
	// Path graph 0-1-2: commodities (0->2) and (1->2) both cross arc 1->2
	// with demand 1 each -> T = 0.5.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	got, err := GeneralMAT(g, []Commodity{
		{Src: 0, Dst: 2, Demand: 1},
		{Src: 1, Dst: 2, Demand: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("T=%f, want 0.5", got)
	}
}

func TestPathMATMatchesGeneralWhenAllPathsGiven(t *testing.T) {
	// C6, commodity 0->3: both 3-hop paths given explicitly.
	g := ring(6)
	ps := PathSets{
		G:     g,
		Comms: []Commodity{{Src: 0, Dst: 3, Demand: 1}},
		Paths: [][][]int32{{
			{0, 1, 2, 3},
			{0, 5, 4, 3},
		}},
	}
	pathT, err := PathMAT(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	genT, err := GeneralMAT(g, ps.Comms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pathT-genT) > 1e-6 || math.Abs(pathT-2) > 1e-6 {
		t.Fatalf("pathT=%f genT=%f, want both 2", pathT, genT)
	}
}

func TestPathMATRestrictedIsLower(t *testing.T) {
	// Restricting to a single path halves achievable T on C6.
	g := ring(6)
	ps := PathSets{
		G:     g,
		Comms: []Commodity{{Src: 0, Dst: 3, Demand: 1}},
		Paths: [][][]int32{{{0, 1, 2, 3}}},
	}
	got, err := PathMAT(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("single-path T=%f, want 1", got)
	}
}

func TestPathMATSharedBottleneck(t *testing.T) {
	// Two commodities forced through the same arc share its capacity.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 1)
	ps := PathSets{
		G: g,
		Comms: []Commodity{
			{Src: 0, Dst: 2, Demand: 1},
			{Src: 3, Dst: 2, Demand: 1},
		},
		Paths: [][][]int32{
			{{0, 1, 2}},
			{{3, 1, 2}},
		},
	}
	got, err := PathMAT(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("T=%f, want 0.5", got)
	}
}

func TestPathMATErrorsOnEmptyPathSet(t *testing.T) {
	g := ring(4)
	ps := PathSets{
		G:     g,
		Comms: []Commodity{{Src: 0, Dst: 2, Demand: 1}},
		Paths: [][][]int32{nil},
	}
	if _, err := PathMAT(ps, 1); err == nil {
		t.Fatal("empty path set must error")
	}
}

func TestPathMATApproxMatchesLP(t *testing.T) {
	// Approximation within ~20% of exact on small instances.
	g := ring(6)
	ps := PathSets{
		G:     g,
		Comms: []Commodity{{Src: 0, Dst: 3, Demand: 1}},
		Paths: [][][]int32{{
			{0, 1, 2, 3},
			{0, 5, 4, 3},
		}},
	}
	exact, _ := PathMAT(ps, 1)
	approx, err := PathMATApprox(ps, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if approx > exact+1e-9 {
		t.Fatalf("approx %f exceeds exact %f", approx, exact)
	}
	if approx < 0.75*exact {
		t.Fatalf("approx %f too far below exact %f", approx, exact)
	}
}

func TestPathMATApproxOnLayeredSlimFly(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(1)
	ls, err := layers.Random(sf.G, 4, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := layers.NewForwarding(ls, 1)
	pat := traffic.WorstCase(sf, 0.3, rng)
	comms := CommoditiesFromPattern(sf, pat)
	if len(comms) == 0 {
		t.Fatal("no commodities")
	}
	ps := FromForwarding(sf.G, f, comms)
	got, err := PathMATApprox(ps, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("layered SF throughput %f, want positive", got)
	}
	// More layers should never hurt (weakly more path choice).
	ls1, _ := layers.Random(sf.G, 1, 0.6, graph.NewRand(1))
	f1 := layers.NewForwarding(ls1, 1)
	ps1 := FromForwarding(sf.G, f1, comms)
	got1, err := PathMATApprox(ps1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got < got1*0.9 {
		t.Fatalf("4-layer T=%f much worse than 1-layer T=%f", got, got1)
	}
}

func TestFromKShortest(t *testing.T) {
	hx, _ := topo.HyperX(2, 3, 0)
	comms := []Commodity{{Src: 0, Dst: 8, Demand: 1}}
	ps := FromKShortest(hx.G, comms, 4)
	if len(ps.Paths[0]) == 0 {
		t.Fatal("no k-shortest paths")
	}
	got, err := PathMAT(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	// HX(2,3): 0 and 8 differ in both coordinates -> at least 2 disjoint
	// 2-hop paths among the 4 shortest.
	if got < 2-1e-6 {
		t.Fatalf("T=%f, want >= 2", got)
	}
}

func TestCommoditiesFromPattern(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0) // p=4
	pat := traffic.OffDiagonal(sf.N(), 4)
	comms := CommoditiesFromPattern(sf, pat)
	// All 4 endpoints of each router target the next router: 50
	// commodities of demand 4.
	if len(comms) != 50 {
		t.Fatalf("%d commodities, want 50", len(comms))
	}
	for _, c := range comms {
		if c.Demand != 4 {
			t.Fatalf("demand %f, want 4", c.Demand)
		}
	}
}

func TestPathMATApproxBadEps(t *testing.T) {
	g := ring(4)
	ps := PathSets{G: g, Comms: []Commodity{{0, 2, 1}}, Paths: [][][]int32{{{0, 1, 2}}}}
	if _, err := PathMATApprox(ps, 1, 0); err == nil {
		t.Fatal("eps=0 must error")
	}
	if _, err := PathMATApprox(ps, 1, 1); err == nil {
		t.Fatal("eps=1 must error")
	}
}

// Property: adding candidate paths never decreases the exact path-MAT.
func TestPathMATMonotoneInPathsProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := graph.NewRand(seed)
		n := 6 + rng.Intn(4)
		g := ring(n)
		for i := 0; i < n/2; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		s, d := graph.SampleDistinctPair(rng, n)
		all := g.YenKShortest(s, d, 4, graph.Unit)
		if len(all) < 2 {
			continue
		}
		comms := []Commodity{{Src: s, Dst: d, Demand: 1}}
		t1, err := PathMAT(PathSets{G: g, Comms: comms, Paths: [][][]int32{all[:1]}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := PathMAT(PathSets{G: g, Comms: comms, Paths: [][][]int32{all}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if t2 < t1-1e-9 {
			t.Fatalf("seed %d: MAT decreased when adding paths: %f -> %f", seed, t1, t2)
		}
	}
}

// Property: path-restricted MAT never exceeds the unrestricted MCF optimum.
func TestPathMATBoundedByGeneralProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := graph.NewRand(seed + 100)
		n := 5 + rng.Intn(3)
		g := ring(n)
		s, d := graph.SampleDistinctPair(rng, n)
		comms := []Commodity{{Src: s, Dst: d, Demand: 1}}
		paths := g.YenKShortest(s, d, 2, graph.Unit)
		restricted, err := PathMAT(PathSets{G: g, Comms: comms, Paths: [][][]int32{paths}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		general, err := GeneralMAT(g, comms, 1)
		if err != nil {
			t.Fatal(err)
		}
		if restricted > general+1e-6 {
			t.Fatalf("seed %d: restricted MAT %f exceeds general %f", seed, restricted, general)
		}
	}
}
