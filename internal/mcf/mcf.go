// Package mcf computes the maximum achievable throughput (MAT) of §VI: the
// largest T such that a feasible multi-commodity flow routes T(s,t)·T
// between all communicating router pairs. Three engines are provided:
//
//   - GeneralMAT: the unrestricted MCF LP of Eq. (1)–(4), exact via simplex
//     (tiny instances only; it has k·2M variables).
//   - PathMAT: the layered/path-restricted LP of Eq. (5)–(9). With
//     destination-based per-layer forwarding, each commodity's flow in a
//     layer follows a single fixed path, so "no flow leaks between layers"
//     (Eq. 7) reduces to per-path flow variables — one per (commodity,
//     layer) — which keeps the LP small and exact.
//   - PathMATApprox: a Garg–Könemann/Fleischer multiplicative-weights
//     approximation of the same path-restricted program for instances too
//     large for the dense simplex.
package mcf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/lp"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Commodity is a router-level traffic demand.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// CommoditiesFromPattern aggregates an endpoint-level pattern into
// router-level commodities: the demand between a router pair is the number
// of endpoint flows mapped onto it.
func CommoditiesFromPattern(t *topo.Topology, p traffic.Pattern) []Commodity {
	agg := make(map[[2]int]float64)
	for _, f := range p.Flows {
		rs, rt := t.RouterOf(int(f.Src)), t.RouterOf(int(f.Dst))
		if rs != rt {
			agg[[2]int{rs, rt}]++
		}
	}
	out := make([]Commodity, 0, len(agg))
	for pr, d := range agg {
		out = append(out, Commodity{Src: pr[0], Dst: pr[1], Demand: d})
	}
	// Canonical order: map iteration order would otherwise leak into the
	// MAT solvers (commodity processing order in the approximate scheme,
	// row order in the simplex) and make results vary run to run.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// arcID maps a directed traversal of undirected edge e to an arc index:
// 2e for U->V, 2e+1 for V->U.
func arcID(g *graph.Graph, from, to int) int {
	id := g.EdgeBetween(from, to)
	if id < 0 {
		panic(fmt.Sprintf("mcf: path uses non-edge (%d,%d)", from, to))
	}
	if int(g.Edge(id).U) == from {
		return 2 * id
	}
	return 2*id + 1
}

// pathArcs converts a vertex path to its directed arc list.
func pathArcs(g *graph.Graph, p []int32) []int {
	arcs := make([]int, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		arcs = append(arcs, arcID(g, int(p[i]), int(p[i+1])))
	}
	return arcs
}

// PathSets holds, per commodity, the candidate paths its flow may split
// across (one per layer under FatPaths; k paths under k-shortest-paths).
type PathSets struct {
	G     *graph.Graph
	Comms []Commodity
	Paths [][][]int32 // Paths[i] = candidate vertex paths of commodity i
}

// FromForwarding builds path sets from per-layer forwarding tables:
// commodity i may use the (deduplicated) per-layer forwarding paths.
func FromForwarding(g *graph.Graph, f *layers.Forwarding, comms []Commodity) PathSets {
	ps := PathSets{G: g, Comms: comms, Paths: make([][][]int32, len(comms))}
	for i, c := range comms {
		all := layers.LayerPaths(f, c.Src, c.Dst)
		seen := map[string]bool{}
		var uniq [][]int32
		for _, p := range all {
			key := fmt.Sprint(p)
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, p)
			}
		}
		ps.Paths[i] = uniq
	}
	return ps
}

// FromKShortest builds path sets from Yen's k shortest paths per commodity,
// keeping only paths of minimal length: the paper's k-shortest-paths
// baseline "spreads traffic over multiple shortest paths (if available)"
// (§VI) — on low-diameter topologies most pairs have just one, which is
// exactly the weakness Fig 9 exposes.
func FromKShortest(g *graph.Graph, comms []Commodity, k int) PathSets {
	ps := PathSets{G: g, Comms: comms, Paths: make([][][]int32, len(comms))}
	for i, c := range comms {
		all := g.YenKShortest(c.Src, c.Dst, k, graph.Unit)
		var minimal [][]int32
		for _, p := range all {
			if len(p) == len(all[0]) {
				minimal = append(minimal, p)
			}
		}
		ps.Paths[i] = minimal
	}
	return ps
}

// PathMAT solves the path-restricted max-concurrent-flow LP exactly:
// maximize T subject to Σ_p x_{i,p} = d_i·T (Eq. 5/8 as an equality) and
// per-arc capacity Σ x ≤ capacity (Eq. 6). Arc capacity is 1 (normalized
// link rate); Eq. 7 (no inter-layer leaking) and Eq. 9 (no backflow into
// the source) hold by construction because every variable is a whole
// fixed path within one layer.
func PathMAT(ps PathSets, capacity float64) (float64, error) {
	nPathVars := 0
	for i := range ps.Paths {
		if len(ps.Paths[i]) == 0 {
			return 0, fmt.Errorf("mcf: commodity %d (%d->%d) has no candidate paths",
				i, ps.Comms[i].Src, ps.Comms[i].Dst)
		}
		nPathVars += len(ps.Paths[i])
	}
	p := lp.New(nPathVars + 1)
	tVar := nPathVars
	p.SetObjective(tVar, 1)
	// Per-arc usage lists.
	arcUsers := make(map[int][]int) // arc -> variable indices
	varBase := 0
	for i, paths := range ps.Paths {
		idxs := make([]int, 0, len(paths)+1)
		coeffs := make([]float64, 0, len(paths)+1)
		for pi, path := range paths {
			v := varBase + pi
			idxs = append(idxs, v)
			coeffs = append(coeffs, 1)
			for _, a := range pathArcs(ps.G, path) {
				arcUsers[a] = append(arcUsers[a], v)
			}
		}
		// Σ_p x_{i,p} - d_i·T = 0
		idxs = append(idxs, tVar)
		coeffs = append(coeffs, -ps.Comms[i].Demand)
		p.AddConstraint(idxs, coeffs, lp.EQ, 0)
		varBase += len(paths)
	}
	// Deterministic row order: sorted arcs, not map iteration order, so the
	// simplex sees the identical tableau every run.
	arcs := make([]int, 0, len(arcUsers))
	for a := range arcUsers {
		arcs = append(arcs, a)
	}
	sort.Ints(arcs)
	for _, a := range arcs {
		users := arcUsers[a]
		coeffs := make([]float64, len(users))
		for i := range coeffs {
			coeffs[i] = 1
		}
		p.AddConstraint(users, coeffs, lp.LE, capacity)
	}
	_, obj, err := p.Solve()
	if err != nil {
		return 0, err
	}
	return obj, nil
}

// PathMATApprox approximates the same program with the Garg–Könemann /
// Fleischer multiplicative-weights scheme at accuracy eps (throughput is
// within a (1−eps)³ factor of optimal). It never builds a tableau, so it
// scales to thousands of commodities.
func PathMATApprox(ps PathSets, capacity, eps float64) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("mcf: eps=%f out of (0,1)", eps)
	}
	type pref struct {
		arcs []int
	}
	prepped := make([][]pref, len(ps.Paths))
	numArcs := 2 * ps.G.M()
	for i, paths := range ps.Paths {
		if len(paths) == 0 {
			return 0, fmt.Errorf("mcf: commodity %d has no candidate paths", i)
		}
		prepped[i] = make([]pref, len(paths))
		for pi, path := range paths {
			prepped[i][pi] = pref{arcs: pathArcs(ps.G, path)}
		}
	}
	m := float64(numArcs)
	delta := math.Pow(m/(1-eps), -1/eps)
	length := make([]float64, numArcs)
	for a := range length {
		length[a] = delta / capacity
	}
	sumCL := func() float64 {
		var s float64
		for _, l := range length {
			s += l * capacity
		}
		return s
	}
	D := sumCL()
	phases := 0
	const maxPhases = 200000 // runaway guard only; D >= 1 terminates normally
	for D < 1 && phases < maxPhases {
		for i := range prepped {
			remaining := ps.Comms[i].Demand
			for remaining > 1e-12 && D < 1 {
				// Cheapest candidate path under current lengths.
				best, bestLen := -1, math.Inf(1)
				for pi, pr := range prepped[i] {
					var l float64
					for _, a := range pr.arcs {
						l += length[a]
					}
					if l < bestLen {
						bestLen = l
						best = pi
					}
				}
				f := remaining
				if f > capacity {
					f = capacity
				}
				remaining -= f
				for _, a := range prepped[i][best].arcs {
					old := length[a]
					length[a] = old * (1 + eps*f/capacity)
					D += (length[a] - old) * capacity
				}
			}
			if D >= 1 {
				// Phase incomplete: stop without counting it.
				return float64(phases) / (math.Log(1/delta) / math.Log(1+eps)), nil
			}
		}
		phases++
		D = sumCL()
	}
	return float64(phases) / (math.Log(1/delta) / math.Log(1+eps)), nil
}

// GeneralMAT solves the unrestricted MCF LP of Eq. (1)–(4) exactly. Every
// commodity may use any arc. Only suitable for tiny instances: the LP has
// k·2M + 1 variables.
func GeneralMAT(g *graph.Graph, comms []Commodity, capacity float64) (float64, error) {
	k := len(comms)
	numArcs := 2 * g.M()
	// Variables: f[i*numArcs + a] plus T at the end.
	p := lp.New(k*numArcs + 1)
	tVar := k * numArcs
	p.SetObjective(tVar, 1)
	// Capacity per arc: Σ_i f_{i,a} <= capacity (Eq. 1, directed).
	for a := 0; a < numArcs; a++ {
		idxs := make([]int, k)
		coeffs := make([]float64, k)
		for i := 0; i < k; i++ {
			idxs[i] = i*numArcs + a
			coeffs[i] = 1
		}
		p.AddConstraint(idxs, coeffs, lp.LE, capacity)
	}
	// Flow conservation (Eq. 2) and source balance (Eq. 3).
	for i, c := range comms {
		for u := 0; u < g.N(); u++ {
			if u == c.Dst {
				continue
			}
			var idxs []int
			var coeffs []float64
			for _, h := range g.Neighbors(u) {
				out := arcID(g, u, int(h.To))
				in := arcID(g, int(h.To), u)
				idxs = append(idxs, i*numArcs+out, i*numArcs+in)
				coeffs = append(coeffs, 1, -1)
			}
			if u == c.Src {
				// Net outflow = d_i · T.
				idxs = append(idxs, tVar)
				coeffs = append(coeffs, -c.Demand)
				p.AddConstraint(idxs, coeffs, lp.EQ, 0)
			} else {
				p.AddConstraint(idxs, coeffs, lp.EQ, 0)
			}
		}
	}
	_, obj, err := p.Solve()
	if err != nil {
		return 0, err
	}
	return obj, nil
}
