// Package routing is the single source of path truth for the repository:
// per-(layer, destination) multi-next-hop tables in compact CSR form,
// shared by the deployed forwarding view (internal/layers), the packet
// simulator (internal/netsim), and the analytics/experiments that read
// path statistics.
//
// FatPaths routes minimally *within* each layer and load-balances across
// layers (§V of the paper). Minimal routing almost always leaves ties —
// several neighbors one hop closer to the destination — and the paper
// resolves them with ECMP inside the layer (§V-C). Earlier revisions of
// this repository froze one arbitrary tie per (layer, src, dst) in a dense
// n·Nr² array and re-derived the full ECMP sets separately for the
// simulator; this package keeps the whole candidate set once, in CSR form,
// and every consumer reads the same tables.
//
// Tables materialize lazily per destination (only destinations actually
// routed to occupy memory — the big win at paper-scale router counts,
// where a workload touches a small slice of the Nr destinations) or
// eagerly in parallel via BuildAll. Construction is a pure function of
// (graph, layer mask, destination) and tie-breaking folds the engine seed
// with the (layer, src, dst) coordinates, so tables and next-hop picks are
// byte-identical for any worker count and any build order.
package routing

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Table is the multi-next-hop table of one (layer, destination) pair: for
// every source router, the hop distance to the destination and the set of
// neighbors one hop closer (the within-layer ECMP candidates), packed in
// CSR form. Tables are immutable once published and safe to share.
type Table struct {
	// Dist[src] is the hop count from src to the destination within the
	// layer, or -1 when unreachable (possible in sparse layers).
	Dist []int32
	// Off/Cand is the CSR packing: Cand[Off[src]:Off[src+1]] lists src's
	// candidate next hops in adjacency (neighbor-ID) order. The destination
	// itself and unreachable sources have empty candidate sets.
	Off  []int32
	Cand []int32
}

// Candidates returns src's ECMP candidate set. The slice aliases the
// table; callers must not modify it.
func (t *Table) Candidates(src int) []int32 {
	return t.Cand[t.Off[src]:t.Off[src+1]]
}

// numStripes is the build-lock stripe count: first-touch builds of
// different (layer, destination) slots proceed concurrently unless they
// hash to the same stripe, instead of serializing on one global mutex.
const numStripes = 64

// routeCountCap saturates minimal-route counts (RouteCounts) so dense
// graphs cannot overflow int64.
const routeCountCap = int64(1) << 40

// Engine computes and caches the tables of one layered routing
// configuration. It is safe for concurrent use: reads are lock-free once a
// table is published, and first-touch builds take a per-slot striped lock.
type Engine struct {
	g     *graph.Graph
	masks [][]bool // masks[layer]; nil means the full edge set
	seed  int64
	nr    int

	tables  []atomic.Pointer[Table] // slot = layer*nr + dst
	stripes [numStripes]sync.Mutex

	// m, when non-nil, receives routing-core telemetry (tables built, CSR
	// entries deployed, stripe-lock contention samples). All counters fire
	// off the lock-free read fast path — only first-touch builds and
	// WithoutEdges repairs touch them — so a nil m costs nothing per lookup.
	m *obs.RoutingMetrics
}

// SetMetrics attaches a routing telemetry bundle (nil disables). Call
// before sharing the engine across goroutines.
func (e *Engine) SetMetrics(m *obs.RoutingMetrics) { e.m = m }

// NewEngine returns an engine over g with one routing layer per mask
// (masks[l][edgeID] enables the edge in layer l; a nil mask is the full
// layer). seed drives deterministic tie-breaking in Next. Masks are
// treated as read-only and must not be mutated afterwards.
func NewEngine(g *graph.Graph, masks [][]bool, seed int64) *Engine {
	return &Engine{
		g:      g,
		masks:  masks,
		seed:   seed,
		nr:     g.N(),
		tables: make([]atomic.Pointer[Table], len(masks)*g.N()),
	}
}

// NumLayers returns the number of routing layers.
func (e *Engine) NumLayers() int { return len(e.masks) }

// Nr returns the number of routers.
func (e *Engine) Nr() int { return e.nr }

// Seed returns the tie-breaking seed.
func (e *Engine) Seed() int64 { return e.seed }

// Table returns the (layer, dst) table, building it on first use. The
// build is guarded by a striped lock so concurrent first touches of
// different destinations do not serialize.
func (e *Engine) Table(layer, dst int) *Table {
	slot := layer*e.nr + dst
	if t := e.tables[slot].Load(); t != nil {
		return t
	}
	mu := &e.stripes[slot%numStripes]
	if e.m != nil {
		// Contention sampling: TryLock first so a blocked acquisition is
		// observable. Only attempted when telemetry is on — the disabled
		// path is the plain Lock below.
		e.m.StripeAcquisitions.Inc()
		if !mu.TryLock() {
			e.m.StripeContention.Inc()
			mu.Lock()
		}
	} else {
		mu.Lock()
	}
	defer mu.Unlock()
	if t := e.tables[slot].Load(); t != nil {
		return t
	}
	t := buildTable(e.g, e.masks[layer], dst)
	e.tables[slot].Store(t)
	if e.m != nil {
		e.m.TablesBuilt.Inc()
		e.m.CSREntries.Add(int64(len(t.Cand)))
	}
	return t
}

// buildTable computes one (layer mask, destination) table via a reverse
// BFS. Pure function of its inputs; adjacency lists are pre-sorted by the
// generators, so candidate order is deterministic.
func buildTable(g *graph.Graph, mask []bool, dst int) *Table {
	var dist []int32
	if mask == nil {
		dist = g.BFS(dst)
	} else {
		dist = g.BFSEnabled(dst, mask)
	}
	nr := g.N()
	total := 0
	for src := 0; src < nr; src++ {
		if src == dst || dist[src] <= 0 {
			continue
		}
		for _, h := range g.Neighbors(src) {
			if mask != nil && !mask[h.Edge] {
				continue
			}
			if dist[h.To] == dist[src]-1 {
				total++
			}
		}
	}
	off := make([]int32, nr+1)
	cand := make([]int32, 0, total)
	for src := 0; src < nr; src++ {
		off[src] = int32(len(cand))
		if src == dst || dist[src] <= 0 {
			continue
		}
		for _, h := range g.Neighbors(src) {
			if mask != nil && !mask[h.Edge] {
				continue
			}
			if dist[h.To] == dist[src]-1 {
				cand = append(cand, h.To)
			}
		}
	}
	off[nr] = int32(len(cand))
	return &Table{Dist: dist, Off: off, Cand: cand}
}

// Candidates returns the ECMP candidate next hops from src toward dst
// within the layer (empty when src == dst or dst is unreachable).
func (e *Engine) Candidates(layer, src, dst int) []int32 {
	return e.Table(layer, dst).Candidates(src)
}

// Dist returns the hop distance from src to dst within the layer, or -1
// when unreachable.
func (e *Engine) Dist(layer, src, dst int) int32 {
	return e.Table(layer, dst).Dist[src]
}

// Reachable reports whether dst is reachable from src within the layer.
func (e *Engine) Reachable(layer, src, dst int) bool {
	return src == dst || e.Dist(layer, src, dst) >= 0
}

// Next returns one deterministic next hop from src toward dst within the
// layer, or -1 when unreachable. Ties are broken by folding the engine
// seed with the (layer, src, dst) coordinates — a pure function, so the
// pick never depends on build order or worker count (the dense builder
// it replaces consumed a shared rng sequentially).
func (e *Engine) Next(layer, src, dst int) int32 {
	c := e.Candidates(layer, src, dst)
	switch len(c) {
	case 0:
		return -1
	case 1:
		return c[0]
	}
	key := (uint64(layer)*uint64(e.nr)+uint64(src))*uint64(e.nr) + uint64(dst)
	return c[uint64(exec.FoldSeed(e.seed, key))%uint64(len(c))]
}

// BuildAll materializes every (layer, destination) table eagerly on up to
// `workers` goroutines (0 or negative selects all cores). Because each
// table is a pure function of its slot, the resulting engine state is
// identical for every worker count.
func (e *Engine) BuildAll(workers int) {
	n := e.NumLayers() * e.nr
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// fn never fails; the error return exists to satisfy ParallelMap.
	_, _ = exec.ParallelMap(workers, n, func(i int) (struct{}, error) {
		e.Table(i/e.nr, i%e.nr)
		return struct{}{}, nil
	})
}

// RouteCounts returns, for every source router, the number of distinct
// minimal routes to dst within the layer (0 when unreachable, 1 for the
// destination itself), computed by dynamic programming over the table's
// candidate DAG. Counts saturate at 2^40.
func (e *Engine) RouteCounts(layer, dst int) []int64 {
	t := e.Table(layer, dst)
	counts := make([]int64, e.nr)
	counts[dst] = 1
	maxd := int32(0)
	for _, d := range t.Dist {
		if d > maxd {
			maxd = d
		}
	}
	// Process sources by increasing distance: every candidate of a source
	// at distance d sits at distance d-1 and is already final.
	buckets := make([][]int32, maxd+1)
	for src, d := range t.Dist {
		if d > 0 {
			buckets[d] = append(buckets[d], int32(src))
		}
	}
	for d := int32(1); d <= maxd; d++ {
		for _, src := range buckets[d] {
			var sum int64
			for _, c := range t.Candidates(int(src)) {
				sum += counts[c]
				if sum > routeCountCap {
					sum = routeCountCap
					break
				}
			}
			counts[src] = sum
		}
	}
	return counts
}

// Stats summarizes the engine's materialized state.
type Stats struct {
	// TablesBuilt / TablesTotal count materialized vs possible
	// (layer, destination) tables.
	TablesBuilt, TablesTotal int
	// CandEntries is the total number of CSR candidate entries across
	// built tables — the deployed multi-next-hop state.
	CandEntries int64
}

// Stat reports how much routing state has been materialized so far.
func (e *Engine) Stat() Stats {
	st := Stats{TablesTotal: len(e.tables)}
	for i := range e.tables {
		t := e.tables[i].Load()
		if t == nil {
			continue
		}
		st.TablesBuilt++
		st.CandEntries += int64(len(t.Cand))
	}
	return st
}

// WithoutEdges returns a derived engine with the given base edges removed
// from every layer — the §V-G "major topology update" repair path. Instead
// of rebuilding every table, invalidation is incremental and per
// destination: a built table survives unless one of the removed edges was
// both present in its layer and *tight* toward its destination (i.e. on
// some minimal path, which is exactly when the edge appears in a candidate
// set). Non-tight edges cannot change any distance or candidate set, so
// those tables are shared with the parent engine; affected or unbuilt
// tables rebuild lazily against the repaired masks.
func (e *Engine) WithoutEdges(failed []int) *Engine {
	dead := make([]bool, e.g.M())
	for _, id := range failed {
		if id >= 0 && id < len(dead) {
			dead[id] = true
		}
	}
	out := &Engine{
		g:      e.g,
		masks:  make([][]bool, len(e.masks)),
		seed:   e.seed,
		nr:     e.nr,
		tables: make([]atomic.Pointer[Table], len(e.tables)),
		m:      e.m,
	}
	var shared, invalidated int64
	for l := range e.masks {
		old := e.masks[l]
		mask := make([]bool, e.g.M())
		var removed []graph.Edge
		for id := range mask {
			on := old == nil || old[id]
			if on && dead[id] {
				removed = append(removed, e.g.Edge(id))
				continue
			}
			mask[id] = on
		}
		if len(removed) == 0 {
			// None of the failed edges were live in this layer: the layer is
			// untouched, so the parent's mask (immutable by contract) and
			// every built table are shared wholesale. This keeps the
			// per-derivation cost of an unaffected layer at O(M) mask scan
			// instead of O(M) copy + O(Nr) table checks — the hot shape for
			// a daemon deriving a what-if view per request.
			out.masks[l] = old
			for d := 0; d < e.nr; d++ {
				if t := e.tables[l*e.nr+d].Load(); t != nil {
					shared++
					out.tables[l*e.nr+d].Store(t)
				}
			}
			continue
		}
		out.masks[l] = mask
		for d := 0; d < e.nr; d++ {
			t := e.tables[l*e.nr+d].Load()
			if t == nil {
				continue
			}
			if tableUsesAny(t, removed) {
				invalidated++
				continue
			}
			shared++
			out.tables[l*e.nr+d].Store(t)
		}
	}
	if e.m != nil {
		e.m.TablesInvalidated.Add(invalidated)
		e.m.TablesShared.Add(shared)
	}
	return out
}

// tableUsesAny reports whether any of the removed edges is tight in the
// table (a member of a candidate set in either direction).
func tableUsesAny(t *Table, removed []graph.Edge) bool {
	for _, e := range removed {
		if candContains(t.Candidates(int(e.U)), e.V) || candContains(t.Candidates(int(e.V)), e.U) {
			return true
		}
	}
	return false
}

func candContains(cands []int32, v int32) bool {
	for _, c := range cands {
		if c == v {
			return true
		}
	}
	return false
}
