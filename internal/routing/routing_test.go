package routing

import (
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topo"
)

// testMasks builds layer masks over g: layer 0 full (nil), the rest random
// edge subsets at the given density.
func testMasks(g *graph.Graph, n int, rho float64, rng *rand.Rand) [][]bool {
	masks := make([][]bool, n)
	for l := 1; l < n; l++ {
		m := make([]bool, g.M())
		for id := range m {
			m[id] = rng.Float64() < rho
		}
		masks[l] = m
	}
	return masks
}

func testEngine(t *testing.T, seed int64) (*Engine, *graph.Graph) {
	t.Helper()
	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	masks := testMasks(sf.G, 4, 0.7, graph.NewRand(99))
	return NewEngine(sf.G, masks, seed), sf.G
}

// requireEqualEngines asserts two engines produce byte-identical tables
// for every (layer, destination).
func requireEqualEngines(t *testing.T, a, b *Engine) {
	t.Helper()
	if a.NumLayers() != b.NumLayers() || a.Nr() != b.Nr() {
		t.Fatalf("shape mismatch: %d/%d layers, %d/%d routers", a.NumLayers(), b.NumLayers(), a.Nr(), b.Nr())
	}
	for l := 0; l < a.NumLayers(); l++ {
		for d := 0; d < a.Nr(); d++ {
			ta, tb := a.Table(l, d), b.Table(l, d)
			if !reflect.DeepEqual(ta, tb) {
				t.Fatalf("table (%d,%d) differs", l, d)
			}
		}
	}
}

func TestLazyVsEagerIdentical(t *testing.T) {
	lazy, _ := testEngine(t, 3)
	eager, _ := testEngine(t, 3)
	eager.BuildAll(8)
	// Touch the lazy engine in a scrambled destination order first, so any
	// build-order dependence would surface.
	rng := graph.NewRand(1)
	for _, d := range rng.Perm(lazy.Nr()) {
		for l := lazy.NumLayers() - 1; l >= 0; l-- {
			lazy.Table(l, d)
		}
	}
	requireEqualEngines(t, lazy, eager)
}

func TestBuildAllWorkerCountsIdentical(t *testing.T) {
	serial, _ := testEngine(t, 5)
	serial.BuildAll(1)
	par, _ := testEngine(t, 5)
	par.BuildAll(7)
	requireEqualEngines(t, serial, par)
}

// TestConcurrentFirstTouch hammers lazy first-touch builds from many
// goroutines (the striped-lock path) and checks the result matches a
// serial build. Run under -race in CI.
func TestConcurrentFirstTouch(t *testing.T) {
	ref, _ := testEngine(t, 7)
	ref.BuildAll(1)
	shared, _ := testEngine(t, 7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := graph.NewRand(int64(w))
			for i := 0; i < 200; i++ {
				l := rng.Intn(shared.NumLayers())
				d := rng.Intn(shared.Nr())
				shared.Table(l, d)
				shared.Next(l, rng.Intn(shared.Nr()), d)
			}
		}(w)
	}
	wg.Wait()
	for l := 0; l < ref.NumLayers(); l++ {
		for d := 0; d < ref.Nr(); d++ {
			if !reflect.DeepEqual(ref.Table(l, d), shared.Table(l, d)) {
				t.Fatalf("concurrent build of (%d,%d) differs from serial", l, d)
			}
		}
	}
}

func TestNextIsDeterministicCandidate(t *testing.T) {
	e, _ := testEngine(t, 11)
	e2, _ := testEngine(t, 11)
	e2.BuildAll(4)
	for l := 0; l < e.NumLayers(); l++ {
		for s := 0; s < e.Nr(); s += 3 {
			for d := 0; d < e.Nr(); d += 5 {
				nh := e.Next(l, s, d)
				if nh != e2.Next(l, s, d) {
					t.Fatalf("Next(%d,%d,%d) differs across builds", l, s, d)
				}
				cands := e.Candidates(l, s, d)
				if len(cands) == 0 {
					if nh != -1 {
						t.Fatalf("Next(%d,%d,%d)=%d with no candidates", l, s, d, nh)
					}
					continue
				}
				if !candContains(cands, nh) {
					t.Fatalf("Next(%d,%d,%d)=%d not a candidate", l, s, d, nh)
				}
			}
		}
	}
	// A different seed must flip at least one tie. A Slim Fly's full layer
	// has essentially no minimal-path ties (the paper's point), so check on
	// a HyperX, where most pairs have several dimension-order candidates.
	hx, err := topo.HyperX(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ea := NewEngine(hx.G, make([][]bool, 1), 1)
	eb := NewEngine(hx.G, make([][]bool, 1), 2)
	changed := false
	for s := 0; s < ea.Nr() && !changed; s++ {
		for d := 0; d < ea.Nr(); d++ {
			if ea.Next(0, s, d) != eb.Next(0, s, d) {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("tie-breaking ignores the seed")
	}
}

func TestDistMatchesBFS(t *testing.T) {
	e, g := testEngine(t, 13)
	for d := 0; d < g.N(); d += 7 {
		dist := g.BFS(d)
		for s := 0; s < g.N(); s++ {
			if e.Dist(0, s, d) != dist[s] {
				t.Fatalf("Dist(0,%d,%d)=%d, BFS says %d", s, d, e.Dist(0, s, d), dist[s])
			}
		}
	}
}

func TestRouteCountsMatchShortestPathDAG(t *testing.T) {
	e, g := testEngine(t, 17)
	for d := 0; d < g.N(); d += 11 {
		counts := e.RouteCounts(0, d)
		_, want := g.ShortestPathDAGCounts(d, 0)
		for s := 0; s < g.N(); s++ {
			if counts[s] != want[s] {
				t.Fatalf("RouteCounts(0,%d)[%d]=%d, DAG count %d", d, s, counts[s], want[s])
			}
		}
	}
}

func TestWithoutEdgesIncremental(t *testing.T) {
	parent, g := testEngine(t, 19)
	parent.BuildAll(4)
	failed := []int{0, 1, 2}

	derived := parent.WithoutEdges(failed)
	// Ground truth: a fresh engine over the already-masked edge sets.
	masks := testMasks(g, 4, 0.7, graph.NewRand(99))
	fresh := make([][]bool, len(masks))
	for l, m := range masks {
		fm := make([]bool, g.M())
		for id := range fm {
			fm[id] = m == nil || m[id]
		}
		for _, id := range failed {
			fm[id] = false
		}
		fresh[l] = fm
	}
	want := NewEngine(g, fresh, 19)
	requireEqualEngines(t, derived, want)

	// Sharing: unaffected tables are the parent's very pointers; tables
	// whose minimal-path DAG used a failed edge were dropped and rebuilt.
	shared, rebuilt := 0, 0
	for l := 0; l < parent.NumLayers(); l++ {
		for d := 0; d < parent.Nr(); d++ {
			if derived.Table(l, d) == parent.Table(l, d) {
				shared++
			} else {
				rebuilt++
			}
		}
	}
	if shared == 0 {
		t.Fatal("incremental repair shared no tables")
	}
	if rebuilt == 0 {
		t.Fatal("removing minimal-layer edges must invalidate some tables")
	}
	// The failed edges are tight toward their own endpoints in the full
	// layer, so those destinations must have been rebuilt.
	e0 := g.Edge(0)
	if derived.Table(0, int(e0.U)) == parent.Table(0, int(e0.U)) {
		t.Fatal("table toward a failed edge's endpoint must be invalidated")
	}
	// And no repaired table offers a failed edge as a candidate.
	for l := 0; l < derived.NumLayers(); l++ {
		for d := 0; d < derived.Nr(); d++ {
			tab := derived.Table(l, d)
			for _, id := range failed {
				e := g.Edge(id)
				if candContains(tab.Candidates(int(e.U)), e.V) || candContains(tab.Candidates(int(e.V)), e.U) {
					t.Fatalf("repaired table (%d,%d) still uses failed edge %d", l, d, id)
				}
			}
		}
	}
}

func TestStatCountsMaterialization(t *testing.T) {
	e, _ := testEngine(t, 23)
	if st := e.Stat(); st.TablesBuilt != 0 || st.TablesTotal != e.NumLayers()*e.Nr() {
		t.Fatalf("fresh engine stat %+v", st)
	}
	e.Table(0, 5)
	e.Table(2, 7)
	st := e.Stat()
	if st.TablesBuilt != 2 {
		t.Fatalf("built %d tables, want 2", st.TablesBuilt)
	}
	if st.CandEntries <= 0 {
		t.Fatal("built tables must contribute candidate entries")
	}
	e.BuildAll(0)
	if st := e.Stat(); st.TablesBuilt != st.TablesTotal {
		t.Fatalf("BuildAll left %d of %d tables unbuilt", st.TablesTotal-st.TablesBuilt, st.TablesTotal)
	}
}

// TestFullEquivalenceRouting is the exhaustive companion of the sampled
// determinism tests above, wired into the same FATPATHS_FULL_EQUIV harness
// as the experiment-level equivalence suite: several topologies, every
// build strategy (lazy scrambled, eager at 1/2/4/8 workers), byte-compared.
func TestFullEquivalenceRouting(t *testing.T) {
	if os.Getenv("FATPATHS_FULL_EQUIV") == "" {
		t.Skip("set FATPATHS_FULL_EQUIV=1 for the exhaustive routing determinism sweep")
	}
	rng := graph.NewRand(4)
	tops := map[string]*graph.Graph{}
	if sf, err := topo.SlimFly(7, 0); err == nil {
		tops["SF7"] = sf.G
	}
	if df, err := topo.Dragonfly(3); err == nil {
		tops["DF3"] = df.G
	}
	if hx, err := topo.HyperX(3, 4, 0); err == nil {
		tops["HX34"] = hx.G
	}
	for name, g := range tops {
		masks := testMasks(g, 5, 0.6, graph.NewRand(8))
		ref := NewEngine(g, masks, 77)
		ref.BuildAll(1)
		for _, workers := range []int{2, 4, 8} {
			e := NewEngine(g, masks, 77)
			e.BuildAll(workers)
			t.Run(name, func(t *testing.T) { requireEqualEngines(t, ref, e) })
		}
		lazy := NewEngine(g, masks, 77)
		for _, d := range rng.Perm(g.N()) {
			for l := 0; l < lazy.NumLayers(); l++ {
				lazy.Table(l, d)
			}
		}
		t.Run(name+"/lazy", func(t *testing.T) { requireEqualEngines(t, ref, lazy) })
	}
}

func TestRoutingMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, _ := testEngine(t, 29)
	e.SetMetrics(obs.NewRoutingMetrics(reg))

	e.Table(0, 3)
	e.Table(0, 3) // second lookup hits the cache, builds nothing
	e.Table(1, 4)
	snap := reg.Snapshot()
	if got := snap[obs.MetricRoutingTablesBuilt]; got != 2 {
		t.Fatalf("tables_built = %d, want 2", got)
	}
	if snap[obs.MetricRoutingCSREntries] <= 0 {
		t.Fatal("csr_entries_deployed must grow with built tables")
	}
	if snap[obs.MetricRoutingStripeLocks] < 2 {
		t.Fatalf("stripe_lock_acquisitions = %d, want >= 2 (one per first-touch build)",
			snap[obs.MetricRoutingStripeLocks])
	}

	// WithoutEdges repairs report, against the parent's BUILT tables, how
	// many were shared untouched vs dropped for rebuild — and the derived
	// engine keeps accumulating into the same registry.
	e.BuildAll(2)
	built := reg.Snapshot()[obs.MetricRoutingTablesBuilt]
	derived := e.WithoutEdges([]int{0, 1})
	snap = reg.Snapshot()
	inval, shared := snap[obs.MetricRoutingInvalidated], snap[obs.MetricRoutingShared]
	if inval == 0 {
		t.Fatal("removing live edges must invalidate some tables")
	}
	if shared == 0 {
		t.Fatal("incremental repair must share unaffected tables")
	}
	if total := int64(e.NumLayers() * e.Nr()); inval+shared != total {
		t.Fatalf("invalidated(%d) + shared(%d) != built tables (%d)", inval, shared, total)
	}
	derived.Table(0, 0)
	if got := reg.Snapshot()[obs.MetricRoutingTablesBuilt]; got <= built {
		t.Fatal("derived engine must inherit the parent's metrics bundle")
	}
}
