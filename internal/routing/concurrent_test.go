package routing

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentWithoutEdgesDerivation exercises the fabric daemon's
// per-request shape under the race detector: many goroutines derive
// what-if views via WithoutEdges while others query Next/Dist on and
// Stat() the parent. Two pins:
//
//   - Derived shared-table counts are deterministic: with the parent
//     fully built, a view's Stat().TablesBuilt immediately after
//     derivation equals the serially derived reference's (and therefore
//     so does the invalidated count, parentBuilt − shared).
//   - Every query answer — on the parent and on every derived view,
//     including lazily rebuilt invalidated tables — is byte-identical to
//     a serially derived reference engine.
func TestConcurrentWithoutEdgesDerivation(t *testing.T) {
	eng, g := testEngine(t, 7)
	eng.BuildAll(8)
	parentBuilt := eng.Stat().TablesBuilt
	if parentBuilt != eng.NumLayers()*eng.Nr() {
		t.Fatalf("parent not fully built: %d/%d", parentBuilt, eng.NumLayers()*eng.Nr())
	}

	edgeSets := [][]int{
		{0}, {1, 2}, {3, 4, 5}, {0, 7, 11}, {2, 9, g.M() - 1}, {12},
	}

	// Serial references: per edge set, the shared-table count at
	// derivation and every (layer, src, dst) answer after full rebuild.
	type answer struct{ next, dist []int32 }
	refShared := make([]int, len(edgeSets))
	refAnswers := make([]answer, len(edgeSets))
	nl, nr := eng.NumLayers(), eng.Nr()
	flatten := func(e *Engine) answer {
		a := answer{
			next: make([]int32, nl*nr*nr),
			dist: make([]int32, nl*nr*nr),
		}
		for l := 0; l < nl; l++ {
			for s := 0; s < nr; s++ {
				for d := 0; d < nr; d++ {
					i := (l*nr+s)*nr + d
					a.next[i] = e.Next(l, s, d)
					a.dist[i] = e.Dist(l, s, d)
				}
			}
		}
		return a
	}
	parentRef := flatten(eng)
	for i, fe := range edgeSets {
		dv := eng.WithoutEdges(fe)
		refShared[i] = dv.Stat().TablesBuilt
		if refShared[i] >= parentBuilt {
			t.Fatalf("edge set %v invalidated nothing; pick edges on minimal paths", fe)
		}
		refAnswers[i] = flatten(dv)
	}

	const derivers, readers, rounds = 8, 4, 6
	var wg sync.WaitGroup
	errc := make(chan error, derivers+readers)
	for w := 0; w < derivers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				set := (w + r) % len(edgeSets)
				dv := eng.WithoutEdges(edgeSets[set])
				if got := dv.Stat().TablesBuilt; got != refShared[set] {
					errc <- errf("derived view of set %d shares %d tables, want %d", set, got, refShared[set])
					return
				}
				// Query every (layer, src, dst) — invalidated tables rebuild
				// lazily here, concurrently with other derivers and readers.
				want := refAnswers[set]
				for l := 0; l < nl; l++ {
					for s := w; s < nr; s += derivers {
						for d := 0; d < nr; d++ {
							i := (l*nr+s)*nr + d
							if got := dv.Next(l, s, d); got != want.next[i] {
								errc <- errf("derived set %d Next(%d,%d,%d)=%d, want %d", set, l, s, d, got, want.next[i])
								return
							}
							if got := dv.Dist(l, s, d); got != want.dist[i] {
								errc <- errf("derived set %d Dist(%d,%d,%d)=%d, want %d", set, l, s, d, got, want.dist[i])
								return
							}
						}
					}
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				if st := eng.Stat(); st.TablesBuilt != parentBuilt {
					errc <- errf("parent Stat changed under derivation: %d, want %d", st.TablesBuilt, parentBuilt)
					return
				}
				for l := 0; l < nl; l++ {
					for s := w; s < nr; s += readers {
						for d := 0; d < nr; d++ {
							i := (l*nr+s)*nr + d
							if got := eng.Next(l, s, d); got != parentRef.next[i] {
								errc <- errf("parent Next(%d,%d,%d)=%d changed under derivation, want %d", l, s, d, got, parentRef.next[i])
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// errf builds an error for the concurrent workers (Fatal must not be
// called off the test goroutine; collect and report instead).
func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
