package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Progress is the shared per-cell progress sink of the CLIs: a single
// carriage-return line "label: done/total cells" on one writer, serialized
// across worker goroutines. It replaces the \r-formatting every command
// used to hand-roll. A nil *Progress is silent (the -quiet path).
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	lastLen int
}

// NewProgress returns a progress sink labeled label, or nil (silent) when
// w is nil.
func NewProgress(w io.Writer, label string) *Progress {
	if w == nil {
		return nil
	}
	return &Progress{w: w, label: label}
}

// SetLabel switches the line label (between experiments of one run).
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// Update redraws the progress line.
func (p *Progress) Update(done, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	line := fmt.Sprintf("%s: %d/%d cells", p.label, done, total)
	pad := p.lastLen - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
	p.lastLen = len(line)
	p.mu.Unlock()
}

// Clear wipes the progress line before real output is printed.
func (p *Progress) Clear() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.lastLen > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastLen))
		p.lastLen = 0
	}
	p.mu.Unlock()
}

// Hook returns Update as the func(done, total) callback the run options
// accept, or nil for a nil Progress.
func (p *Progress) Hook() func(done, total int) {
	if p == nil {
		return nil
	}
	return p.Update
}
