package obs

// This file defines the typed metric bundles the instrumented subsystems
// hold: one struct per layer, built from a shared Registry so every
// simulation, fabric, and worker of a run accumulates into the same named
// metrics. A nil bundle (from a nil registry) is the disabled path — the
// holder guards each flush with one nil check.

// Simulator metric names (see README "Observability" for the catalog).
const (
	MetricSimEvents          = "netsim.events_processed"
	MetricSimQueueHighWater  = "netsim.event_queue_highwater"
	MetricSimInflightHW      = "netsim.packets_inflight_highwater"
	MetricSimFCTms           = "netsim.flow_fct_ms"
	MetricSimPathHops        = "netsim.flow_path_hops"
	MetricSimFlowletReroutes = "netsim.flowlet_reroutes"
	MetricSimTrims           = "netsim.ndp_trims"
	MetricSimRetransmits     = "netsim.retransmits"
	MetricSimTCPTimeouts     = "netsim.tcp_timeouts"
	MetricSimDrops           = "netsim.drops"
	MetricSimFlowsCompleted  = "netsim.flows_completed"
	// Sharded-engine metrics: per-shard executed-event counts, windows in
	// which a shard reached the barrier without executing anything, and the
	// events-per-shard-window occupancy distribution.
	MetricSimShardEvents     = "netsim.shard_events"
	MetricSimBarrierStalls   = "netsim.barrier_stalls"
	MetricSimWindowOccupancy = "netsim.window_occupancy"
)

// Durable-sweep-runtime metric names (internal/scenario cache + journal).
const (
	MetricScenarioCacheHits     = "scenario.cache_hits"
	MetricScenarioCacheMisses   = "scenario.cache_misses"
	MetricScenarioCellsResumed  = "scenario.cells_resumed"
	MetricScenarioCacheBytesIn  = "scenario.cache_bytes_read"
	MetricScenarioCacheBytesOut = "scenario.cache_bytes_written"
)

// Fabric-daemon metric names (cmd/fatpathsd / internal/serve).
const (
	MetricServeRequests        = "fatpathsd.requests"
	MetricServeErrors          = "fatpathsd.request_errors"
	MetricServeLatencyMs       = "fatpathsd.request_latency_ms"
	MetricServeFabricHits      = "fatpathsd.fabric_cache_hits"
	MetricServeFabricMisses    = "fatpathsd.fabric_cache_misses"
	MetricServeFabricEvicts    = "fatpathsd.fabric_cache_evictions"
	MetricServeFabricsResident = "fatpathsd.fabrics_resident"
	MetricServeWhatifViews     = "fatpathsd.whatif_views_derived"
	MetricServeScenarioRuns    = "fatpathsd.scenario_runs"
)

// Routing-core metric names.
const (
	MetricRoutingTablesBuilt   = "routing.tables_built"
	MetricRoutingCSREntries    = "routing.csr_entries_deployed"
	MetricRoutingInvalidated   = "routing.tables_invalidated"
	MetricRoutingShared        = "routing.tables_shared"
	MetricRoutingStripeLocks   = "routing.stripe_lock_acquisitions"
	MetricRoutingStripeContend = "routing.stripe_lock_contention"
)

// FCTBucketsMs are the flow-completion-time histogram bounds in
// milliseconds: log-spaced from 10µs to 10s, covering quick-mode RTTs
// through paper-scale horizons.
var FCTBucketsMs = []float64{
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50,
	100, 200, 500, 1000, 2000, 5000, 10000,
}

// PathHopBuckets are the per-packet router-hop histogram bounds; FatPaths
// paths on low-diameter topologies are short, with a tail for sparse-layer
// detours.
var PathHopBuckets = []float64{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32}

// ShardEventBuckets are the per-shard executed-events histogram bounds —
// one observation per shard per simulation, log-spaced from trivial test
// runs to paper-scale replicates.
var ShardEventBuckets = []float64{
	1e2, 1e3, 1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8, 1e9,
}

// WindowOccupancyBuckets are the events-per-shard-window histogram bounds
// for parallel runs. Shards bucket locally during the run and flush once,
// so these bounds are shared with internal/netsim's local tally.
var WindowOccupancyBuckets = []float64{
	0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
}

// SimMetrics is the simulator's metric bundle. Simulations accumulate
// locally (plain fields on the single-goroutine hot paths) and flush here
// once per Run, so concurrent replicates on different workers share these
// atomics without contending per event.
type SimMetrics struct {
	// Events counts executed discrete events; QueueHighWater is the
	// largest event-queue depth any simulation reached.
	Events         *Counter
	QueueHighWater *Gauge
	// InflightHighWater is the largest live-packet count of any simulation.
	InflightHighWater *Gauge
	// FCTms digests completed-flow completion times; PathHops digests
	// router hops per delivered data packet.
	FCTms    *Histogram
	PathHops *Histogram
	// FlowletReroutes counts layer re-selections at flowlet boundaries;
	// Trims counts NDP payload trims; Retransmits counts retransmitted
	// packets; TCPTimeouts counts RTO firings; Drops counts lost packets.
	FlowletReroutes *Counter
	Trims           *Counter
	Retransmits     *Counter
	TCPTimeouts     *Counter
	Drops           *Counter
	FlowsCompleted  *Counter
	// ShardEvents digests per-shard executed-event counts (one observation
	// per shard per run); BarrierStalls counts shard windows that executed
	// nothing; WindowOccupancy digests events per shard window. The latter
	// two stay zero on serial (shards=1) runs, which have no windows.
	ShardEvents     *Histogram
	BarrierStalls   *Counter
	WindowOccupancy *Histogram
}

// NewSimMetrics returns the simulator bundle backed by r, or nil (the
// disabled bundle) when r is nil. Bundles from one registry share state.
func NewSimMetrics(r *Registry) *SimMetrics {
	if r == nil {
		return nil
	}
	return &SimMetrics{
		Events:            r.Counter(MetricSimEvents),
		QueueHighWater:    r.Gauge(MetricSimQueueHighWater),
		InflightHighWater: r.Gauge(MetricSimInflightHW),
		FCTms:             r.Histogram(MetricSimFCTms, FCTBucketsMs),
		PathHops:          r.Histogram(MetricSimPathHops, PathHopBuckets),
		FlowletReroutes:   r.Counter(MetricSimFlowletReroutes),
		Trims:             r.Counter(MetricSimTrims),
		Retransmits:       r.Counter(MetricSimRetransmits),
		TCPTimeouts:       r.Counter(MetricSimTCPTimeouts),
		Drops:             r.Counter(MetricSimDrops),
		FlowsCompleted:    r.Counter(MetricSimFlowsCompleted),
		ShardEvents:       r.Histogram(MetricSimShardEvents, ShardEventBuckets),
		BarrierStalls:     r.Counter(MetricSimBarrierStalls),
		WindowOccupancy:   r.Histogram(MetricSimWindowOccupancy, WindowOccupancyBuckets),
	}
}

// ScenarioMetrics is the durable sweep runtime's bundle: content-addressed
// cache effectiveness (hits, misses, bytes moved) and journal-resume
// volume. Hits and misses count only runs with a cache attached; resumed
// cells count only runs continuing a journal.
type ScenarioMetrics struct {
	CacheHits         *Counter
	CacheMisses       *Counter
	CellsResumed      *Counter
	CacheBytesRead    *Counter
	CacheBytesWritten *Counter
}

// NewScenarioMetrics returns the scenario bundle backed by r, or nil (the
// disabled bundle) when r is nil.
func NewScenarioMetrics(r *Registry) *ScenarioMetrics {
	if r == nil {
		return nil
	}
	return &ScenarioMetrics{
		CacheHits:         r.Counter(MetricScenarioCacheHits),
		CacheMisses:       r.Counter(MetricScenarioCacheMisses),
		CellsResumed:      r.Counter(MetricScenarioCellsResumed),
		CacheBytesRead:    r.Counter(MetricScenarioCacheBytesIn),
		CacheBytesWritten: r.Counter(MetricScenarioCacheBytesOut),
	}
}

// RequestLatencyBucketsMs are the daemon request-latency histogram bounds
// in milliseconds: log-spaced from microsecond-class lock-free table reads
// to multi-second fabric builds and scenario runs.
var RequestLatencyBucketsMs = []float64{
	0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10,
	20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// ServeMetrics is the fabric daemon's bundle: request volume and latency,
// resident-fabric LRU effectiveness, and per-request what-if view volume.
type ServeMetrics struct {
	// Requests counts every handled HTTP request; Errors counts the ones
	// answered with a 4xx/5xx status; LatencyMs digests wall-clock request
	// latency (observational only — never feeds an answer).
	Requests  *Counter
	Errors    *Counter
	LatencyMs *Histogram
	// FabricHits/FabricMisses/FabricEvictions count resident-fabric LRU
	// lookups; FabricsResident gauges the current cache population.
	FabricHits      *Counter
	FabricMisses    *Counter
	FabricEvictions *Counter
	FabricsResident *Gauge
	// WhatifViews counts copy-on-write WithoutEdges views derived for
	// /whatif requests; ScenarioRuns counts /scenarios submissions.
	WhatifViews  *Counter
	ScenarioRuns *Counter
}

// NewServeMetrics returns the daemon bundle backed by r, or nil (the
// disabled bundle) when r is nil.
func NewServeMetrics(r *Registry) *ServeMetrics {
	if r == nil {
		return nil
	}
	return &ServeMetrics{
		Requests:        r.Counter(MetricServeRequests),
		Errors:          r.Counter(MetricServeErrors),
		LatencyMs:       r.Histogram(MetricServeLatencyMs, RequestLatencyBucketsMs),
		FabricHits:      r.Counter(MetricServeFabricHits),
		FabricMisses:    r.Counter(MetricServeFabricMisses),
		FabricEvictions: r.Counter(MetricServeFabricEvicts),
		FabricsResident: r.Gauge(MetricServeFabricsResident),
		WhatifViews:     r.Counter(MetricServeWhatifViews),
		ScenarioRuns:    r.Counter(MetricServeScenarioRuns),
	}
}

// RoutingMetrics is the routing-core bundle: table materialization volume,
// incremental-invalidation effectiveness, and build-lock contention.
type RoutingMetrics struct {
	// TablesBuilt counts lazily or eagerly materialized (layer, dst)
	// tables; CSREntries counts their deployed candidate entries.
	TablesBuilt *Counter
	CSREntries  *Counter
	// TablesInvalidated / TablesShared count, per WithoutEdges repair, the
	// built tables that had to be discarded vs reused from the parent.
	TablesInvalidated *Counter
	TablesShared      *Counter
	// StripeAcquisitions counts first-touch build-lock acquisitions;
	// StripeContention counts acquisitions that found the stripe held.
	StripeAcquisitions *Counter
	StripeContention   *Counter
}

// NewRoutingMetrics returns the routing bundle backed by r, or nil when r
// is nil.
func NewRoutingMetrics(r *Registry) *RoutingMetrics {
	if r == nil {
		return nil
	}
	return &RoutingMetrics{
		TablesBuilt:        r.Counter(MetricRoutingTablesBuilt),
		CSREntries:         r.Counter(MetricRoutingCSREntries),
		TablesInvalidated:  r.Counter(MetricRoutingInvalidated),
		TablesShared:       r.Counter(MetricRoutingShared),
		StripeAcquisitions: r.Counter(MetricRoutingStripeLocks),
		StripeContention:   r.Counter(MetricRoutingStripeContend),
	}
}
