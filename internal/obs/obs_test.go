package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax(3) lowered gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax(11) gave %d", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	// The disabled path hands out nil metrics everywhere; every method must
	// be callable on them.
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.SetMax(2)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	h.ObserveN(2, 3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram stats")
	}
	_ = h.Percentile(0.5)
	var m *SimMetrics
	if m != nil {
		t.Fatal("want nil")
	}
	if NewSimMetrics(nil) != nil || NewRoutingMetrics(nil) != nil {
		t.Fatal("bundles over a nil registry must be nil")
	}
	var p *Progress
	p.SetLabel("x")
	p.Update(1, 2)
	p.Clear()
	if p.Hook() != nil {
		t.Fatal("nil progress must hand out a nil hook")
	}
	var tel *Telemetry
	tel.Emit(struct{}{})
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	if tr.TryAcquire() {
		t.Fatal("nil tracer acquired")
	}
	tr.Instant("c", "n", 0, 0)
	tr.Complete("c", "n", 0, 1, 0)
	tr.CounterEvent("n", 0, 1)
	tr.SpanBegin("c", "n", "1", 0)
	tr.SpanEnd("c", "n", "1", 0)
	if tr.Len() != 0 {
		t.Fatal("nil tracer length")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 556.2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got := h.Max(); got != 500 {
		t.Fatalf("max = %v", got)
	}
	// Two of five observations sit below the first bound, so p40 resolves
	// inside bucket (-inf,1] and reports its upper bound.
	if got := h.Percentile(0.4); got != 1 {
		t.Fatalf("p40 = %v, want 1", got)
	}
	// p90 lands in (100, +inf); the histogram reports the observed max.
	if got := h.Percentile(0.99); got != 500 {
		t.Fatalf("p99 = %v, want 500 (observed max)", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Max(); got != 50 {
		t.Fatalf("merged max = %v", got)
	}
	c := NewHistogram([]float64{2, 20})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across different bounds must fail")
	}
}

func TestRegistryDumpAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") {
		t.Fatalf("dump missing metrics:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("dump not sorted:\n%s", out)
	}
	snap := r.Snapshot()
	if snap["a.first"] != 1 || snap["z.last"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

// TestRegistryConcurrent hammers get-or-create and updates from many
// goroutines; run under -race this guards the registry's locking and the
// lock-free metric updates.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h", FCTBucketsMs).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", FCTBucketsMs).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTelemetryJSONL(t *testing.T) {
	var buf bytes.Buffer
	tel := NewTelemetry(&buf)
	tel.Emit(RunStart{Type: "run_start", Name: "m", Cells: 2, Workers: 1, Seed: 42, UnixMs: 1})
	tel.Emit(CellRecord{Type: "cell", Name: "m", Index: 0, Key: "topo=SF", WallMs: 1.5})
	tel.Emit(RunEnd{Type: "run_end", Name: "m", Cells: 2, WallMs: 3, WorkerUtil: 0.9, UnixMs: 2})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	var cell map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &cell); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"type", "name", "index", "key", "wallMs"} {
		if _, ok := cell[k]; !ok {
			t.Fatalf("cell record missing %q: %s", k, lines[1])
		}
	}
	if cell["type"] != "cell" || cell["key"] != "topo=SF" {
		t.Fatalf("cell record = %v", cell)
	}
}

func TestTracerWindowAndJSON(t *testing.T) {
	tr := NewTracer(100, 50, 0)
	if !tr.TryAcquire() {
		t.Fatal("first acquire must win")
	}
	if tr.TryAcquire() {
		t.Fatal("second acquire must lose")
	}
	tr.Instant("ev", "before", 50, 1) // outside window
	tr.Instant("ev", "inside", 120, 1)
	tr.Complete("ev", "span", 130, 10, 2)
	tr.CounterEvent("depth", 140, 3)
	tr.Instant("ev", "after", 200, 1) // outside window
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3 (window filter)", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("traceEvents = %d", len(out.TraceEvents))
	}
	phases := map[string]bool{}
	for _, ev := range out.TraceEvents {
		phases[ev["ph"].(string)] = true
	}
	for _, ph := range []string{"i", "X", "C"} {
		if !phases[ph] {
			t.Fatalf("missing phase %q in %v", ph, phases)
		}
	}
}

func TestTracerBudget(t *testing.T) {
	tr := NewTracer(0, 1000, 2)
	tr.TryAcquire()
	for i := 0; i < 5; i++ {
		tr.Instant("ev", "x", int64(i), 0)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want budget cap 2", tr.Len())
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig2")
	hook := p.Hook()
	if hook == nil {
		t.Fatal("nil hook from live progress")
	}
	hook(1, 4)
	if !strings.Contains(buf.String(), "fig2") || !strings.Contains(buf.String(), "1/4") {
		t.Fatalf("progress line = %q", buf.String())
	}
	p.Clear()
	if !strings.HasSuffix(buf.String(), "\r") {
		t.Fatalf("clear must end on a bare carriage return: %q", buf.String())
	}
	if NewProgress(nil, "x") != nil {
		t.Fatal("progress over a nil writer must be nil")
	}
}
