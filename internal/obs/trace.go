package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Tracer records a bounded window of a single simulation's event loop in
// the Chrome trace_event JSON format, loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev). Timestamps are simulation time, so the
// timeline shows the simulated fabric, not wall clock.
//
// One tracer traces one simulation: the first simulation to TryAcquire it
// wins, so a CLI can hand a tracer to a whole sweep and get exactly one
// replicate's timeline. Recording stops silently once the window closes or
// MaxEvents is reached — tracing a paper-scale replicate stays bounded.
// A nil *Tracer no-ops everywhere.
type Tracer struct {
	startNs, endNs int64
	maxEvents      int

	acquired atomic.Bool

	mu      sync.Mutex
	events  []traceEvent
	dropped int64
}

// traceEvent is one trace_event record. Ts/Dur are microseconds (floats),
// per the trace format; IDs scope async (flow) spans.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// NewTracer traces the sim-time window [startNs, startNs+durNs), keeping
// at most maxEvents records (<= 0 selects the 250k default).
func NewTracer(startNs, durNs int64, maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = 250_000
	}
	return &Tracer{startNs: startNs, endNs: startNs + durNs, maxEvents: maxEvents}
}

// TryAcquire claims the tracer for one simulation; only the first caller
// succeeds. Nil tracers refuse.
func (t *Tracer) TryAcquire() bool {
	if t == nil {
		return false
	}
	return t.acquired.CompareAndSwap(false, true)
}

// Active reports whether an event at sim time tsNs should be recorded.
func (t *Tracer) Active(tsNs int64) bool {
	if t == nil || tsNs < t.startNs || tsNs >= t.endNs {
		return false
	}
	t.mu.Lock()
	ok := len(t.events) < t.maxEvents
	if !ok {
		t.dropped++
	}
	t.mu.Unlock()
	return ok
}

// inWindow reports whether tsNs falls inside the traced window. Every
// record method filters on it, so callers may emit unconditionally (the
// engine still pre-checks Active to skip building event records at all).
func (t *Tracer) inWindow(tsNs int64) bool {
	return t != nil && tsNs >= t.startNs && tsNs < t.endNs
}

func (t *Tracer) push(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Instant records a zero-duration event (ph "i").
func (t *Tracer) Instant(cat, name string, tsNs int64, tid int) {
	if t == nil || !t.inWindow(tsNs) {
		return
	}
	t.push(traceEvent{Name: name, Cat: cat, Ph: "i", Ts: float64(tsNs) / 1e3, Tid: tid,
		Args: map[string]interface{}{"s": "t"}})
}

// Complete records a duration slice (ph "X") of durNs.
func (t *Tracer) Complete(cat, name string, tsNs, durNs int64, tid int) {
	if t == nil || !t.inWindow(tsNs) {
		return
	}
	d := float64(durNs) / 1e3
	t.push(traceEvent{Name: name, Cat: cat, Ph: "X", Ts: float64(tsNs) / 1e3, Dur: &d, Tid: tid})
}

// CounterEvent records a counter sample (ph "C") rendered as a track in
// the trace viewer.
func (t *Tracer) CounterEvent(name string, tsNs int64, value int64) {
	if t == nil || !t.inWindow(tsNs) {
		return
	}
	t.push(traceEvent{Name: name, Cat: "counter", Ph: "C", Ts: float64(tsNs) / 1e3,
		Args: map[string]interface{}{"value": value}})
}

// SpanBegin opens an async span (ph "b") with the given id — used for
// flow lifetimes, which overlap arbitrarily.
func (t *Tracer) SpanBegin(cat, name, id string, tsNs int64) {
	if t == nil || !t.inWindow(tsNs) {
		return
	}
	t.push(traceEvent{Name: name, Cat: cat, Ph: "b", Ts: float64(tsNs) / 1e3, ID: id})
}

// SpanEnd closes an async span (ph "e").
func (t *Tracer) SpanEnd(cat, name, id string, tsNs int64) {
	if t == nil || !t.inWindow(tsNs) {
		return
	}
	t.push(traceEvent{Name: name, Cat: cat, Ph: "e", Ts: float64(tsNs) / 1e3, ID: id})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the JSON-object envelope of the trace format.
type traceFile struct {
	TraceEvents     []traceEvent           `json:"traceEvents"`
	DisplayTimeUnit string                 `json:"displayTimeUnit"`
	OtherData       map[string]interface{} `json:"otherData,omitempty"`
}

// Write writes the trace as a JSON object (always valid, even with zero
// events).
func (t *Tracer) Write(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	f := traceFile{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
	}
	if t.dropped > 0 {
		f.OtherData = map[string]interface{}{"droppedEvents": t.dropped}
	}
	t.mu.Unlock()
	return json.NewEncoder(w).Encode(f)
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Write(f)
}
