// Package obs is the repository's observability layer: a registry of
// atomic counters, gauges, and fixed-bucket histograms shared by the
// simulator, the routing core, and the scenario/experiment runtimes, plus
// append-only JSONL run telemetry, a bounded Chrome trace_event tracer for
// the simulator's event loop, a unified stderr progress sink, and pprof
// wiring for the CLIs.
//
// Two invariants govern every hook in this package:
//
//   - Deterministic-safe: instrumentation only observes. It never draws
//     from an RNG, reorders work, or feeds back into a simulation, so
//     experiment output is byte-identical with observability on or off.
//   - Near-free when disabled: a nil *Registry yields nil metrics, every
//     metric method is a no-op on a nil receiver, and instrumented
//     components guard their hooks with a single nil check — no
//     allocations, no atomics, no formatting on the disabled path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-op / zero), which is the disabled fast path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a monotone-max mode for
// high-water marks. Nil receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts: bucket i
// holds observations v <= bounds[i]; one overflow bucket holds the rest.
// Fixed bounds keep Observe allocation-free and make concurrent merge and
// percentile estimation trivial. Nil receivers no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	max     atomicFloat
}

// NewHistogram builds a histogram over ascending upper bounds. Use the
// registry's Histogram method instead when the histogram should be shared
// by name.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations (used when flushing local
// per-simulation tallies into a shared histogram).
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.buckets[h.bucket(v)].Add(n)
	h.count.Add(n)
	h.sum.add(v * float64(n))
	h.max.setMax(v)
}

// bucket returns the index of the bucket holding v (binary search; bounds
// lists are short but percentile reads share the helper).
func (h *Histogram) bucket(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.load()
}

// Percentile estimates the p-quantile (p in [0,1]) as the upper bound of
// the bucket containing that rank; ranks landing in the overflow bucket
// report the maximum observation. The estimate is exact when observations
// sit on bucket bounds and otherwise biased at most one bucket upward.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.load()
		}
	}
	return h.max.load()
}

// Merge adds o's observations into h. The two histograms must share
// identical bounds.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %v vs %v", i, b, o.bounds[i])
		}
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.add(o.sum.load())
	h.max.setMax(o.max.load())
	return nil
}

// atomicFloat is a CAS-loop float64 for concurrent sums and maxima.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

func (f *atomicFloat) setMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry is a named get-or-create store of metrics. The zero-cost
// disabled path is a nil *Registry: every accessor returns a nil metric
// whose methods no-op. Registration takes a mutex; updates on the returned
// metrics are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (disabled) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later callers receive the existing histogram regardless of
// the bounds they pass; a metric name owns one bucket layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Dump writes every metric as one aligned text line, sorted by name, so a
// dump at a fixed seed diffs cleanly across runs. Histograms render count,
// mean, p50/p90/p99, and max.
func (r *Registry) Dump(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type line struct{ name, text string }
	var lines []line
	for n, c := range r.counters {
		lines = append(lines, line{n, fmt.Sprintf("%-44s %d", n, c.Value())})
	}
	for n, g := range r.gauges {
		lines = append(lines, line{n, fmt.Sprintf("%-44s %d", n, g.Value())})
	}
	for n, h := range r.hists {
		lines = append(lines, line{n, fmt.Sprintf("%-44s count=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
			n, h.Count(), h.Mean(), h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99), h.Max())})
	}
	r.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		fmt.Fprintln(w, l.text)
	}
}

// Snapshot returns the scalar metrics (counters and gauges) by name —
// enough for tests and telemetry summaries; histograms are reported via
// Dump.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}
