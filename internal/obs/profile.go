package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the standard pprof profiles into a CLI: cpuPath
// starts a CPU profile immediately, memPath records a heap profile when
// the returned stop function runs. Empty paths disable the respective
// profile; stop is always safe to call once.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpu *os.File
	if cpuPath != "" {
		cpu, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
