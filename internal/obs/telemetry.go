package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Telemetry is an append-only JSONL sink for run telemetry: one JSON
// object per line, written under a mutex so worker goroutines can emit
// concurrently. A nil *Telemetry discards everything, which is the
// disabled path. The stream doubles as the seed of the planned run
// journal: cell records carry the canonical resource key a resume/cache
// layer would key on.
type Telemetry struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewTelemetry wraps a writer. The caller owns the writer's lifetime.
func NewTelemetry(w io.Writer) *Telemetry { return &Telemetry{w: w} }

// OpenTelemetry opens (or creates) path in append mode, so successive runs
// accumulate into one journal.
func OpenTelemetry(path string) (*Telemetry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Telemetry{w: f, c: f}, nil
}

// Emit marshals v and appends it as one line. Marshal errors surface on
// stderr rather than failing the run — telemetry must never abort work.
func (t *Telemetry) Emit(v interface{}) {
	if t == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: telemetry marshal: %v\n", err)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w.Write(b)
	io.WriteString(t.w, "\n")
}

// Close closes the underlying file when the Telemetry owns one.
func (t *Telemetry) Close() error {
	if t == nil || t.c == nil {
		return nil
	}
	return t.c.Close()
}

// UnixMs returns the wall clock in integer milliseconds (the telemetry
// timestamp base).
func UnixMs() int64 { return time.Now().UnixMilli() }

// RunStart opens a run in the telemetry stream.
type RunStart struct {
	Type string `json:"type"` // "run_start"
	// Name labels the run (matrix name, experiment ID, or CLI label).
	Name    string `json:"name,omitempty"`
	Cells   int    `json:"cells"`
	Workers int    `json:"workers"`
	Seed    int64  `json:"seed"`
	UnixMs  int64  `json:"unixMs"`
}

// CellRecord reports one completed (or failed) cell.
type CellRecord struct {
	Type string `json:"type"` // "cell"
	Name string `json:"name,omitempty"`
	// Index is the cell's position in canonical expansion order; Key is
	// its canonical resource key (empty for runners without one).
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"`
	// WallMs is the cell's execution wall time; StartOffsetMs is the delay
	// between run start and cell start — the queue wait behind earlier
	// cells on the worker pool.
	WallMs        float64 `json:"wallMs"`
	StartOffsetMs float64 `json:"startOffsetMs"`
	// Source records where the durable sweep runtime found the result:
	// "cache" (content-addressed cache hit), "resume" (recorded in the
	// resumed run journal), or empty for a freshly simulated cell.
	Source string `json:"source,omitempty"`
	Err    string `json:"err,omitempty"`
}

// RunEnd closes a run.
type RunEnd struct {
	Type   string  `json:"type"` // "run_end"
	Name   string  `json:"name,omitempty"`
	Cells  int     `json:"cells"`
	WallMs float64 `json:"wallMs"`
	// WorkerUtil is the mean worker-pool utilization: summed cell wall
	// time over (elapsed wall time × workers).
	WorkerUtil float64 `json:"workerUtil"`
	UnixMs     int64   `json:"unixMs"`
}
