package serve

// The daemon load harness: a concurrent query storm driven straight into
// the handler (no sockets, so the numbers measure the serving path, not
// the kernel), with per-request latencies digested into the percentiles
// CI archives as BENCH_daemon.json. The companion race test runs the same
// mixed workload under -race with answer checking.

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// mixedRequest issues one request from the load mix: mostly lock-free
// /nexthop reads over varying triples, some /paths walks, an occasional
// copy-on-write /whatif derivation, and a /healthz probe.
func mixedRequest(t testing.TB, s *Server, n int) (int, []byte) {
	nr := 50 // SF q=5
	src, dst := n%nr, (n*7+13)%nr
	if src == dst {
		dst = (dst + 1) % nr
	}
	switch {
	case n%16 == 15:
		body := fmt.Sprintf(
			`{"fabric":{"topology":{"kind":"SF","param":5},"layers":2,"rho":0.7},"failedEdges":[%d],"queries":[{"layer":%d,"src":%d,"dst":%d}]}`,
			n%100, n%2, src, dst)
		return post(t, s, "/whatif", body)
	case n%16 == 7:
		return get(t, s, fmt.Sprintf("/paths?%s&src=%d&dst=%d", testFabricQ, src, dst))
	case n%64 == 0:
		return get(t, s, "/healthz")
	default:
		return get(t, s, fmt.Sprintf("/nexthop?%s&layer=%d&src=%d&dst=%d", testFabricQ, n%2, src, dst))
	}
}

// TestDaemonConcurrentQueries hammers one resident fabric from many
// goroutines with the mixed workload — the suite's -race harness for the
// serving path — and checks answers stay deterministic under fire by
// comparing a pinned query before and during the storm.
func TestDaemonConcurrentQueries(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 2})
	pinned := "/nexthop?" + testFabricQ + "&layer=1&src=3&dst=17"
	_, want := get(t, s, pinned)

	workers := 16
	perWorker := 128
	if testing.Short() {
		workers, perWorker = 4, 32
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				if code, body := mixedRequest(t, s, n); code != http.StatusOK {
					t.Errorf("request %d: status %d: %s", n, code, body)
					return
				}
				if n%100 == 17 {
					if _, got := get(t, s, pinned); !bytes.Equal(got, want) {
						t.Errorf("pinned answer drifted under load: %s vs %s", got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	snap := s.reg.Snapshot()
	if snap[obs.MetricServeErrors] != 0 {
		t.Fatalf("%d request errors under load", snap[obs.MetricServeErrors])
	}
	wantReqs := int64(workers*perWorker) + 1 + int64(workers*perWorker/100)
	if snap[obs.MetricServeRequests] < wantReqs {
		t.Fatalf("requests %d, want >= %d", snap[obs.MetricServeRequests], wantReqs)
	}
}

// BenchmarkDaemonQueries is the load harness behind BENCH_daemon.json:
// 10,000 concurrent mixed queries per iteration against a warm daemon,
// reporting throughput and client-observed latency percentiles.
func BenchmarkDaemonQueries(b *testing.B) {
	s := testServer(b, Config{MaxFabrics: 2})
	if code, body := get(b, s, "/nexthop?"+testFabricQ+"&src=0&dst=1"); code != http.StatusOK {
		b.Fatalf("warmup: status %d: %s", code, body)
	}

	const total = 10_000
	const workers = 64
	lat := make([]time.Duration, total)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= total {
						return
					}
					start := time.Now()
					if code, body := mixedRequest(b, s, n); code != http.StatusOK {
						b.Errorf("request %d: status %d: %s", n, code, body)
						return
					}
					lat[n] = time.Since(start)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if b.Failed() {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	b.ReportMetric(float64(total), "queries/op")
	b.ReportMetric(us(lat[total/2]), "p50-µs")
	b.ReportMetric(us(lat[total*99/100]), "p99-µs")
	b.ReportMetric(us(lat[total-1]), "max-µs")
	if snap := s.reg.Snapshot(); snap[obs.MetricServeErrors] != 0 {
		b.Fatalf("%d request errors", snap[obs.MetricServeErrors])
	}
	// The daemon-side latency histogram saw every request; sanity-check the
	// observability path agrees with the client-side clock on volume.
	h := s.reg.Histogram(obs.MetricServeLatencyMs, obs.RequestLatencyBucketsMs)
	if h.Count() < int64(total*b.N) {
		b.Fatalf("latency histogram saw %d requests, want >= %d", h.Count(), total*b.N)
	}
}
