// Package serve is the fabric-as-a-service layer behind cmd/fatpathsd: a
// long-running HTTP/JSON daemon that keeps FatPaths fabrics resident in
// an LRU-bounded cache keyed by the scenario engine's canonical fabric
// resource keys, and serves concurrent clients.
//
// Endpoints:
//
//	GET  /nexthop    one (layer, src, dst) next-hop answer — a lock-free
//	                 read off the resident engine's CSR tables
//	GET  /paths      per-layer representative paths and the deployed
//	                 path-diversity count for one router pair
//	POST /whatif     copy-on-write failure analysis: a per-request
//	                 WithoutEdges view (incremental, parent-sharing)
//	                 answers queries against the failed fabric
//	POST /scenarios  submit a scenario matrix; cells execute on the shared
//	                 worker pool with the content-addressed result cache,
//	                 per-cell progress streams back as JSONL
//	GET  /metrics    the obs registry (fatpathsd.*, routing.*, netsim.*)
//	GET  /healthz    liveness plus resident-fabric census
//
// The determinism contract extends to serving: a daemon answer and an
// offline engine at the same seed are byte-identical (pinned by
// TestServedAnswersMatchOfflineEngine and the CI daemon-smoke fixtures).
// Wall-clock time appears only in latency telemetry, never in answers.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Config shapes the daemon.
type Config struct {
	// MaxFabrics bounds the resident-fabric LRU (minimum and default 1;
	// cmd/fatpathsd defaults to 8).
	MaxFabrics int
	// Lazy skips the eager BuildAll at fabric admission, leaving routing
	// tables to materialize per destination on first query. The default
	// (eager) front-loads the build so queries are uniformly cheap and
	// /whatif shared/invalidated counts are deterministic.
	Lazy bool
	// BuildWorkers is the admission BuildAll worker count (0 = all cores).
	BuildWorkers int
	// CacheDir, when non-empty, is the content-addressed scenario result
	// cache shared with cmd/scenarios (README "Durable sweeps").
	CacheDir string
	// Parallelism is the scenario worker pool width (0 = all cores).
	Parallelism int
	// Shards is the per-simulation event-loop shard count for scenario
	// cells that do not set their own (0 = serial).
	Shards int
	// MaxScenarioRuns caps concurrently executing /scenarios submissions;
	// excess submissions queue (minimum and default 1). Path queries are
	// never queued — they only read resident tables.
	MaxScenarioRuns int
}

// Server hosts the handlers over one resident-fabric cache. Create with
// New, mount via Handler.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	met     *obs.ServeMetrics
	fabrics *FabricCache
	sem     chan struct{}
	mux     *http.ServeMux
}

// New builds a Server. reg may be nil (metrics disabled); when non-nil it
// also instruments every resident fabric (routing.* metrics) and every
// scenario simulation (netsim.*).
func New(cfg Config, reg *obs.Registry) *Server {
	met := obs.NewServeMetrics(reg)
	prebuild := cfg.BuildWorkers
	if cfg.Lazy {
		prebuild = -1
	}
	runs := cfg.MaxScenarioRuns
	if runs < 1 {
		runs = 1
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		met:     met,
		fabrics: NewFabricCache(cfg.MaxFabrics, prebuild, reg, met),
		sem:     make(chan struct{}, runs),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /nexthop", s.instrument(s.handleNexthop))
	s.mux.HandleFunc("GET /paths", s.instrument(s.handlePaths))
	s.mux.HandleFunc("POST /whatif", s.instrument(s.handleWhatif))
	s.mux.HandleFunc("POST /scenarios", s.instrument(s.handleScenarios))
	s.mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Fabrics exposes the resident-fabric cache (health and tests).
func (s *Server) Fabrics() *FabricCache { return s.fabrics }

// instrument wraps a handler with the request/latency/error telemetry.
// Purely observational: the wall clock feeds the latency histogram only.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if s.met != nil {
			s.met.Requests.Inc()
			if sw.code >= 400 {
				s.met.Errors.Inc()
			}
			s.met.LatencyMs.Observe(time.Since(start).Seconds() * 1e3)
		}
	}
}

// statusWriter captures the response status for the error counter and
// forwards Flush for the JSONL streaming endpoints.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// FabricSelector names a resident fabric in POST bodies: the
// fabric-defining axes of a scenario cell plus the run seed. The zero
// value of each field selects the same default the scenario engine uses.
type FabricSelector struct {
	Topology     scenario.Topology `json:"topology"`
	Layers       int               `json:"layers,omitempty"`
	Rho          float64           `json:"rho,omitempty"`
	Construction string            `json:"construction,omitempty"`
	// Seed is the run seed (default 42, matching the CLIs).
	Seed int64 `json:"seed,omitempty"`
}

// spec converts the selector into the fabric-defining scenario Spec. The
// pattern placeholder satisfies Spec.Validate; it is outside the fabric
// key and never built by the daemon's fabric path.
func (fs FabricSelector) spec() (scenario.Spec, int64) {
	seed := fs.Seed
	if seed == 0 {
		seed = 42
	}
	return scenario.Spec{
		Topology:     fs.Topology,
		Layers:       fs.Layers,
		Rho:          fs.Rho,
		Construction: fs.Construction,
		Pattern:      scenario.Pattern{Kind: "uniform"},
	}, seed
}

// fabricQueryKeys are the query parameters selecting a fabric on the GET
// endpoints; endpoint-specific keys ride on top.
var fabricQueryKeys = []string{"topo", "class", "param", "param2", "layers", "rho", "construction", "seed"}

// selectorFromQuery parses the fabric-defining query parameters,
// rejecting unknown keys (extra holds the endpoint's own keys).
func selectorFromQuery(q url.Values, extra ...string) (FabricSelector, error) {
	allowed := map[string]bool{}
	for _, k := range fabricQueryKeys {
		allowed[k] = true
	}
	for _, k := range extra {
		allowed[k] = true
	}
	for k := range q {
		if !allowed[k] {
			return FabricSelector{}, fmt.Errorf("unknown query parameter %q", k)
		}
	}
	var fs FabricSelector
	fs.Topology.Kind = q.Get("topo")
	if fs.Topology.Kind == "" {
		return FabricSelector{}, fmt.Errorf("missing required query parameter \"topo\" (topology kind: SF, DF, HX, XP, FT3, JF, Clique, Star)")
	}
	fs.Topology.Class = q.Get("class")
	var err error
	if fs.Topology.Param, err = intQuery(q, "param", 0); err != nil {
		return FabricSelector{}, err
	}
	if fs.Topology.Param2, err = intQuery(q, "param2", 0); err != nil {
		return FabricSelector{}, err
	}
	if fs.Layers, err = intQuery(q, "layers", 0); err != nil {
		return FabricSelector{}, err
	}
	if fs.Rho, err = floatQuery(q, "rho", 0); err != nil {
		return FabricSelector{}, err
	}
	fs.Construction = q.Get("construction")
	seed, err := intQuery(q, "seed", 42)
	if err != nil {
		return FabricSelector{}, err
	}
	fs.Seed = int64(seed)
	return fs, nil
}

func intQuery(q url.Values, key string, def int) (int, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %q is not an integer", key, v)
	}
	return n, nil
}

func floatQuery(q url.Values, key string, def float64) (float64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %q is not a number", key, v)
	}
	return f, nil
}

// fabric resolves a selector to its resident fabric (admitting on miss).
func (s *Server) fabric(fs FabricSelector) (*core.Fabric, error) {
	spec, seed := fs.spec()
	_, fab, err := s.fabrics.Get(spec, seed)
	return fab, err
}

// HopAnswer is one next-hop query answer — identical fields on /nexthop
// and inside /whatif, so clients diff healthy vs failed answers directly.
type HopAnswer struct {
	Layer int `json:"layer"`
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	// Next is the deterministic representative next hop (-1 when dst is
	// unreachable within the layer); Dist is the hop distance (-1 when
	// unreachable, 0 when src == dst).
	Next int32 `json:"next"`
	Dist int32 `json:"dist"`
	// Candidates is the full within-layer ECMP candidate set at src.
	Candidates []int32 `json:"candidates"`
}

// answerHop reads one (layer, src, dst) answer off a forwarding view.
func answerHop(fab *core.Fabric, fwd interface {
	Next(l, s, d int) int32
	Candidates(l, s, d int) []int32
	PathLen(l, s, d int) int
}, layer, src, dst int) HopAnswer {
	a := HopAnswer{
		Layer: layer, Src: src, Dst: dst,
		Next: fwd.Next(layer, src, dst),
		Dist: int32(fwd.PathLen(layer, src, dst)),
	}
	a.Candidates = append([]int32{}, fwd.Candidates(layer, src, dst)...)
	return a
}

// validateTriple bounds-checks one (layer, src, dst) query.
func validateTriple(fab *core.Fabric, layer, src, dst int) error {
	if layer < 0 || layer >= fab.Fwd.NumLayers() {
		return fmt.Errorf("layer %d outside [0,%d)", layer, fab.Fwd.NumLayers())
	}
	return validatePair(fab, src, dst)
}

func validatePair(fab *core.Fabric, src, dst int) error {
	nr := fab.Topo.Nr()
	if src < 0 || src >= nr {
		return fmt.Errorf("src router %d outside [0,%d)", src, nr)
	}
	if dst < 0 || dst >= nr {
		return fmt.Errorf("dst router %d outside [0,%d)", dst, nr)
	}
	return nil
}

// handleNexthop: GET /nexthop?topo=SF&param=5&layer=0&src=3&dst=17 — one
// lock-free table read.
func (s *Server) handleNexthop(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fs, err := selectorFromQuery(q, "layer", "src", "dst")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	layer, err1 := intQuery(q, "layer", 0)
	src, err2 := requiredInt(q, "src")
	dst, err3 := requiredInt(q, "dst")
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fab, err := s.fabric(fs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := validateTriple(fab, layer, src, dst); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, answerHop(fab, fab.Fwd, layer, src, dst))
}

// LayerPath is one layer's representative route in a /paths answer.
type LayerPath struct {
	Layer int `json:"layer"`
	// Len is the within-layer minimal hop count (-1 when the layer does
	// not connect the pair).
	Len int `json:"len"`
	// Path is the representative router-level route (deterministic
	// tie-breaks), absent when unreachable.
	Path []int32 `json:"path,omitempty"`
	// Candidates is the ECMP width at src within the layer.
	Candidates int `json:"candidates"`
}

// PathsAnswer is the /paths response.
type PathsAnswer struct {
	Src    int         `json:"src"`
	Dst    int         `json:"dst"`
	Layers []LayerPath `json:"layers"`
	// DistinctPaths counts distinct (first hop, length) routes across all
	// layers and ECMP candidates — the deployed path-diversity measure the
	// flowlet balancer actually chooses over.
	DistinctPaths int `json:"distinctPaths"`
}

// handlePaths: GET /paths?topo=SF&param=5&src=3&dst=17[&layer=2] — the
// multipath/diversity view of one router pair.
func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fs, err := selectorFromQuery(q, "layer", "src", "dst")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	src, err1 := requiredInt(q, "src")
	dst, err2 := requiredInt(q, "dst")
	onlyLayer, err3 := intQuery(q, "layer", -1)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fab, err := s.fabric(fs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := validatePair(fab, src, dst); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if onlyLayer >= fab.Fwd.NumLayers() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("layer %d outside [0,%d)", onlyLayer, fab.Fwd.NumLayers()))
		return
	}
	ans := PathsAnswer{Src: src, Dst: dst}
	type route struct {
		first int32
		hops  int
	}
	distinct := map[route]bool{}
	for l := 0; l < fab.Fwd.NumLayers(); l++ {
		lp := LayerPath{Layer: l, Len: fab.Fwd.PathLen(l, src, dst)}
		if lp.Len >= 0 {
			lp.Candidates = len(fab.Fwd.Candidates(l, src, dst))
			lp.Path = walkPath(fab, l, src, dst)
			for _, nh := range fab.Fwd.Candidates(l, src, dst) {
				distinct[route{nh, lp.Len}] = true
			}
		}
		if onlyLayer < 0 || onlyLayer == l {
			ans.Layers = append(ans.Layers, lp)
		}
	}
	ans.DistinctPaths = len(distinct)
	writeJSON(w, http.StatusOK, ans)
}

// walkPath follows the representative next hops from src to dst within a
// layer. The hop bound guards routing holes (sparse repaired layers).
func walkPath(fab *core.Fabric, layer, src, dst int) []int32 {
	path := []int32{int32(src)}
	v := src
	for v != dst {
		nxt := fab.Fwd.Next(layer, v, dst)
		if nxt < 0 || len(path) > fab.Topo.Nr() {
			return nil
		}
		path = append(path, nxt)
		v = int(nxt)
	}
	return path
}

// WhatifRequest is the POST /whatif body: a fabric, the base edge IDs to
// fail, and the queries to answer against the repaired view.
type WhatifRequest struct {
	Fabric      FabricSelector `json:"fabric"`
	FailedEdges []int          `json:"failedEdges"`
	Queries     []QueryTriple  `json:"queries"`
}

// QueryTriple names one (layer, src, dst) query.
type QueryTriple struct {
	Layer int `json:"layer"`
	Src   int `json:"src"`
	Dst   int `json:"dst"`
}

// WhatifAnswer is the POST /whatif response. SharedTables and
// InvalidatedTables expose the incremental repair: how many of the
// resident fabric's tables the per-request view reused vs discarded.
type WhatifAnswer struct {
	FailedEdges       []int       `json:"failedEdges"`
	SharedTables      int         `json:"sharedTables"`
	InvalidatedTables int         `json:"invalidatedTables"`
	Answers           []HopAnswer `json:"answers"`
}

// handleWhatif derives a copy-on-write WithoutEdges view for this request
// only — the resident fabric is never mutated, so concurrent /nexthop
// readers are unaffected — and answers the queries against it.
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req WhatifRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fab, err := s.fabric(req.Fabric)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	m := fab.Topo.G.M()
	for _, id := range req.FailedEdges {
		if id < 0 || id >= m {
			httpError(w, http.StatusBadRequest, fmt.Errorf("failed edge %d outside [0,%d)", id, m))
			return
		}
	}
	for _, qt := range req.Queries {
		if err := validateTriple(fab, qt.Layer, qt.Src, qt.Dst); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	derived := fab.Fwd.WithoutEdges(req.FailedEdges)
	if s.met != nil {
		s.met.WhatifViews.Inc()
	}
	shared := derived.Engine().Stat().TablesBuilt
	parentBuilt := fab.Fwd.Engine().Stat().TablesBuilt
	ans := WhatifAnswer{
		FailedEdges:       append([]int{}, req.FailedEdges...),
		SharedTables:      shared,
		InvalidatedTables: parentBuilt - shared,
		Answers:           make([]HopAnswer, 0, len(req.Queries)),
	}
	for _, qt := range req.Queries {
		ans.Answers = append(ans.Answers, answerHop(fab, derived, qt.Layer, qt.Src, qt.Dst))
	}
	writeJSON(w, http.StatusOK, ans)
}

// ScenarioRequest is the POST /scenarios body: a scenario matrix (the
// same JSON cmd/scenarios reads from disk) plus the run seed.
type ScenarioRequest struct {
	Matrix scenario.Matrix `json:"matrix"`
	Seed   int64           `json:"seed,omitempty"`
}

// handleScenarios expands the matrix and executes it on the shared worker
// pool with the content-addressed result cache, streaming progress as
// JSONL: the run_start / per-cell / run_end telemetry records, then one
// final {"type":"result"} line carrying the cell results in canonical
// order (or {"type":"error"} — streams commit the 200 status before the
// run starts). Submissions beyond MaxScenarioRuns queue on a semaphore.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cells, skipped, err := req.Matrix.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 42
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request canceled while queued behind other scenario runs"))
		return
	}
	if s.met != nil {
		s.met.ScenarioRuns.Inc()
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	fw := &flushWriter{w: w}
	tel := obs.NewTelemetry(fw)
	results, err := scenario.RunSpecs(cells, scenario.RunOptions{
		Seed:        seed,
		Parallelism: s.cfg.Parallelism,
		Shards:      s.cfg.Shards,
		Name:        req.Matrix.Name,
		Obs:         s.reg,
		Telemetry:   tel,
		CacheDir:    s.cfg.CacheDir,
	})
	if err != nil {
		tel.Emit(map[string]string{"type": "error", "error": err.Error()})
		return
	}
	tel.Emit(struct {
		Type    string                `json:"type"`
		Cells   int                   `json:"cells"`
		Skipped int                   `json:"skipped"`
		Results []scenario.CellResult `json:"results"`
	}{Type: "result", Cells: len(cells), Skipped: skipped, Results: results})
}

// flushWriter flushes after every write so JSONL progress lines reach
// the client as they happen, not when the response buffer fills.
type flushWriter struct{ w http.ResponseWriter }

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

// HealthAnswer is the GET /healthz response.
type HealthAnswer struct {
	Status string `json:"status"`
	// Fabrics / MaxFabrics census the resident LRU.
	Fabrics    int `json:"fabrics"`
	MaxFabrics int `json:"maxFabrics"`
	// Fingerprint is the engine fingerprint answers are computed under —
	// clients pin it the way journals do.
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthAnswer{
		Status:      "ok",
		Fabrics:     s.fabrics.Len(),
		MaxFabrics:  s.fabrics.cap,
		Fingerprint: scenario.EngineFingerprint,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("metrics registry disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.Dump(w)
}

// requiredInt parses a mandatory integer query parameter.
func requiredInt(q url.Values, key string) (int, error) {
	if q.Get(key) == "" {
		return 0, fmt.Errorf("missing required query parameter %q", key)
	}
	return intQuery(q, key, 0)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decodeJSON strictly decodes a request body (unknown fields rejected, so
// typos fail loudly instead of silently selecting defaults — the same
// discipline as cmd/scenarios spec files).
func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// writeJSON writes one JSON object and a trailing newline (answers are
// valid JSONL, so fixtures and CLI pipelines diff cleanly).
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, err error) {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}
