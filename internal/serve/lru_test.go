package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

func lruSpec(layers int) scenario.Spec {
	return scenario.Spec{
		Topology: scenario.Topology{Kind: "SF", Param: 5},
		Layers:   layers,
		Rho:      0.7,
		Pattern:  scenario.Pattern{Kind: "uniform"},
	}
}

// TestFabricCacheLRU pins admission, recency promotion, and eviction
// order, plus the metrics ledger the daemon's /metrics exposes.
func TestFabricCacheLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewFabricCache(2, -1, reg, obs.NewServeMetrics(reg))

	_, fab1, err := c.Get(lruSpec(1), 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(lruSpec(2), 42); err != nil {
		t.Fatal(err)
	}
	// Promote layers=1, then admit a third key: layers=2 (now LRU) evicts.
	if _, again, err := c.Get(lruSpec(1), 42); err != nil || again != fab1 {
		t.Fatalf("hit must return the resident fabric (err %v)", err)
	}
	if _, _, err := c.Get(lruSpec(3), 42); err != nil {
		t.Fatal(err)
	}
	keys := c.Keys()
	if len(keys) != 2 {
		t.Fatalf("resident %d fabrics, want 2", len(keys))
	}
	want1, want3 := lruSpec(1).FabricKey(42), lruSpec(3).FabricKey(42)
	if keys[0] != want3 || keys[1] != want1 {
		t.Fatalf("keys %v, want [%s %s] (MRU first)", keys, want3, want1)
	}
	snap := reg.Snapshot()
	if snap[obs.MetricServeFabricHits] != 1 || snap[obs.MetricServeFabricMisses] != 3 ||
		snap[obs.MetricServeFabricEvicts] != 1 || snap[obs.MetricServeFabricsResident] != 2 {
		t.Fatalf("cache ledger hits/misses/evicts/resident = %d/%d/%d/%d, want 1/3/1/2",
			snap[obs.MetricServeFabricHits], snap[obs.MetricServeFabricMisses],
			snap[obs.MetricServeFabricEvicts], snap[obs.MetricServeFabricsResident])
	}
	// Seed participates in the key: same axes, different run seed, new entry.
	if lruSpec(1).FabricKey(42) == lruSpec(1).FabricKey(43) {
		t.Fatal("fabric key must fold the run seed")
	}
}

// TestFabricCacheSingleFlight: concurrent requests for one key must share
// one build (one miss admission, every caller handed the same fabric).
func TestFabricCacheSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewFabricCache(2, 0, reg, obs.NewServeMetrics(reg))
	const callers = 16
	fabs := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, fab, err := c.Get(lruSpec(2), 42)
			if err != nil {
				t.Error(err)
				return
			}
			fabs[i] = fab
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if fabs[i] != fabs[0] {
			t.Fatal("concurrent callers received different fabric instances")
		}
	}
	// The instrumented build ran once: routing.tables_built equals one
	// eager BuildAll of 2 layers x 50 destinations.
	if built := reg.Snapshot()[obs.MetricRoutingTablesBuilt]; built != 2*50 {
		t.Fatalf("routing.tables_built = %d, want 100 (one single-flight build)", built)
	}
	if c.Len() != 1 {
		t.Fatalf("resident %d fabrics, want 1", c.Len())
	}
}

// TestFabricCacheBuildError: a spec that fails validation returns its
// error to every waiter but does not stay resident.
func TestFabricCacheBuildError(t *testing.T) {
	c := NewFabricCache(2, -1, nil, nil)
	if _, _, err := c.Get(lruSpec(2), 42); err != nil {
		t.Fatal(err)
	}
	bad := lruSpec(2)
	bad.Topology.Kind = "NOPE"
	for i := 0; i < 2; i++ {
		_, _, err := c.Get(bad, 42)
		if err == nil || !strings.Contains(err.Error(), "NOPE") {
			t.Fatalf("attempt %d: err %v, want unknown-topology error", i, err)
		}
	}
	if c.Len() != 1 || c.Keys()[0] != lruSpec(2).FabricKey(42) {
		t.Fatalf("failed builds disturbed residency: %v", c.Keys())
	}
}
