package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// FabricCache keeps fabrics resident in an LRU-bounded cache keyed by the
// scenario engine's canonical fabric resource key (Spec.FabricKey: the
// effective seed plus the fabric-defining axes). Builds are single-flight:
// concurrent requests for one key block on one build instead of racing.
// Eviction only drops the cache's reference — in-flight requests keep the
// evicted fabric alive through their own pointers, and a fabric's routing
// engine is immutable-once-published, so evicting under concurrent
// queries is safe.
type FabricCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	reg *obs.Registry // instruments built fabrics (routing-core metrics)
	met *obs.ServeMetrics
	// prebuild, when >= 0, eagerly materializes every (layer, destination)
	// table on admission with that many workers (0 = all cores): the
	// daemon's "expensive to build, cheap to query" shape, and what makes
	// /whatif shared/invalidated counts deterministic. -1 leaves tables
	// lazy.
	prebuild int
}

// fabricEntry is one resident fabric. The once gates the single-flight
// build; errors are cached too (they are deterministic functions of the
// spec, so retrying cannot succeed).
type fabricEntry struct {
	key   string
	once  sync.Once
	build func() (*topo.Topology, *core.Fabric, error)
	topo  *topo.Topology
	fab   *core.Fabric
	err   error
}

// NewFabricCache returns a cache holding at most capacity fabrics
// (minimum 1). prebuild as documented on FabricCache.
func NewFabricCache(capacity, prebuild int, reg *obs.Registry, met *obs.ServeMetrics) *FabricCache {
	if capacity < 1 {
		capacity = 1
	}
	return &FabricCache{
		cap:      capacity,
		order:    list.New(),
		items:    map[string]*list.Element{},
		reg:      reg,
		met:      met,
		prebuild: prebuild,
	}
}

// Len returns the resident entry count.
func (c *FabricCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the resident fabric keys, most recently used first.
func (c *FabricCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*fabricEntry).key)
	}
	return keys
}

// Get returns the resident fabric for the cell's fabric key, building and
// admitting it on a miss (evicting the least recently used entry when the
// cache is full). The build runs outside the cache lock; a second request
// for the same key blocks on the entry's once, not on unrelated builds.
func (c *FabricCache) Get(s scenario.Spec, runSeed int64) (*topo.Topology, *core.Fabric, error) {
	key := s.FabricKey(runSeed)
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.order.MoveToFront(el)
	} else {
		e := &fabricEntry{key: key}
		e.build = func() (*topo.Topology, *core.Fabric, error) {
			t, fab, err := scenario.BuildFabric(s, runSeed, c.reg)
			if err == nil && c.prebuild >= 0 {
				fab.Fwd.BuildAll(c.prebuild)
			}
			return t, fab, err
		}
		el = c.order.PushFront(e)
		c.items[key] = el
		for c.order.Len() > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.items, back.Value.(*fabricEntry).key)
			if c.met != nil {
				c.met.FabricEvictions.Inc()
			}
		}
		if c.met != nil {
			c.met.FabricsResident.Set(int64(c.order.Len()))
		}
	}
	c.mu.Unlock()
	if c.met != nil {
		if ok {
			c.met.FabricHits.Inc()
		} else {
			c.met.FabricMisses.Inc()
		}
	}
	e := el.Value.(*fabricEntry)
	e.once.Do(func() {
		e.topo, e.fab, e.err = e.build()
		e.build = nil
		if e.err != nil {
			// Failed builds (invalid specs) must not occupy LRU capacity or
			// evict healthy fabrics; concurrent waiters still receive the
			// cached error through the entry they already hold.
			c.mu.Lock()
			if cur, ok := c.items[e.key]; ok && cur.Value.(*fabricEntry) == e {
				c.order.Remove(cur)
				delete(c.items, e.key)
				if c.met != nil {
					c.met.FabricsResident.Set(int64(c.order.Len()))
				}
			}
			c.mu.Unlock()
		}
	})
	return e.topo, e.fab, e.err
}
