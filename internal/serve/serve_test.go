package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the daemon smoke fixtures under testdata/")

// testFabricQ selects the suite's resident fabric: SlimFly q=5 (50
// routers), 2 layers, rho 0.7, default seed 42.
const testFabricQ = "topo=SF&param=5&layers=2&rho=0.7"

// testSpec is the offline twin of testFabricQ.
func testSpec() scenario.Spec {
	return scenario.Spec{
		Topology: scenario.Topology{Kind: "SF", Param: 5},
		Layers:   2,
		Rho:      0.7,
		Pattern:  scenario.Pattern{Kind: "uniform"},
	}
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	return New(cfg, obs.NewRegistry())
}

func do(t testing.TB, s *Server, method, target, body string) (int, []byte) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

func get(t testing.TB, s *Server, target string) (int, []byte) {
	return do(t, s, http.MethodGet, target, "")
}

func post(t testing.TB, s *Server, target, body string) (int, []byte) {
	return do(t, s, http.MethodPost, target, body)
}

// TestServedAnswersMatchOfflineEngine pins the daemon half of the
// determinism contract: /nexthop and /whatif answers are byte-identical
// to the offline engine at the same seed — residency changes where the
// fabric lives, never what it answers.
func TestServedAnswersMatchOfflineEngine(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 2})
	_, fab, err := scenario.BuildFabric(testSpec(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	fab.Fwd.BuildAll(0) // mirror the daemon's eager admission build
	nr := fab.Topo.Nr()

	for _, q := range []struct{ layer, src, dst int }{
		{0, 0, 1}, {1, 3, 17}, {0, 49, 0}, {1, 7, 7}, {0, 12, nr - 1},
	} {
		want := answerHop(fab, fab.Fwd, q.layer, q.src, q.dst)
		wb, _ := json.Marshal(want)
		wb = append(wb, '\n')
		code, got := get(t, s, "/nexthop?"+testFabricQ+
			"&layer="+itoa(q.layer)+"&src="+itoa(q.src)+"&dst="+itoa(q.dst))
		if code != http.StatusOK {
			t.Fatalf("nexthop (%d,%d,%d): status %d: %s", q.layer, q.src, q.dst, code, got)
		}
		if !bytes.Equal(got, wb) {
			t.Fatalf("nexthop (%d,%d,%d) diverged from offline engine:\n  daemon  %s  offline %s",
				q.layer, q.src, q.dst, got, wb)
		}
	}

	// /whatif against an offline WithoutEdges view, including the
	// shared/invalidated census (deterministic because both sides built
	// eagerly).
	edges := []int{0, 7, 11}
	derived := fab.Fwd.WithoutEdges(edges)
	want := WhatifAnswer{
		FailedEdges:       edges,
		SharedTables:      derived.Engine().Stat().TablesBuilt,
		InvalidatedTables: fab.Fwd.Engine().Stat().TablesBuilt - derived.Engine().Stat().TablesBuilt,
	}
	queries := []QueryTriple{{Layer: 0, Src: 3, Dst: 17}, {Layer: 1, Src: 44, Dst: 2}}
	for _, q := range queries {
		want.Answers = append(want.Answers, answerHop(fab, derived, q.Layer, q.Src, q.Dst))
	}
	wb, _ := json.Marshal(want)
	wb = append(wb, '\n')
	body, _ := json.Marshal(WhatifRequest{
		Fabric:      FabricSelector{Topology: scenario.Topology{Kind: "SF", Param: 5}, Layers: 2, Rho: 0.7},
		FailedEdges: edges, Queries: queries,
	})
	code, got := post(t, s, "/whatif", string(body))
	if code != http.StatusOK {
		t.Fatalf("whatif: status %d: %s", code, got)
	}
	if !bytes.Equal(got, wb) {
		t.Fatalf("whatif diverged from offline engine:\n  daemon  %s  offline %s", got, wb)
	}
	if want.SharedTables+want.InvalidatedTables != fab.Fwd.Engine().Stat().TablesBuilt {
		t.Fatalf("shared %d + invalidated %d != parent built %d",
			want.SharedTables, want.InvalidatedTables, fab.Fwd.Engine().Stat().TablesBuilt)
	}
}

// TestPathsEndpoint sanity-checks the diversity view: every layer answer
// walks src->dst, and distinct paths are at least the best layer's ECMP
// width.
func TestPathsEndpoint(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 1})
	code, body := get(t, s, "/paths?"+testFabricQ+"&src=3&dst=17")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var ans PathsAnswer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if len(ans.Layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(ans.Layers))
	}
	maxWidth := 0
	for _, lp := range ans.Layers {
		if lp.Len < 0 {
			continue // sparse layer may legitimately not connect the pair
		}
		if lp.Candidates > maxWidth {
			maxWidth = lp.Candidates
		}
		if len(lp.Path) != lp.Len+1 {
			t.Fatalf("layer %d: path %v has %d hops, reported len %d", lp.Layer, lp.Path, len(lp.Path)-1, lp.Len)
		}
		if lp.Path[0] != 3 || lp.Path[len(lp.Path)-1] != 17 {
			t.Fatalf("layer %d path %v does not run 3->17", lp.Layer, lp.Path)
		}
	}
	if ans.Layers[0].Len < 0 {
		t.Fatal("layer 0 is the full topology; 3->17 must be reachable")
	}
	if ans.DistinctPaths < maxWidth {
		t.Fatalf("distinctPaths %d < best single-layer ECMP width %d", ans.DistinctPaths, maxWidth)
	}
	// The layer filter returns exactly one entry with identical content.
	code, body = get(t, s, "/paths?"+testFabricQ+"&src=3&dst=17&layer=1")
	if code != http.StatusOK {
		t.Fatalf("filtered: status %d: %s", code, body)
	}
	var one PathsAnswer
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Layers) != 1 || !reflect.DeepEqual(one.Layers[0], ans.Layers[1]) {
		t.Fatalf("layer filter answer %+v != unfiltered layer 1 %+v", one.Layers, ans.Layers[1])
	}
	if one.DistinctPaths != ans.DistinctPaths {
		t.Fatal("layer filter must not change the cross-layer diversity count")
	}
}

// TestRequestValidation walks the 400 surface: unknown/missing/bad
// parameters, out-of-range routers, layers, and edges, malformed and
// unknown-field bodies. Every rejection is {"error": ...}.
func TestRequestValidation(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 1})
	cases := []struct {
		name, method, target, body string
	}{
		{"unknown param", "GET", "/nexthop?" + testFabricQ + "&src=0&dst=1&bogus=1", ""},
		{"missing topo", "GET", "/nexthop?src=0&dst=1", ""},
		{"missing src", "GET", "/nexthop?" + testFabricQ + "&dst=1", ""},
		{"non-integer", "GET", "/nexthop?" + testFabricQ + "&src=zero&dst=1", ""},
		{"src range", "GET", "/nexthop?" + testFabricQ + "&src=50&dst=1", ""},
		{"dst range", "GET", "/nexthop?" + testFabricQ + "&src=0&dst=-1", ""},
		{"layer range", "GET", "/nexthop?" + testFabricQ + "&layer=2&src=0&dst=1", ""},
		{"bad topo kind", "GET", "/nexthop?topo=NOPE&src=0&dst=1", ""},
		{"paths layer range", "GET", "/paths?" + testFabricQ + "&src=0&dst=1&layer=9", ""},
		{"whatif bad json", "POST", "/whatif", "{"},
		{"whatif unknown field", "POST", "/whatif", `{"fabric":{"topology":{"kind":"SF","param":5}},"edges":[1]}`},
		{"whatif edge range", "POST", "/whatif", `{"fabric":{"topology":{"kind":"SF","param":5},"layers":2,"rho":0.7},"failedEdges":[99999]}`},
		{"whatif query range", "POST", "/whatif", `{"fabric":{"topology":{"kind":"SF","param":5},"layers":2,"rho":0.7},"queries":[{"layer":0,"src":0,"dst":400}]}`},
		{"scenarios bad matrix", "POST", "/scenarios", `{"matrix":{"base":{"topology":{"kind":"SF"},"pattern":{"kind":"uniform"}},"axes":{"rhos":[0.5,0.5]}}}`},
	}
	for _, c := range cases {
		code, body := do(t, s, c.method, c.target, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, code, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not an error object", c.name, body)
		}
	}
	// A failed build must not occupy LRU capacity.
	if n := s.Fabrics().Len(); n != 1 {
		t.Fatalf("%d resident fabrics after the 400 walk, want 1 (the valid one)", n)
	}
}

// TestScenariosEndpoint submits a small matrix and checks the streamed
// JSONL protocol plus the determinism contract: the final result line
// matches an offline RunSpecs of the same matrix and seed exactly.
func TestScenariosEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	s := testServer(t, Config{MaxFabrics: 2, MaxScenarioRuns: 1})
	m := scenario.Matrix{
		Name: "serve-smoke",
		Base: scenario.Spec{
			Topology:  scenario.Topology{Kind: "SF", Param: 5},
			Rho:       0.7,
			Pattern:   scenario.Pattern{Kind: "uniform"},
			FlowSize:  scenario.FlowSize{Bytes: 2048},
			HorizonMs: 20,
		},
		Axes: scenario.Axes{Layers: []int{1, 2}},
	}
	body, _ := json.Marshal(ScenarioRequest{Matrix: m, Seed: 7})
	code, out := post(t, s, "/scenarios", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	types := map[string]int{}
	for _, ln := range lines {
		var rec struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", ln, err)
		}
		types[rec.Type]++
	}
	if types["run_start"] != 1 || types["cell"] != 2 || types["run_end"] != 1 || types["result"] != 1 {
		t.Fatalf("stream records %v, want 1 run_start / 2 cell / 1 run_end / 1 result", types)
	}
	var final struct {
		Type    string                `json:"type"`
		Cells   int                   `json:"cells"`
		Results []scenario.CellResult `json:"results"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Type != "result" || final.Cells != 2 {
		t.Fatalf("final line %+v, want type=result cells=2", final)
	}
	cells, _, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.RunSpecs(cells, scenario.RunOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(final.Results)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("streamed results diverged from offline RunSpecs:\n  daemon  %s\n  offline %s", gb, wb)
	}
}

// TestSmokeFixtures pins the committed CI daemon-smoke fixtures: the same
// requests the workflow curls against a live daemon must produce these
// bytes. Regenerate with -update after an intentional engine change.
func TestSmokeFixtures(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 8}) // cmd/fatpathsd defaults
	fixtures := []struct {
		file, method, target, body string
	}{
		{"smoke_nexthop.json", "GET", "/nexthop?" + testFabricQ + "&layer=1&src=3&dst=17", ""},
		{"smoke_paths.json", "GET", "/paths?" + testFabricQ + "&src=3&dst=17", ""},
		{"smoke_whatif.json", "POST", "/whatif",
			`{"fabric":{"topology":{"kind":"SF","param":5},"layers":2,"rho":0.7},"failedEdges":[0,7],"queries":[{"layer":1,"src":3,"dst":17},{"layer":0,"src":0,"dst":49}]}`},
		// Healthz last: the requests above admit exactly one fabric.
		{"smoke_healthz.json", "GET", "/healthz", ""},
	}
	for _, f := range fixtures {
		code, got := do(t, s, f.method, f.target, f.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", f.file, code, got)
		}
		path := filepath.Join("testdata", f.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create fixtures)", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s drifted from the committed fixture:\n  got  %s  want %s", f.file, got, want)
		}
	}
}

// TestMetricsAndHealth checks the observability endpoints end to end:
// request/latency/cache metrics accumulate and /healthz reports the
// census.
func TestMetricsAndHealth(t *testing.T) {
	s := testServer(t, Config{MaxFabrics: 1})
	get(t, s, "/nexthop?"+testFabricQ+"&src=0&dst=1")
	get(t, s, "/nexthop?"+testFabricQ+"&src=0&dst=2")
	get(t, s, "/nexthop?bad=1")

	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h HealthAnswer
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Fabrics != 1 || h.MaxFabrics != 1 || h.Fingerprint != scenario.EngineFingerprint {
		t.Fatalf("healthz answer %+v", h)
	}

	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	dump := string(body)
	for _, name := range []string{
		obs.MetricServeRequests, obs.MetricServeErrors, obs.MetricServeLatencyMs,
		obs.MetricServeFabricHits, obs.MetricServeFabricMisses, obs.MetricServeFabricsResident,
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("metrics dump lacks %s", name)
		}
	}
	snap := s.reg.Snapshot()
	// 4 requests so far (healthz and metrics count too, minus this dump's
	// own request which Snapshot preceded): pin the concrete ledger.
	if snap[obs.MetricServeRequests] < 4 {
		t.Fatalf("requests %d, want >= 4", snap[obs.MetricServeRequests])
	}
	if snap[obs.MetricServeErrors] != 1 {
		t.Fatalf("errors %d, want 1", snap[obs.MetricServeErrors])
	}
	if snap[obs.MetricServeFabricHits] != 1 || snap[obs.MetricServeFabricMisses] != 1 {
		t.Fatalf("fabric hits/misses %d/%d, want 1/1",
			snap[obs.MetricServeFabricHits], snap[obs.MetricServeFabricMisses])
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
