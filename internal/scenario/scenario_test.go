package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomMatrix draws a matrix with random (distinct) axis values and random
// constraints from rng. Kept to cheap axes only — these matrices are
// expanded, never executed.
func randomMatrix(rng *rand.Rand) *Matrix {
	m := &Matrix{
		Name: fmt.Sprintf("prop-%d", rng.Intn(1000)),
		Base: Spec{
			Topology: Topology{Kind: "SF", Param: 5},
			Pattern:  Pattern{Kind: "uniform"},
		},
	}
	pickSome := func(n int) int { return 1 + rng.Intn(n) }
	if rng.Intn(2) == 0 {
		kinds := []string{"SF", "DF", "HX", "XP"}
		for _, k := range kinds[:pickSome(len(kinds))] {
			m.Axes.Topologies = append(m.Axes.Topologies, Topology{Kind: k, Param: 3 + rng.Intn(3)})
		}
	}
	if rng.Intn(2) == 0 {
		pats := []Pattern{{Kind: "uniform"}, {Kind: "adversarial"}, {Kind: "shuffle"}, {Kind: "uniform", Randomize: true}}
		m.Axes.Patterns = pats[:pickSome(len(pats))]
	}
	if rng.Intn(2) == 0 {
		rs := []string{"fatpaths", "ecmp", "letflow", "minimal", "spray"}
		m.Axes.Routings = rs[:pickSome(len(rs))]
	}
	if rng.Intn(2) == 0 {
		ts := []string{"ndp", "tcp", "dctcp"}
		m.Axes.Transports = ts[:pickSome(len(ts))]
	}
	if rng.Intn(2) == 0 {
		ls := []int{0, 1, 4, 9}
		m.Axes.Layers = ls[:pickSome(len(ls))]
	}
	if rng.Intn(2) == 0 {
		rh := []float64{0, 0.5, 0.8, 1}
		m.Axes.Rhos = rh[:pickSome(len(rh))]
	}
	if rng.Intn(2) == 0 {
		fs := []FlowSize{{Bytes: 32 << 10}, {Bytes: 1 << 20}, {Kind: "pfabric"}}
		m.Axes.FlowSizes = fs[:pickSome(len(fs))]
	}
	if rng.Intn(2) == 0 {
		lo := []float64{0, 100, 300}
		m.Axes.Loads = lo[:pickSome(len(lo))]
	}
	if rng.Intn(2) == 0 {
		ff := []float64{0, 0.05}
		m.Axes.FailFracs = ff[:pickSome(len(ff))]
	}
	// Random skip constraints over a random subset of axes, with values
	// drawn from the rendered values actually present.
	nSkip := rng.Intn(3)
	for i := 0; i < nSkip; i++ {
		when := map[string]string{}
		if len(m.Axes.Routings) > 0 && rng.Intn(2) == 0 {
			when["routing"] = m.Axes.Routings[rng.Intn(len(m.Axes.Routings))]
		}
		if len(m.Axes.Layers) > 0 && rng.Intn(2) == 0 {
			when["layers"] = fmt.Sprintf("%d", m.Axes.Layers[rng.Intn(len(m.Axes.Layers))])
		}
		if len(m.Axes.Topologies) > 0 && rng.Intn(2) == 0 {
			when["topology"] = m.Axes.Topologies[rng.Intn(len(m.Axes.Topologies))].Kind
		}
		if len(when) > 0 {
			m.Skip = append(m.Skip, Constraint{When: when})
		}
	}
	return m
}

// TestExpandProperties checks, over many random matrices, that expansion
// is deterministic, duplicate-free, constraint-filtered, and that
// cells + filtered equals the full cross-product size.
func TestExpandProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := randomMatrix(rng)
		cells, filtered, err := m.Expand()
		if err != nil {
			t.Fatalf("trial %d: %v\nmatrix: %+v", trial, err, m)
		}
		// Count: product of axis lengths == kept + filtered.
		if got, want := len(cells)+filtered, m.Size(); got != want {
			t.Fatalf("trial %d: cells(%d)+filtered(%d) = %d, want product %d",
				trial, len(cells), filtered, got, want)
		}
		// Determinism: a second expansion is identical.
		again, filtered2, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if filtered != filtered2 || !reflect.DeepEqual(cells, again) {
			t.Fatalf("trial %d: expansion not deterministic", trial)
		}
		// Uniqueness: no two cells serialize identically.
		seen := map[string]bool{}
		for _, c := range cells {
			b, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			if seen[string(b)] {
				t.Fatalf("trial %d: duplicate cell %s", trial, b)
			}
			seen[string(b)] = true
		}
		// Constraint filtering: no surviving cell matches any constraint.
		for i, c := range cells {
			skip, err := m.skipped(c)
			if err != nil {
				t.Fatal(err)
			}
			if skip {
				t.Fatalf("trial %d: cell %d matches a skip constraint but survived", trial, i)
			}
		}
	}
}

// TestSpecJSONRoundTrip: a spec survives marshal/unmarshal losslessly.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Topology: Topology{Kind: "SF", Param: 7, Param2: 3}, Layers: 4, Rho: 0.6},
		{
			Name:         "full",
			Topology:     Topology{Kind: "HX", Class: "medium"},
			Layers:       9,
			Rho:          0.8,
			Construction: "min-interference",
			Routing:      "letflow",
			Transport:    "dctcp",
			Pattern:      Pattern{Kind: "off-diagonal", Offset: 7, Intensity: 0.5, Randomize: true},
			FlowSize:     FlowSize{Kind: "pfabric"},
			Load:         300,
			FailFrac:     0.05,
			Replicas:     3,
			HorizonMs:    1234.5,
			Seed:         99,
			MAT:          true,
		},
	}
	for i, s := range specs {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("spec %d: round trip lost data:\n  in  %+v\n  out %+v", i, s, got)
		}
	}
}

// TestMatrixJSONRoundTrip: random matrices survive JSON round trips.
func TestMatrixJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		m := randomMatrix(rng)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var got Matrix
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*m, got) {
			t.Fatalf("trial %d: round trip lost data:\n  in  %+v\n  out %+v", trial, m, got)
		}
	}
}

func TestExpandRejectsDuplicateAxisValues(t *testing.T) {
	m := &Matrix{
		Base: Spec{Topology: Topology{Kind: "SF", Param: 5}, Pattern: Pattern{Kind: "uniform"}},
		Axes: Axes{Rhos: []float64{0.6, 0.6}},
	}
	if _, _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate axis values must be rejected, got %v", err)
	}
}

func TestExpandRejectsUnknownConstraintAxis(t *testing.T) {
	m := &Matrix{
		Base: Spec{Topology: Topology{Kind: "SF", Param: 5}, Pattern: Pattern{Kind: "uniform"}},
		Skip: []Constraint{{When: map[string]string{"colour": "blue"}}},
	}
	if _, _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "unknown axis") {
		t.Fatalf("unknown constraint axis must be rejected, got %v", err)
	}
	m.Skip = []Constraint{{When: map[string]string{}}}
	if _, _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "empty skip") {
		t.Fatalf("empty constraint must be rejected, got %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Topology: Topology{Kind: "SF", Param: 5}, Pattern: Pattern{Kind: "uniform"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Topology: Topology{Kind: "TORUS"}, Pattern: Pattern{Kind: "uniform"}},
		{Topology: Topology{Kind: "SF", Class: "gigantic"}, Pattern: Pattern{Kind: "uniform"}},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "zipf"}},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "off-diagonal"}}, // offset required
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Routing: "valiant"},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Transport: "quic"},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Construction: "greedy"},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Rho: 1.5},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, FailFrac: 1},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Load: -1},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, Layers: -2},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, HorizonMs: -5},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "uniform"}, FlowSize: FlowSize{Kind: "weird"}},
		{Topology: Topology{Kind: "SF"}, Pattern: Pattern{Kind: "k-permutations", K: -2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestSeedForPartitioning: equal tags share seeds, distinct tags get
// (statistically certainly) distinct seeds, and the run seed matters.
func TestSeedForPartitioning(t *testing.T) {
	if seedFor(1, "a") != seedFor(1, "a") {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor(1, "a") == seedFor(1, "b") {
		t.Fatal("distinct tags collided")
	}
	if seedFor(1, "a") == seedFor(2, "a") {
		t.Fatal("run seed ignored")
	}
}

// TestWorkloadKeySharing: cells differing only in routing/transport axes
// agree on the workload key (and therefore face identical workloads),
// while workload-defining axes split it.
func TestWorkloadKeySharing(t *testing.T) {
	base := Spec{Topology: Topology{Kind: "SF", Param: 5}, Pattern: Pattern{Kind: "uniform"}, Load: 300}
	a, b := base, base
	a.Routing, a.Transport, a.Layers, a.Rho = "ecmp", "tcp", 1, 1
	b.Routing, b.Transport = "fatpaths", "ndp"
	if a.workloadKey() != b.workloadKey() {
		t.Fatal("routing/transport axes must not change the workload key")
	}
	c := base
	c.FlowSize = FlowSize{Bytes: 64 << 10}
	if c.workloadKey() == base.workloadKey() {
		t.Fatal("flow size must change the workload key")
	}
	d := base
	d.Pattern = Pattern{Kind: "uniform", Randomize: true}
	if d.workloadKey() == base.workloadKey() {
		t.Fatal("pattern must change the workload key")
	}
}
