package scenario

import (
	"fmt"
	"sort"
	"strconv"
)

// sortedKeys returns a map's keys in sorted order, for deterministic
// iteration over constraint axes.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Axes lists the swept values per axis. An empty axis keeps the Base
// spec's value; a non-empty axis overrides it per cell. Axis values must
// be pairwise distinct (duplicates would silently duplicate cells).
type Axes struct {
	Topologies    []Topology `json:"topologies,omitempty"`
	Patterns      []Pattern  `json:"patterns,omitempty"`
	Routings      []string   `json:"routings,omitempty"`
	Transports    []string   `json:"transports,omitempty"`
	Layers        []int      `json:"layers,omitempty"`
	Rhos          []float64  `json:"rhos,omitempty"`
	Constructions []string   `json:"constructions,omitempty"`
	FlowSizes     []FlowSize `json:"flowSizes,omitempty"`
	Loads         []float64  `json:"loads,omitempty"`
	FailFracs     []float64  `json:"failFracs,omitempty"`
}

// Constraint skips every cell whose rendered axis values match all entries
// of When. Keys are axis names (topology, pattern, routing, transport,
// layers, rho, construction, flowSize, load, failFrac); values are the
// canonical renderings produced by AxisValue.
type Constraint struct {
	When map[string]string `json:"when"`
}

// Matrix is a declarative sweep: a base spec, per-axis value lists, and
// skip constraints cutting the cross product.
type Matrix struct {
	Name string       `json:"name,omitempty"`
	Base Spec         `json:"base"`
	Axes Axes         `json:"axes"`
	Skip []Constraint `json:"skip,omitempty"`
}

// axisNames is the fixed nesting order of expansion, outermost first. Cell
// order is the row order of every scenario table.
var axisNames = []string{
	"topology", "pattern", "routing", "transport", "layers", "rho",
	"construction", "flowSize", "load", "failFrac",
}

// AxisNames returns the matrix axis names in their fixed nesting order
// (outermost first) — the one list constraint keys and cell renderings are
// defined over.
func AxisNames() []string {
	return append([]string(nil), axisNames...)
}

// AxisValue renders one axis of a spec to its canonical constraint-matching
// string: topology → kind, pattern → kind (plus "+rand"), flowSize → byte
// count or "pfabric", numeric axes → %g, scheme axes → resolved name.
func AxisValue(s Spec, axis string) (string, error) {
	switch axis {
	case "topology":
		return s.Topology.Kind, nil
	case "pattern":
		return s.Pattern.label(), nil
	case "routing":
		return s.routing(), nil
	case "transport":
		return s.transport(), nil
	case "layers":
		return strconv.Itoa(s.Layers), nil
	case "rho":
		return strconv.FormatFloat(s.Rho, 'g', -1, 64), nil
	case "construction":
		return s.construction(), nil
	case "flowSize":
		return s.FlowSize.label(), nil
	case "load":
		return strconv.FormatFloat(s.Load, 'g', -1, 64), nil
	case "failFrac":
		return strconv.FormatFloat(s.FailFrac, 'g', -1, 64), nil
	}
	return "", fmt.Errorf("scenario: unknown axis %q (have %v)", axis, axisNames)
}

// skipped reports whether any constraint matches the cell.
func (m *Matrix) skipped(s Spec) (bool, error) {
	for _, c := range m.Skip {
		match := true
		// Sorted axis order keeps the error (when several axes are bad)
		// deterministic; the conjunction itself is order-independent.
		for _, axis := range sortedKeys(c.When) {
			got, err := AxisValue(s, axis)
			if err != nil {
				return false, err
			}
			if got != c.When[axis] {
				match = false
				break
			}
		}
		if match && len(c.When) > 0 {
			return true, nil
		}
	}
	return false, nil
}

// validateAxes rejects duplicate values within an axis and invalid
// constraint shapes up front, so Expand failures carry useful messages.
func (m *Matrix) validate() error {
	seen := func(axis string, n int, key func(i int) string) error {
		set := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			k := key(i)
			if set[k] {
				return fmt.Errorf("scenario: matrix %q: duplicate %s axis value %s", m.Name, axis, k)
			}
			set[k] = true
		}
		return nil
	}
	ax := &m.Axes
	if err := seen("topology", len(ax.Topologies), func(i int) string { return ax.Topologies[i].key() }); err != nil {
		return err
	}
	if err := seen("pattern", len(ax.Patterns), func(i int) string { return ax.Patterns[i].key() }); err != nil {
		return err
	}
	if err := seen("routing", len(ax.Routings), func(i int) string { return ax.Routings[i] }); err != nil {
		return err
	}
	if err := seen("transport", len(ax.Transports), func(i int) string { return ax.Transports[i] }); err != nil {
		return err
	}
	if err := seen("layers", len(ax.Layers), func(i int) string { return strconv.Itoa(ax.Layers[i]) }); err != nil {
		return err
	}
	if err := seen("rho", len(ax.Rhos), func(i int) string { return strconv.FormatFloat(ax.Rhos[i], 'g', -1, 64) }); err != nil {
		return err
	}
	if err := seen("construction", len(ax.Constructions), func(i int) string { return ax.Constructions[i] }); err != nil {
		return err
	}
	if err := seen("flowSize", len(ax.FlowSizes), func(i int) string { return ax.FlowSizes[i].key() }); err != nil {
		return err
	}
	if err := seen("load", len(ax.Loads), func(i int) string { return strconv.FormatFloat(ax.Loads[i], 'g', -1, 64) }); err != nil {
		return err
	}
	if err := seen("failFrac", len(ax.FailFracs), func(i int) string { return strconv.FormatFloat(ax.FailFracs[i], 'g', -1, 64) }); err != nil {
		return err
	}
	for _, c := range m.Skip {
		if len(c.When) == 0 {
			return fmt.Errorf("scenario: matrix %q: empty skip constraint", m.Name)
		}
		for _, axis := range sortedKeys(c.When) {
			if _, err := AxisValue(m.Base, axis); err != nil {
				return fmt.Errorf("scenario: matrix %q: %w", m.Name, err)
			}
		}
	}
	return nil
}

// Size returns the unfiltered cross-product size of the matrix.
func (m *Matrix) Size() int {
	n := 1
	for _, l := range []int{
		len(m.Axes.Topologies), len(m.Axes.Patterns), len(m.Axes.Routings),
		len(m.Axes.Transports), len(m.Axes.Layers), len(m.Axes.Rhos),
		len(m.Axes.Constructions), len(m.Axes.FlowSizes), len(m.Axes.Loads),
		len(m.Axes.FailFracs),
	} {
		if l > 0 {
			n *= l
		}
	}
	return n
}

// Expand compiles the matrix into concrete, validated cells in the fixed
// nesting order of axisNames and reports how many cross-product cells the
// skip constraints filtered. Expansion is a pure function of the matrix:
// the same matrix always yields the same cells in the same order.
func (m *Matrix) Expand() (cells []Spec, filtered int, err error) {
	if err := m.validate(); err != nil {
		return nil, 0, err
	}
	// Each axis contributes its override list, or the single base value.
	tops := m.Axes.Topologies
	if len(tops) == 0 {
		tops = []Topology{m.Base.Topology}
	}
	pats := m.Axes.Patterns
	if len(pats) == 0 {
		pats = []Pattern{m.Base.Pattern}
	}
	routings := m.Axes.Routings
	if len(routings) == 0 {
		routings = []string{m.Base.Routing}
	}
	transports := m.Axes.Transports
	if len(transports) == 0 {
		transports = []string{m.Base.Transport}
	}
	layerCounts := m.Axes.Layers
	if len(layerCounts) == 0 {
		layerCounts = []int{m.Base.Layers}
	}
	rhos := m.Axes.Rhos
	if len(rhos) == 0 {
		rhos = []float64{m.Base.Rho}
	}
	constrs := m.Axes.Constructions
	if len(constrs) == 0 {
		constrs = []string{m.Base.Construction}
	}
	sizes := m.Axes.FlowSizes
	if len(sizes) == 0 {
		sizes = []FlowSize{m.Base.FlowSize}
	}
	loads := m.Axes.Loads
	if len(loads) == 0 {
		loads = []float64{m.Base.Load}
	}
	fails := m.Axes.FailFracs
	if len(fails) == 0 {
		fails = []float64{m.Base.FailFrac}
	}

	for _, tp := range tops {
		for _, pt := range pats {
			for _, rt := range routings {
				for _, tr := range transports {
					for _, n := range layerCounts {
						for _, rho := range rhos {
							for _, cs := range constrs {
								for _, fs := range sizes {
									for _, load := range loads {
										for _, ff := range fails {
											s := m.Base
											s.Topology = tp
											s.Pattern = pt
											s.Routing = rt
											s.Transport = tr
											s.Layers = n
											s.Rho = rho
											s.Construction = cs
											s.FlowSize = fs
											s.Load = load
											s.FailFrac = ff
											skip, err := m.skipped(s)
											if err != nil {
												return nil, 0, err
											}
											if skip {
												filtered++
												continue
											}
											if err := s.Validate(); err != nil {
												return nil, 0, fmt.Errorf("matrix %q cell %d: %w", m.Name, len(cells), err)
											}
											cells = append(cells, s)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, filtered, nil
}
