package scenario

// The append-only run journal of the durable sweep runtime: one JSONL
// file per run, a run_header line followed by one cell_done record per
// completed cell, fsync'd in batches. After a crash or Ctrl-C,
// `cmd/scenarios -resume <journal>` reads the journal back, verifies it
// was recorded from the same spec, seed, and engine fingerprint, skips
// every recorded cell, and merges the recorded rows into the final table
// in canonical cell order — a kill-then-resume run is byte-identical to
// an uninterrupted one (pinned by TestKillResumeEqualsUninterrupted and
// the CI resume-smoke step).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// JournalHeader is the first record of a run journal. It pins everything
// a resume must agree on: the run seed, a digest of the expanded cell
// identities, and the engine fingerprint the results were computed under.
type JournalHeader struct {
	Type string `json:"type"` // "run_header"
	// Name labels the run (the matrix name).
	Name string `json:"name,omitempty"`
	// Seed is the run seed every recorded result was computed at.
	Seed int64 `json:"seed"`
	// SpecHash digests the expanded matrix (SpecHash over the cells).
	SpecHash string `json:"specHash"`
	// Fingerprint is the EngineFingerprint at recording time.
	Fingerprint string `json:"fingerprint"`
	// Cells is the expanded cell count of the matrix.
	Cells int `json:"cells"`
}

// CellDone is one completed-cell record.
type CellDone struct {
	Type string `json:"type"` // "cell_done"
	// Identity is the cell's canonical identity (Spec.CacheIdentity at
	// the run seed) — the key resume matching is defined over.
	Identity string `json:"identity"`
	// Key is the human-readable canonical cell key (Spec.Key), carried
	// for log readability and warnings; matching never uses it.
	Key    string     `json:"key"`
	Result CellResult `json:"result"`
}

// SpecHash digests the canonical identities of an expanded cell list at a
// run seed — the journal's definition of "the same run". Cell order is
// part of the digest: resume merges recorded rows positionally into the
// canonical table order, so a reordered matrix is a different run.
func SpecHash(cells []Spec, runSeed int64) string {
	h := sha256.New()
	for _, s := range cells {
		io.WriteString(h, s.CacheIdentity(runSeed))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// journalFlushEvery is the fsync batch size: every N appended records the
// journal syncs to disk. Small enough that a crash loses at most a few
// cells of progress, large enough that fsync latency stays off the
// per-cell path.
const journalFlushEvery = 8

// Journal appends cell_done records to an open journal file. Appends are
// serialized under a mutex (workers record concurrently) and fsync'd in
// batches of journalFlushEvery plus on Sync/Close. A nil *Journal
// discards everything — the disabled path.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	pending int
}

// CreateJournal creates (truncating) a journal at path and writes —
// and immediately syncs — its header.
func CreateJournal(path string, h JournalHeader) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scenario: creating journal: %w", err)
	}
	h.Type = "run_header"
	if h.Fingerprint == "" {
		h.Fingerprint = EngineFingerprint
	}
	b, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("scenario: encoding journal header: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("scenario: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("scenario: syncing journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// AppendJournal opens an existing journal for appending (the resume
// path). A torn final line from a crashed writer is truncated away first,
// so the resumed run's records never concatenate onto a fragment.
func AppendJournal(path string) (*Journal, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: opening journal: %w", err)
	}
	if n := len(b); n > 0 && b[n-1] != '\n' {
		keep := 0
		if i := strings.LastIndexByte(string(b), '\n'); i >= 0 {
			keep = i + 1
		}
		if err := os.Truncate(path, int64(keep)); err != nil {
			return nil, fmt.Errorf("scenario: truncating torn journal line: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scenario: opening journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Record appends one cell_done record. Each record is one Write call, so
// a crash tears at most the final line (which readers tolerate and
// AppendJournal repairs).
func (j *Journal) Record(s Spec, runSeed int64, r CellResult) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(CellDone{
		Type:     "cell_done",
		Identity: s.CacheIdentity(runSeed),
		Key:      s.Key(),
		Result:   r,
	})
	if err != nil {
		return fmt.Errorf("scenario: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("scenario: journal append: %w", err)
	}
	j.pending++
	if j.pending >= journalFlushEvery {
		j.pending = 0
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("scenario: journal sync: %w", err)
		}
	}
	return nil
}

// Sync flushes pending records to disk.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending = 0
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Sync(); err != nil {
		return err
	}
	return j.f.Close()
}

// JournalState is a read-back journal: its header and the deduplicated
// set of recorded cells.
type JournalState struct {
	Header JournalHeader
	// Done maps cell identity to its recorded cell_done (first record
	// wins — by the determinism contract duplicates carry identical
	// results, and first-wins keeps the choice deterministic).
	Done map[string]CellDone
	// Duplicates counts cell_done records dropped as duplicates.
	Duplicates int
	// Torn reports whether the final line was unparseable — the signature
	// of a crash mid-append. The torn line is ignored; everything before
	// it is intact (each record is one line).
	Torn bool
}

// ReadJournal parses a journal file. The first line must be a
// run_header; a corrupt record anywhere but the final line is an error
// (journals are append-only — interior corruption means the file is not
// a journal), while an unparseable final line sets Torn.
func ReadJournal(path string) (*JournalState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading journal: %w", err)
	}
	lines := strings.Split(string(b), "\n")
	// A trailing newline yields one empty final element; drop it.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: journal %s is empty", path)
	}
	st := &JournalState{Done: map[string]CellDone{}}
	if err := json.Unmarshal([]byte(lines[0]), &st.Header); err != nil || st.Header.Type != "run_header" {
		return nil, fmt.Errorf("scenario: journal %s: first line is not a run_header record", path)
	}
	for i, line := range lines[1:] {
		var cd CellDone
		if err := json.Unmarshal([]byte(line), &cd); err != nil || cd.Type != "cell_done" || cd.Identity == "" {
			if i == len(lines)-2 { // final line: tolerate the torn write
				st.Torn = true
				break
			}
			return nil, fmt.Errorf("scenario: journal %s: corrupt record on line %d", path, i+2)
		}
		if _, dup := st.Done[cd.Identity]; dup {
			st.Duplicates++
			continue
		}
		st.Done[cd.Identity] = cd
	}
	return st, nil
}

// Match validates the journal against a freshly expanded cell list and
// run seed and splits its records into the resume set and warnings.
// Mismatched seed, spec hash, or engine fingerprint is an error — those
// journals describe a different run and resuming from them would merge
// rows computed under different inputs. Records whose identity appears in
// no expanded cell (a hand-edited or concatenated journal) are warned
// about and ignored; warnings are sorted so their order is deterministic.
func (st *JournalState) Match(cells []Spec, runSeed int64) (map[string]CellResult, []string, error) {
	if st.Header.Fingerprint != EngineFingerprint {
		return nil, nil, fmt.Errorf(
			"scenario: journal was recorded under engine fingerprint %q but this binary is %q (goldens were re-baselined since); re-run without -resume",
			st.Header.Fingerprint, EngineFingerprint)
	}
	if st.Header.Seed != runSeed {
		return nil, nil, fmt.Errorf(
			"scenario: journal was recorded at seed %d but this run requests seed %d; pass -seed %d or re-run without -resume",
			st.Header.Seed, runSeed, st.Header.Seed)
	}
	if got := SpecHash(cells, runSeed); st.Header.SpecHash != got {
		return nil, nil, fmt.Errorf(
			"scenario: journal spec hash %s does not match the expanded matrix (%s): the spec changed since the journal was recorded; use the result cache (-cache-dir) for edited specs, -resume only continues identical runs",
			abbrevHash(st.Header.SpecHash), abbrevHash(got))
	}
	want := make(map[string]bool, len(cells))
	for _, s := range cells {
		want[s.CacheIdentity(runSeed)] = true
	}
	resume := make(map[string]CellResult, len(st.Done))
	var warnings []string
	// Sorted identity order keeps the warning list (and nothing else —
	// resume is a keyed lookup) deterministic.
	ids := make([]string, 0, len(st.Done))
	for id := range st.Done {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cd := st.Done[id]
		if !want[id] {
			warnings = append(warnings, fmt.Sprintf("journal records a cell absent from the expanded matrix (ignored): %s", cd.Key))
			continue
		}
		resume[id] = cd.Result
	}
	return resume, warnings, nil
}

func abbrevHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
