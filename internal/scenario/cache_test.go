package scenario

import (
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// cacheSpec is a small valid cell for cache unit tests.
func cacheSpec() Spec {
	return Spec{
		Topology:  Topology{Kind: "SF", Param: 3},
		Pattern:   Pattern{Kind: "uniform"},
		FlowSize:  FlowSize{Bytes: 32 << 10},
		HorizonMs: 1000,
	}
}

// TestCacheIdentityCoversResultAffectingFields: every field that changes
// what a cell computes changes its canonical identity, and all the
// variants are mutually distinct.
func TestCacheIdentityCoversResultAffectingFields(t *testing.T) {
	base := cacheSpec()
	variants := map[string]func(*Spec){
		"topology kind":  func(s *Spec) { s.Topology.Kind = "JF" },
		"topology param": func(s *Spec) { s.Topology.Param = 5 },
		"topology class": func(s *Spec) { s.Topology.Class = "2" },
		"pattern":        func(s *Spec) { s.Pattern.Kind = "permutation" },
		"pattern detail": func(s *Spec) { s.Pattern.Randomize = true },
		"routing":        func(s *Spec) { s.Routing = "minimal" },
		"transport":      func(s *Spec) { s.Transport = "tcp" },
		"layers":         func(s *Spec) { s.Layers = 5 },
		"rho":            func(s *Spec) { s.Rho = 0.7 },
		"construction":   func(s *Spec) { s.Construction = "min-interference" },
		"flow size":      func(s *Spec) { s.FlowSize.Bytes = 64 << 10 },
		"flow size kind": func(s *Spec) { s.FlowSize.Kind = "pfabric" },
		"load":           func(s *Spec) { s.Load = 0.5 },
		"failFrac":       func(s *Spec) { s.FailFrac = 0.1 },
		"replicas":       func(s *Spec) { s.Replicas = 3 },
		"horizon":        func(s *Spec) { s.HorizonMs = 2000 },
		"mat":            func(s *Spec) { s.MAT = true },
		"seed override":  func(s *Spec) { s.Seed = 1234 },
	}
	seen := map[string]string{base.CacheIdentity(42): "base"}
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	// Deterministic order for failure messages (and maprange hygiene).
	sort.Strings(names)
	for _, name := range names {
		s := base
		variants[name](&s)
		id := s.CacheIdentity(42)
		if prev, dup := seen[id]; dup {
			t.Errorf("changing %q yields the same identity as %q: %s", name, prev, id)
		}
		seen[id] = name
	}
}

// TestCacheIdentityExcludesLabelsAndKnobs: Name is a display label and
// Shards an execution knob — the determinism contract guarantees they
// cannot change results, so they must not change the identity. The run
// seed folds in only when the cell does not override it.
func TestCacheIdentityExcludesLabelsAndKnobs(t *testing.T) {
	base := cacheSpec()
	labeled := base
	labeled.Name = "pretty label"
	labeled.Shards = 4
	if base.CacheIdentity(42) != labeled.CacheIdentity(42) {
		t.Fatal("Name/Shards changed the cache identity")
	}
	if base.CacheIdentity(42) == base.CacheIdentity(43) {
		t.Fatal("run seed did not fold into the identity")
	}
	pinned := base
	pinned.Seed = 7
	if pinned.CacheIdentity(42) != pinned.CacheIdentity(43) {
		t.Fatal("run seed folded into the identity despite a Spec.Seed override")
	}
	if pinned.CacheIdentity(42) != base.CacheIdentity(7) {
		t.Fatal("Spec.Seed 7 and run seed 7 must address the same entry")
	}
}

// TestCacheRoundTrip: Put then Get returns the stored result; misses on
// unknown cells and foreign seeds; a nil cache is inert.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := cacheSpec()
	want := CellResult{Spec: s, Flows: 99, FailedLinks: 1}
	n, err := c.Put(s, 42, want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Put wrote %d bytes", n)
	}
	if !c.Has(s, 42) {
		t.Fatal("Has missed a stored entry")
	}
	got, rn, ok := c.Get(s, 42)
	if !ok || rn != n {
		t.Fatalf("Get: ok=%v read=%d, want hit reading %d bytes", ok, rn, n)
	}
	if got.Flows != want.Flows || got.FailedLinks != want.FailedLinks {
		t.Fatalf("Get returned %+v, want %+v", got, want)
	}
	if _, _, ok := c.Get(s, 43); ok {
		t.Fatal("Get hit under a different run seed")
	}
	var nilCache *Cache
	if nilCache.Has(s, 42) {
		t.Fatal("nil cache claims an entry")
	}
	if _, _, ok := nilCache.Get(s, 42); ok {
		t.Fatal("nil cache hit")
	}
	if _, err := nilCache.Put(s, 42, want); err != nil {
		t.Fatalf("nil cache Put: %v", err)
	}
}

// TestCacheDefectsDegradeToMiss: corrupt JSON and stale fingerprints are
// misses, never wrong answers.
func TestCacheDefectsDegradeToMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := cacheSpec()
	if _, err := c.Put(s, 42, CellResult{Spec: s, Flows: 5}); err != nil {
		t.Fatal(err)
	}
	p := c.path(CacheKey(s, 42))

	if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(s, 42); ok {
		t.Fatal("corrupt entry hit")
	}

	// A stale fingerprint (recorded before a golden re-baseline) must miss.
	if _, err := c.Put(s, 42, CellResult{Spec: s, Flows: 5}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(b), EngineFingerprint, "fatpaths-engine-v0", 1)
	if err := os.WriteFile(p, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(s, 42); ok {
		t.Fatal("stale-fingerprint entry hit")
	}
}

// TestWarmCacheByteIdentical: a cold cached run, a warm cached run, and
// an uncached run all render the identical table, and the metrics
// account every cell to the right source.
func TestWarmCacheByteIdentical(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	coldReg := obs.NewRegistry()
	cold, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2, CacheDir: dir, Obs: coldReg})
	if err != nil {
		t.Fatal(err)
	}
	warmReg := obs.NewRegistry()
	warm, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2, CacheDir: dir, Obs: warmReg})
	if err != nil {
		t.Fatal(err)
	}

	want := Table("t", plain).String()
	if got := Table("t", cold).String(); got != want {
		t.Fatalf("cold cached run differs from uncached:\n--- cached ---\n%s\n--- plain ---\n%s", got, want)
	}
	if got := Table("t", warm).String(); got != want {
		t.Fatalf("warm cached run differs from uncached:\n--- cached ---\n%s\n--- plain ---\n%s", got, want)
	}

	coldSnap, warmSnap := coldReg.Snapshot(), warmReg.Snapshot()
	if n := coldSnap[obs.MetricScenarioCacheMisses]; n != int64(len(cells)) {
		t.Fatalf("cold run counted %d misses, want %d", n, len(cells))
	}
	if n := coldSnap[obs.MetricScenarioCacheHits]; n != 0 {
		t.Fatalf("cold run counted %d hits, want 0", n)
	}
	if n := warmSnap[obs.MetricScenarioCacheHits]; n != int64(len(cells)) {
		t.Fatalf("warm run counted %d hits, want %d", n, len(cells))
	}
	if n := warmSnap[obs.MetricScenarioCacheMisses]; n != 0 {
		t.Fatalf("warm run counted %d misses, want 0", n)
	}
	if coldSnap[obs.MetricScenarioCacheBytesOut] == 0 || warmSnap[obs.MetricScenarioCacheBytesIn] == 0 {
		t.Fatal("cache byte counters stayed zero")
	}
}

// TestCachePartialHitsOnEditedMatrix: editing a matrix axis recomputes
// only the cells whose canonical identity changed — the durable runtime's
// headline behavior.
func TestCachePartialHitsOnEditedMatrix(t *testing.T) {
	dir := t.TempDir()
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}

	edited := tinyMatrix()
	edited.Axes.FailFracs = []float64{0, 0.2} // keeps the failFrac-0 cells
	editedCells, _, err := edited.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunSpecs(editedCells, RunOptions{Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cached, err := RunSpecs(editedCells, RunOptions{Seed: 7, Parallelism: 2, CacheDir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Table("t", cached).String(), Table("t", plain).String(); got != want {
		t.Fatalf("partially cached run differs from uncached:\n--- cached ---\n%s\n--- plain ---\n%s", got, want)
	}
	snap := reg.Snapshot()
	if snap[obs.MetricScenarioCacheHits] != 2 || snap[obs.MetricScenarioCacheMisses] != 2 {
		t.Fatalf("edited matrix: hits=%d misses=%d, want 2/2",
			snap[obs.MetricScenarioCacheHits], snap[obs.MetricScenarioCacheMisses])
	}
}
