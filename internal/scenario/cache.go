package scenario

// The content-addressed result cache of the durable sweep runtime. Each
// completed cell's CellResult persists under a key derived from the
// cell's canonical identity (Spec.CacheIdentity: every result-affecting
// field plus the effective seed) and the engine fingerprint. The repo's
// determinism contract — byte-identical output at any parallelism, shard
// count, and build order, pinned by the golden harness and detlint —
// makes cache hits provably exact: two cells with equal identities under
// one fingerprint cannot produce different results, so re-running an
// edited matrix recomputes only cells whose canonical identity changed
// and repeated runs of an unchanged spec are near-free.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// EngineFingerprint versions the simulation engine for the durable
// runtime. Bump it whenever the golden tables are re-baselined — any
// change that alters what a cell computes (transport behavior, routing
// tie-breaks, seed folding, table rendering inputs) invalidates every
// cached result and every resumable journal, and the bump is what makes
// stale entries misses instead of silent wrong answers. Purely
// observational changes (obs, tracing, progress) do not bump it.
const EngineFingerprint = "fatpaths-engine-v1"

// CacheKey is the content address of a cell: a hex SHA-256 over the
// engine fingerprint and the cell's canonical identity at the given run
// seed. It deliberately involves no cell index, no matrix name, and no
// wall-clock input, so the same cell addresses the same entry from any
// matrix, any enumeration order, and any day.
func CacheKey(s Spec, runSeed int64) string {
	h := sha256.Sum256([]byte(EngineFingerprint + "\n" + s.CacheIdentity(runSeed)))
	return hex.EncodeToString(h[:])
}

// cacheEntry is the on-disk form of one cached cell. Fingerprint and
// Identity are stored alongside the result and re-verified on read, so a
// (vanishingly unlikely) hash collision or a hand-edited entry degrades
// to a miss, never to a wrong result.
type cacheEntry struct {
	Fingerprint string     `json:"fingerprint"`
	Identity    string     `json:"identity"`
	Result      CellResult `json:"result"`
}

// Cache is a directory of content-addressed cell results. Entries live
// under <dir>/<key[:2]>/<key>.json (two-level fanout keeps directories
// small at paper-sweep scale). A nil *Cache is the disabled path: Get
// always misses and Put discards. Concurrent readers and writers are
// safe — writes are atomic (temp file + rename) and entries for one key
// are byte-identical by construction, so a lost race rewrites the same
// content.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Has reports whether an entry exists for the cell without reading it —
// the cheap probe behind dry-run hit/miss listings.
func (c *Cache) Has(s Spec, runSeed int64) bool {
	if c == nil {
		return false
	}
	_, err := os.Stat(c.path(CacheKey(s, runSeed)))
	return err == nil
}

// Get looks the cell up, returning its result, the bytes read, and
// whether it hit. Any defect — missing entry, unreadable file, corrupt
// JSON, fingerprint or identity mismatch — is a miss; the cache never
// fails a run. On a hit the requested spec replaces the recorded one in
// the returned result: identity excludes labels and execution knobs, so
// the caller's spec is the authoritative rendering.
func (c *Cache) Get(s Spec, runSeed int64) (CellResult, int, bool) {
	if c == nil {
		return CellResult{}, 0, false
	}
	b, err := os.ReadFile(c.path(CacheKey(s, runSeed)))
	if err != nil {
		return CellResult{}, 0, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil ||
		e.Fingerprint != EngineFingerprint ||
		e.Identity != s.CacheIdentity(runSeed) {
		return CellResult{}, 0, false
	}
	r := e.Result
	r.Spec = s
	return r, len(b), true
}

// Put persists the cell's result atomically and returns the bytes
// written. Entries are written to a temp file in the final directory and
// renamed into place, so a crash mid-write leaves no torn entry and
// concurrent writers of one key are idempotent.
func (c *Cache) Put(s Spec, runSeed int64, r CellResult) (int, error) {
	if c == nil {
		return 0, nil
	}
	b, err := json.Marshal(cacheEntry{
		Fingerprint: EngineFingerprint,
		Identity:    s.CacheIdentity(runSeed),
		Result:      r,
	})
	if err != nil {
		return 0, fmt.Errorf("scenario: encoding cache entry: %w", err)
	}
	p := c.path(CacheKey(s, runSeed))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, fmt.Errorf("scenario: cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return 0, fmt.Errorf("scenario: cache: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("scenario: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("scenario: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("scenario: cache write: %w", err)
	}
	return len(b) + 1, nil
}
