package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tinyMatrix is a fast multi-axis matrix on the smallest Slim Fly.
func tinyMatrix() *Matrix {
	return &Matrix{
		Name: "tiny",
		Base: Spec{
			Topology:  Topology{Kind: "SF", Param: 3},
			Pattern:   Pattern{Kind: "uniform"},
			FlowSize:  FlowSize{Bytes: 32 << 10},
			HorizonMs: 1000,
		},
		Axes: Axes{
			Routings:  []string{"fatpaths", "minimal"},
			FailFracs: []float64{0, 0.1},
		},
	}
}

// TestRunDeterministicAcrossParallelism: the rendered scenario table is
// byte-identical at Parallelism 1 and 8 for the same seed.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial, err := Run(tinyMatrix(), RunOptions{Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(tinyMatrix(), RunOptions{Seed: 7, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, p := Table("t", serial).String(), Table("t", par).String()
	if s != p {
		t.Fatalf("parallel differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if len(serial) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(serial))
	}
	for _, r := range serial {
		if r.Flows == 0 {
			t.Fatalf("cell %+v simulated no flows", r.Spec)
		}
	}
}

// TestRunSeedChangesResults: a different run seed changes the workload.
func TestRunSeedChangesResults(t *testing.T) {
	a, err := Run(tinyMatrix(), RunOptions{Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyMatrix(), RunOptions{Seed: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if Table("t", a).String() == Table("t", b).String() {
		t.Fatal("distinct seeds produced identical tables")
	}
}

// TestReplicasAggregate: replicas multiply the simulated flow count and
// keep determinism.
func TestReplicasAggregate(t *testing.T) {
	one := Spec{
		Topology:  Topology{Kind: "SF", Param: 3},
		Pattern:   Pattern{Kind: "permutation"},
		FlowSize:  FlowSize{Bytes: 32 << 10},
		HorizonMs: 1000,
	}
	three := one
	three.Replicas = 3
	rs, err := RunSpecs([]Spec{one, three}, RunOptions{Seed: 5, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Flows != 3*rs[0].Flows {
		t.Fatalf("3 replicas simulated %d flows, want 3×%d", rs[1].Flows, rs[0].Flows)
	}
}

// TestSpecSeedOverride: a cell's Spec.Seed must take effect even when
// another cell in the batch shares its topology and routing keys, and the
// batch must stay deterministic across worker counts.
func TestSpecSeedOverride(t *testing.T) {
	base := Spec{
		Topology:  Topology{Kind: "XP", Param: 4}, // randomized construction
		Pattern:   Pattern{Kind: "permutation"},
		FlowSize:  FlowSize{Bytes: 32 << 10},
		HorizonMs: 1000,
	}
	override := base
	override.Seed = 1234
	cells := []Spec{base, override}
	serial, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if Table("t", serial[:1]).String() == Table("t", serial[1:]).String() {
		t.Fatal("Spec.Seed override had no effect next to a same-key cell")
	}
	par, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if Table("t", serial).String() != Table("t", par).String() {
		t.Fatal("mixed-seed batch not deterministic across worker counts")
	}
}

// TestFailureModel: FailFrac fails the expected link count and the failed
// set is identical across cells sharing (topology, failFrac).
func TestFailureModel(t *testing.T) {
	rs, err := Run(tinyMatrix(), RunOptions{Seed: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Spec.FailFrac == 0 && r.FailedLinks != 0 {
			t.Fatalf("failFrac 0 failed %d links", r.FailedLinks)
		}
		if r.Spec.FailFrac > 0 && r.FailedLinks == 0 {
			t.Fatalf("failFrac %g failed no links", r.Spec.FailFrac)
		}
	}
}

// TestMAT: the MAT option computes a positive throughput bound.
func TestMAT(t *testing.T) {
	s := Spec{
		Topology:  Topology{Kind: "SF", Param: 3},
		Layers:    3,
		Rho:       0.6,
		Pattern:   Pattern{Kind: "worst-case", Intensity: 1},
		FlowSize:  FlowSize{Bytes: 32 << 10},
		HorizonMs: 500,
		MAT:       true,
	}
	rs, err := RunSpecs([]Spec{s}, RunOptions{Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].MAT <= 0 {
		t.Fatalf("MAT = %g, want > 0", rs[0].MAT)
	}
	if tab := Table("t", rs); !strings.Contains(tab.Headers[len(tab.Headers)-1], "MAT") {
		t.Fatal("MAT column missing from table")
	}
}

// TestInvalidSpecRejected: RunSpecs surfaces validation errors with the
// failing cell index.
func TestInvalidSpecRejected(t *testing.T) {
	bad := Spec{Topology: Topology{Kind: "SF", Param: 3}, Pattern: Pattern{Kind: "zipf"}}
	_, err := RunSpecs([]Spec{bad}, RunOptions{Parallelism: 1})
	if err == nil || !strings.Contains(err.Error(), "cell 0") || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("invalid spec must fail with cell index and cause, got %v", err)
	}
}

// TestAllPatternKindsCompile: every pattern kind builds and validates on a
// real topology (the compiled-pattern ValidateFlows gate stays green).
func TestAllPatternKindsCompile(t *testing.T) {
	topoSpec := Topology{Kind: "SF", Param: 3}
	tp, err := topoSpec.build(1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Pattern{
		{Kind: "uniform"}, {Kind: "permutation"}, {Kind: "k-permutations", K: 2},
		{Kind: "off-diagonal", Offset: 3}, {Kind: "shuffle"}, {Kind: "stencil"},
		{Kind: "adversarial"}, {Kind: "worst-case", Intensity: 0.7},
		{Kind: "uniform", Randomize: true, Intensity: 0.5},
	}
	for _, ps := range kinds {
		pat, err := ps.build(tp, 9)
		if err != nil {
			t.Fatalf("%s: %v", ps.Kind, err)
		}
		if err := pat.ValidateFlows(); err != nil {
			t.Fatalf("%s: compiled pattern invalid: %v", ps.Kind, err)
		}
	}
}

// TestRunTelemetryAndDeterminism: a fully instrumented RunSpecs (registry,
// JSONL telemetry, tracer) emits a well-formed journal — run_start, one
// cell record per cell carrying its canonical key, run_end — and renders
// the exact table an uninstrumented run does.
func TestRunTelemetryAndDeterminism(t *testing.T) {
	cells, skipped, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("tiny matrix skipped %d cells", skipped)
	}
	plain, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	var telBuf bytes.Buffer
	tracer := obs.NewTracer(0, 50_000_000, 0)
	instrumented, err := RunSpecs(cells, RunOptions{
		Seed: 7, Parallelism: 2, Name: "tiny",
		Obs: reg, Telemetry: obs.NewTelemetry(&telBuf), Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p, i := Table("t", plain).String(), Table("t", instrumented).String(); p != i {
		t.Fatalf("instrumentation changed the table:\n--- plain ---\n%s\n--- instrumented ---\n%s", p, i)
	}

	lines := strings.Split(strings.TrimSpace(telBuf.String()), "\n")
	if want := len(cells) + 2; len(lines) != want {
		t.Fatalf("journal has %d lines, want %d (run_start + cells + run_end)", len(lines), want)
	}
	keys := map[string]bool{}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		switch {
		case i == 0:
			if rec["type"] != "run_start" || rec["name"] != "tiny" || rec["cells"] != float64(len(cells)) {
				t.Fatalf("bad run_start: %v", rec)
			}
		case i == len(lines)-1:
			if rec["type"] != "run_end" {
				t.Fatalf("bad run_end: %v", rec)
			}
		default:
			if rec["type"] != "cell" {
				t.Fatalf("line %d: type %v, want cell", i, rec["type"])
			}
			keys[rec["key"].(string)] = true
		}
	}
	for _, c := range cells {
		if !keys[c.Key()] {
			t.Fatalf("journal missing cell key %q (have %v)", c.Key(), keys)
		}
	}
	if reg.Snapshot()[obs.MetricSimEvents] == 0 {
		t.Fatal("registry attached, but no simulator events counted")
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer attached, but no events recorded (cell 0 should trace)")
	}
}
