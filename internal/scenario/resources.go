package scenario

// Exported resource builders for serving layers that keep fabrics
// resident outside a sweep (cmd/fatpathsd). A fabric built here is
// byte-identical to the one RunSpecs would build for the same cell: the
// topology and layer seeds fold from the run seed and the same canonical
// resource keys, so a daemon answering /nexthop from a resident fabric
// and an offline engine at the same seed give identical answers — the
// serving side of the determinism contract.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
)

// FabricKey is the canonical resource key of the cell's fabric: the
// effective seed plus the fabric-defining axes (topology, layers, rho,
// construction). Cells with equal fabric keys share one built fabric —
// inside a run via the once-cache, across requests via the daemon's LRU.
func (s Spec) FabricKey(runSeed int64) string {
	return fmt.Sprintf("%d|%s", s.effectiveSeed(runSeed), s.routingKey())
}

// topologyCacheKey keys the per-run topology once-cache. Like FabricKey
// it carries the effective seed: cells overriding Spec.Seed must not
// share artifacts with cells building the same topology from a different
// seed.
func (s Spec) topologyCacheKey(runSeed int64) string {
	return fmt.Sprintf("%d|%s", s.effectiveSeed(runSeed), s.Topology.key())
}

// BuildTopology builds the cell's topology at its canonical folded seed —
// exactly the topology RunSpecs would build for this cell.
func BuildTopology(s Spec, runSeed int64) (*topo.Topology, error) {
	seed := s.effectiveSeed(runSeed)
	return s.Topology.build(seedFor(seed, "topo|"+s.Topology.key()))
}

// BuildFabricOn equips a built topology with the cell's layer set and
// routing engine at the canonical folded layer seed. reg, when non-nil,
// instruments the fabric (routing-core and simulator telemetry).
func BuildFabricOn(s Spec, t *topo.Topology, runSeed int64, reg *obs.Registry) (*core.Fabric, error) {
	seed := s.effectiveSeed(runSeed)
	conf := coreConfig(s, t, seedFor(seed, "layers|"+s.routingKey()))
	conf.Obs = reg
	return core.Build(t, conf)
}

// BuildFabric builds the cell's topology and fabric in one step — the
// daemon's miss path. Equal (FabricKey, fingerprint) always yields a
// behaviorally identical fabric.
func BuildFabric(s Spec, runSeed int64, reg *obs.Registry) (*topo.Topology, *core.Fabric, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	t, err := BuildTopology(s, runSeed)
	if err != nil {
		return nil, nil, err
	}
	fab, err := BuildFabricOn(s, t, runSeed, reg)
	if err != nil {
		return nil, nil, err
	}
	return t, fab, nil
}
