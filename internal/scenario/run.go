package scenario

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// RunOptions control scenario execution. The zero value runs serially at
// seed 0.
type RunOptions struct {
	// Seed drives all randomness; a cell's non-zero Spec.Seed overrides it
	// for that cell only.
	Seed int64
	// Parallelism is the worker count fanning cells out (0 = all cores,
	// 1 = serial). Results are byte-identical for every value.
	Parallelism int
	// Progress, when non-nil, is called after each completed cell with the
	// completed and total cell counts (invocations are serialized).
	Progress func(done, total int)
	// Name labels the run in telemetry records (typically the matrix name).
	Name string
	// Obs, when non-nil, instruments the run: fabrics report routing-core
	// telemetry into it and every simulation flushes its counters there.
	// Purely observational — results are byte-identical with or without it.
	Obs *obs.Registry
	// Telemetry, when non-nil, receives run_start / per-cell / run_end
	// JSONL records (wall times, worker utilization).
	Telemetry *obs.Telemetry
	// Tracer, when non-nil, is offered to cell 0 only (a deterministic
	// choice); the first simulation of that cell records its event loop.
	Tracer *obs.Tracer
	// Shards is the default per-simulation event-loop shard count for cells
	// that do not set Spec.Shards. Like Parallelism it is an execution knob:
	// results are byte-identical for every value. 0 runs simulations serially.
	Shards int
	// CacheDir, when non-empty, holds the content-addressed result cache:
	// cells whose CacheKey has an entry return it without simulating, and
	// freshly simulated cells are persisted for future runs. The
	// determinism contract makes hits exact, so tables are byte-identical
	// with the cache hot, cold, or absent.
	CacheDir string
	// Journal, when non-nil, receives an append-only cell_done record for
	// every completed cell (simulated or cache-hit), enabling crash-resume.
	// The caller owns the header and lifecycle (CreateJournal /
	// AppendJournal / Close).
	Journal *Journal
	// Resume maps cell identities (Spec.CacheIdentity at the run seed) to
	// results recorded by a previous run's journal (JournalState.Match);
	// matching cells merge into the output without re-execution and
	// without re-journaling.
	Resume map[string]CellResult
}

func (o RunOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// CellResult is the measured outcome of one scenario cell.
type CellResult struct {
	Spec Spec `json:"spec"`
	// TopoName/TopoN describe the built topology (e.g. "SF(q=5,p=8)").
	TopoName string `json:"topoName"`
	TopoN    int    `json:"topoN"`
	// Layers/Rho are the resolved routing configuration (after topology
	// defaults were applied).
	Layers int     `json:"layers"`
	Rho    float64 `json:"rho"`
	// Flows is the total simulated flow count over all replicas.
	Flows int `json:"flows"`
	// Completed is the fraction of flows finishing within the horizon.
	Completed float64 `json:"completed"`
	// Throughput digests completed-flow goodput in MiB/s.
	Throughput stats.Summary `json:"throughput"`
	// FCT digests completed-flow completion times in milliseconds.
	FCT stats.Summary `json:"fct"`
	// Drops/Trims sum packet drops and NDP trims over all replicas.
	Drops int64 `json:"drops"`
	Trims int64 `json:"trims"`
	// FailedLinks is the number of links failed per replica.
	FailedLinks int `json:"failedLinks,omitempty"`
	// MAT is the maximum achievable throughput (only when Spec.MAT).
	MAT float64 `json:"mat,omitempty"`
}

// seedFor folds a run seed with a resource tag, partitioning the seed space
// by the canonical identity of the resource. Cells agreeing on a tag agree
// on the derived seed regardless of cell index, worker count, or which
// matrix produced them.
func seedFor(runSeed int64, tag string) int64 {
	h := fnv.New64a()
	h.Write([]byte(tag))
	return exec.FoldSeed(runSeed, h.Sum64())
}

// caches dedupes topology and fabric construction across the cells of one
// run. Entries build once under a per-key once; the routing engine inside a
// fabric is safe for concurrent simulations, so cells share freely.
type caches struct {
	mu   sync.Mutex
	topo map[string]*topoEntry
	fab  map[string]*fabEntry
}

type topoEntry struct {
	once sync.Once
	t    *topo.Topology
	err  error
}

type fabEntry struct {
	once sync.Once
	fab  *core.Fabric
	err  error
}

func newCaches() *caches {
	return &caches{topo: map[string]*topoEntry{}, fab: map[string]*fabEntry{}}
}

func (c *caches) topology(key string, build func() (*topo.Topology, error)) (*topo.Topology, error) {
	c.mu.Lock()
	e, ok := c.topo[key]
	if !ok {
		e = &topoEntry{}
		c.topo[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.t, e.err = build() })
	return e.t, e.err
}

func (c *caches) fabric(key string, build func() (*core.Fabric, error)) (*core.Fabric, error) {
	c.mu.Lock()
	e, ok := c.fab[key]
	if !ok {
		e = &fabEntry{}
		c.fab[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.fab, e.err = build() })
	return e.fab, e.err
}

// simConfig maps the spec's transport and routing names onto a netsim
// configuration.
func simConfig(s Spec) (netsim.Config, error) {
	var cfg netsim.Config
	switch s.transport() {
	case "ndp":
		cfg = netsim.NDPDefaults()
	case "tcp":
		cfg = netsim.TCPDefaults(netsim.TransportTCP)
	case "dctcp":
		cfg = netsim.TCPDefaults(netsim.TransportDCTCP)
	case "mptcp":
		cfg = netsim.TCPDefaults(netsim.TransportMPTCP)
	default:
		return cfg, fmt.Errorf("scenario: unknown transport %q", s.Transport)
	}
	switch s.routing() {
	case "fatpaths":
		cfg.LB = netsim.LBFatPaths
	case "ecmp":
		cfg.LB = netsim.LBECMP
	case "letflow":
		cfg.LB = netsim.LBLetFlow
	case "minimal":
		cfg.LB = netsim.LBMinimalLayer
	case "spray":
		cfg.LB = netsim.LBPacketSpray
	default:
		return cfg, fmt.Errorf("scenario: unknown routing %q", s.Routing)
	}
	return cfg, nil
}

// coreConfig resolves the layer configuration against topology defaults.
func coreConfig(s Spec, t *topo.Topology, layerSeed int64) core.Config {
	cc := core.DefaultConfig(t)
	if s.Layers > 0 {
		cc.NumLayers = s.Layers
	}
	if s.Rho > 0 {
		cc.Rho = s.Rho
	}
	cc.Scheme = constructions[s.Construction]
	cc.Seed = layerSeed
	return cc
}

// runCell executes one cell: build (or fetch) the fabric, compile and
// validate the pattern, then simulate Replicas times and aggregate. traced
// marks the one cell that is offered the run's tracer.
func runCell(s Spec, cc *caches, o RunOptions, traced bool) (CellResult, error) {
	runSeed := s.effectiveSeed(o.Seed)
	if err := s.Validate(); err != nil {
		return CellResult{}, err
	}
	// Cache keys carry the effective run seed (see topologyCacheKey /
	// FabricKey): cells overriding Spec.Seed must not share artifacts with
	// (or race against) cells building the same topology or fabric from a
	// different seed. The builders are the exported resource constructors
	// (resources.go) the fabric daemon shares, so a resident daemon fabric
	// and a sweep fabric with equal keys are behaviorally identical.
	t, err := cc.topology(s.topologyCacheKey(o.Seed), func() (*topo.Topology, error) {
		return BuildTopology(s, o.Seed)
	})
	if err != nil {
		return CellResult{}, err
	}
	fab, err := cc.fabric(s.FabricKey(o.Seed), func() (*core.Fabric, error) {
		return BuildFabricOn(s, t, o.Seed, o.Obs)
	})
	if err != nil {
		return CellResult{}, err
	}
	pat, err := s.Pattern.build(t, seedFor(runSeed, "pattern|"+s.Topology.key()+"|"+s.Pattern.key()))
	if err != nil {
		return CellResult{}, err
	}
	if err := pat.ValidateFlows(); err != nil {
		return CellResult{}, fmt.Errorf("scenario: compiled pattern invalid: %w", err)
	}

	cfg, err := simConfig(s)
	if err != nil {
		return CellResult{}, err
	}
	if traced {
		cfg.Tracer = o.Tracer
	}
	// Shards is an execution knob: it shapes how the event loop runs, never
	// what it computes, so it stays out of the cache keys and seeds above.
	cfg.Shards = s.Shards
	if cfg.Shards == 0 {
		cfg.Shards = o.Shards
	}
	horizon := netsim.Time(s.horizonMs() * 1e6)
	workloadSeed := seedFor(runSeed, "workload|"+s.workloadKey())
	failSeed := seedFor(runSeed, "fail|"+s.Topology.key()+"|"+AxisValueMust(s, "failFrac"))
	nFail := int(s.FailFrac * float64(t.G.M()))
	sizeOf := s.FlowSize.sampler()

	res := CellResult{
		Spec: s, TopoName: t.Name, TopoN: t.N(),
		Layers: fab.Cfg.NumLayers, Rho: fab.Cfg.Rho, FailedLinks: nFail,
	}
	var thr, fct stats.Sample
	done := 0
	for rep := 0; rep < s.replicas(); rep++ {
		sim := fab.NewSimulation(cfg)
		if nFail > 0 {
			//det:allow seedfold -- rep is the replicate number, a stable coordinate of the resource key (folded over failSeed), not an enumeration index
			sim.Net.FailRandomLinks(nFail, graph.NewRand(exec.FoldSeed(failSeed, uint64(rep))))
		}
		// Flow starts and sizes replay core.RunWorkload's drawing order so a
		// scenario cell and a hand-rolled workload at the same seed agree.
		//det:allow seedfold -- rep is the replicate number, a stable coordinate of the resource key (folded over workloadSeed), not an enumeration index
		rng := graph.NewRand(exec.FoldSeed(workloadSeed, uint64(rep)))
		for _, fl := range pat.Flows {
			var start netsim.Time
			if s.Load > 0 {
				start = netsim.Time(traffic.ExpInterarrival(rng, s.Load) * 1e9)
			}
			sim.AddFlow(netsim.FlowSpec{Src: fl.Src, Dst: fl.Dst, Bytes: sizeOf(rng), Start: start})
		}
		frs := sim.Run(horizon)
		res.Flows += len(frs)
		for _, fr := range frs {
			if fr.Done {
				done++
				thr.Add(fr.ThroughputMiBs())
				fct.Add(fr.FCT().Seconds() * 1e3)
			}
		}
		res.Drops += sim.Net.TotalDrops()
		res.Trims += sim.Net.TotalTrims()
	}
	if res.Flows > 0 {
		res.Completed = float64(done) / float64(res.Flows)
	}
	res.Throughput = thr.Summarize()
	res.FCT = fct.Summarize()
	if s.MAT {
		mat, err := fab.MAT(pat, 0.12)
		if err != nil {
			return CellResult{}, fmt.Errorf("scenario: MAT: %w", err)
		}
		res.MAT = mat
	}
	return res, nil
}

// AxisValueMust is AxisValue for axes known statically valid.
func AxisValueMust(s Spec, axis string) string {
	v, err := AxisValue(s, axis)
	if err != nil {
		panic(err)
	}
	return v
}

// acquireCell produces one cell's result from, in order of preference,
// the resume set (recorded by a previous run's journal), the
// content-addressed cache, or a fresh simulation. It returns the
// telemetry source tag: "resume", "cache", or "" for a simulated cell.
// Resumed cells are not re-journaled (their record is already in the
// journal being appended to); cache hits and fresh results are, so a
// later resume can skip them. A cache write failure downgrades the run to
// uncached (with a stderr warning) rather than aborting it; a journal
// write failure aborts — the caller asked for durability.
func acquireCell(s Spec, i int, cc *caches, o RunOptions, cache *Cache, sm *obs.ScenarioMetrics) (CellResult, string, error) {
	if r, ok := o.Resume[s.CacheIdentity(o.Seed)]; ok {
		if sm != nil {
			sm.CellsResumed.Inc()
		}
		r.Spec = s
		return r, "resume", nil
	}
	if r, n, ok := cache.Get(s, o.Seed); ok {
		if sm != nil {
			sm.CacheHits.Inc()
			sm.CacheBytesRead.Add(int64(n))
		}
		if err := o.Journal.Record(s, o.Seed, r); err != nil {
			return CellResult{}, "", err
		}
		return r, "cache", nil
	}
	r, err := runCell(s, cc, o, i == 0)
	if err != nil {
		return CellResult{}, "", err
	}
	if cache != nil {
		if sm != nil {
			sm.CacheMisses.Inc()
		}
		if n, err := cache.Put(s, o.Seed, r); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: cache write failed (continuing uncached): %v\n", err)
		} else if sm != nil {
			sm.CacheBytesWritten.Add(int64(n))
		}
	}
	if err := o.Journal.Record(s, o.Seed, r); err != nil {
		return CellResult{}, "", err
	}
	return r, "", nil
}

// RunSpecs executes concrete cells over the parallel runtime and returns
// their results in cell order. Output is byte-identical for every
// Parallelism value: each cell's randomness derives from (seed, canonical
// resource keys) alone, and shared fabrics are pure functions of their
// keys. The same guarantee extends to the durable runtime — a cell
// satisfied from the resume set or the result cache is byte-identical to
// a freshly simulated one (replay equals rerun).
func RunSpecs(cells []Spec, o RunOptions) ([]CellResult, error) {
	var cache *Cache
	if o.CacheDir != "" {
		var err error
		if cache, err = OpenCache(o.CacheDir); err != nil {
			return nil, err
		}
	}
	sm := obs.NewScenarioMetrics(o.Obs)
	cc := newCaches()
	var mu sync.Mutex
	done := 0
	//det:allow globalrand -- wall-clock telemetry (run/cell timings) is observational and never feeds table output
	start := time.Now()
	var busy time.Duration
	o.Telemetry.Emit(obs.RunStart{
		Type: "run_start", Name: o.Name, Cells: len(cells),
		Workers: o.workers(), Seed: o.Seed, UnixMs: obs.UnixMs(),
	})
	results, err := exec.ParallelMapLabeled(o.workers(), len(cells),
		func(i int) string { return cells[i].Key() },
		func(i int) (CellResult, error) {
			//det:allow globalrand -- wall-clock telemetry (per-cell timings) is observational and never feeds table output
			cellStart := time.Now()
			r, source, err := acquireCell(cells[i], i, cc, o, cache, sm)
			//det:allow globalrand -- wall-clock telemetry (per-cell timings) is observational and never feeds table output
			wall := time.Since(cellStart)
			if o.Telemetry != nil {
				rec := obs.CellRecord{
					Type: "cell", Name: o.Name, Index: i, Key: cells[i].Key(),
					WallMs:        wall.Seconds() * 1e3,
					StartOffsetMs: cellStart.Sub(start).Seconds() * 1e3,
					Source:        source,
				}
				if err != nil {
					rec.Err = err.Error()
				}
				o.Telemetry.Emit(rec)
			}
			if err != nil {
				return CellResult{}, fmt.Errorf("cell %d (%s): %w", i, cells[i].Key(), err)
			}
			mu.Lock()
			busy += wall
			done++
			if o.Progress != nil {
				o.Progress(done, len(cells))
			}
			mu.Unlock()
			return r, nil
		})
	//det:allow globalrand -- wall-clock telemetry (worker utilization) is observational and never feeds table output
	elapsed := time.Since(start)
	util := 0.0
	if elapsed > 0 {
		util = busy.Seconds() / (elapsed.Seconds() * float64(o.workers()))
	}
	o.Telemetry.Emit(obs.RunEnd{
		Type: "run_end", Name: o.Name, Cells: len(cells),
		WallMs: elapsed.Seconds() * 1e3, WorkerUtil: util, UnixMs: obs.UnixMs(),
	})
	return results, err
}

// Run expands the matrix and executes every cell.
func Run(m *Matrix, o RunOptions) ([]CellResult, error) {
	cells, _, err := m.Expand()
	if err != nil {
		return nil, err
	}
	return RunSpecs(cells, o)
}

// Table renders results as the canonical scenario table. A MAT column
// appears iff any cell requested it.
func Table(title string, results []CellResult) *stats.Table {
	withMAT := false
	for _, r := range results {
		if r.Spec.MAT {
			withMAT = true
			break
		}
	}
	tab := &stats.Table{
		Title: title,
		Headers: []string{
			"topology", "N", "n", "rho", "constr", "routing", "transport",
			"pattern", "size", "load", "fail", "flows", "completed",
			"thr MiB/s", "thr p1", "FCT ms", "FCT p50", "FCT p99",
			"drops", "trims",
		},
	}
	if withMAT {
		tab.Headers = append(tab.Headers, "MAT")
	}
	for _, r := range results {
		row := []interface{}{
			r.TopoName, r.TopoN, r.Layers, r.Rho, r.Spec.construction(),
			r.Spec.routing(), r.Spec.transport(), r.Spec.Pattern.label(),
			r.Spec.FlowSize.label(), r.Spec.Load, r.Spec.FailFrac, r.Flows,
			fmt.Sprintf("%.1f%%", 100*r.Completed),
			r.Throughput.Mean, r.Throughput.P01,
			r.FCT.Mean, r.FCT.P50, r.FCT.P99, r.Drops, r.Trims,
		}
		if withMAT {
			row = append(row, r.MAT)
		}
		tab.AddRowf(row...)
	}
	return tab
}
