package scenario

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// newTestJournal creates a journal for cells at seed in a temp dir and
// returns it with its path.
func newTestJournal(t *testing.T, cells []Spec, seed int64) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, JournalHeader{
		Name: "test", Seed: seed, SpecHash: SpecHash(cells, seed), Cells: len(cells),
	})
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

// TestJournalRoundTrip: records written through the journal read back
// with an intact header, no duplicates, and a full resume set.
func TestJournalRoundTrip(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	j, path := newTestJournal(t, cells, 7)
	for i := range cells {
		if err := j.Record(cells[i], 7, CellResult{Spec: cells[i], Flows: 10 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Header.Type != "run_header" || st.Header.Seed != 7 || st.Header.Cells != len(cells) ||
		st.Header.Fingerprint != EngineFingerprint {
		t.Fatalf("bad header: %+v", st.Header)
	}
	if len(st.Done) != len(cells) || st.Duplicates != 0 || st.Torn {
		t.Fatalf("bad state: done=%d dup=%d torn=%v", len(st.Done), st.Duplicates, st.Torn)
	}
	resume, warnings, err := st.Match(cells, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if len(resume) != len(cells) {
		t.Fatalf("resume set has %d cells, want %d", len(resume), len(cells))
	}
	for i := range cells {
		r, ok := resume[cells[i].CacheIdentity(7)]
		if !ok || r.Flows != 10+i {
			t.Fatalf("cell %d: resumed %+v, ok=%v", i, r, ok)
		}
	}
}

// TestJournalTornFinalLine: an interrupted final write is tolerated on
// read and truncated away by AppendJournal, after which appends continue
// cleanly.
func TestJournalTornFinalLine(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	j, path := newTestJournal(t, cells, 7)
	if err := j.Record(cells[0], 7, CellResult{Spec: cells[0], Flows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a record fragment with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"cell_done","identity":"v1|torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn journal must still read: %v", err)
	}
	if !st.Torn || len(st.Done) != 1 {
		t.Fatalf("torn=%v done=%d, want torn with 1 intact record", st.Torn, len(st.Done))
	}

	j2, err := AppendJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record(cells[1], 7, CellResult{Spec: cells[1], Flows: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn || len(st.Done) != 2 {
		t.Fatalf("after repair+append: torn=%v done=%d, want clean with 2 records", st.Torn, len(st.Done))
	}
}

// TestJournalDuplicates: re-recorded cells are counted and dropped,
// first record wins.
func TestJournalDuplicates(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	j, path := newTestJournal(t, cells, 7)
	if err := j.Record(cells[0], 7, CellResult{Spec: cells[0], Flows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(cells[0], 7, CellResult{Spec: cells[0], Flows: 999}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 || len(st.Done) != 1 {
		t.Fatalf("dup=%d done=%d, want 1/1", st.Duplicates, len(st.Done))
	}
	if r := st.Done[cells[0].CacheIdentity(7)].Result; r.Flows != 1 {
		t.Fatalf("duplicate overwrote the first record: Flows=%d", r.Flows)
	}
}

// TestJournalUnknownCellsWarn: records no expanded cell matches (a
// hand-edited or concatenated journal) warn and are ignored, and the
// warnings arrive sorted regardless of record order.
func TestJournalUnknownCellsWarn(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	sub := cells[:2]
	j, path := newTestJournal(t, sub, 7)
	// Record the two known cells plus two strangers, strangers first.
	strangerB := cacheSpec()
	strangerB.Load = 0.9
	strangerA := cacheSpec()
	strangerA.Load = 0.8
	for _, s := range []Spec{strangerB, strangerA, sub[0], sub[1]} {
		if err := j.Record(s, 7, CellResult{Spec: s, Flows: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The header's SpecHash covers sub, so Match(sub) proceeds and the
	// strangers surface as warnings.
	st, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	resume, warnings, err := st.Match(sub, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != 2 {
		t.Fatalf("resume set has %d cells, want 2", len(resume))
	}
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings, want 2: %v", len(warnings), warnings)
	}
	for _, w := range warnings {
		if !strings.Contains(w, "absent from the expanded matrix") {
			t.Fatalf("warning lacks explanation: %q", w)
		}
	}
	if !sort.StringsAreSorted(warnings) {
		t.Fatalf("warnings not sorted: %v", warnings)
	}
}

// TestJournalMismatchErrors: resuming under a different seed, spec, or
// engine fingerprint is an error with an actionable message.
func TestJournalMismatchErrors(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	j, path := newTestJournal(t, cells, 7)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := st.Match(cells, 8); err == nil || !strings.Contains(err.Error(), "seed 7") {
		t.Fatalf("seed mismatch: %v", err)
	}
	edited := cells[:3]
	if _, _, err := st.Match(edited, 7); err == nil || !strings.Contains(err.Error(), "spec hash") {
		t.Fatalf("spec mismatch: %v", err)
	}
	stale := *st
	stale.Header.Fingerprint = "fatpaths-engine-v0"
	if _, _, err := stale.Match(cells, 7); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
}

// TestJournalCorruptInteriorLine: interior corruption is not a torn
// write — the reader refuses the file, naming the line.
func TestJournalCorruptInteriorLine(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	j, path := newTestJournal(t, cells, 7)
	for i := range cells {
		if err := j.Record(cells[i], 7, CellResult{Spec: cells[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(b), "\n")
	lines[2] = `{"type":"cell_done","identity":` // corrupt a middle record
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("interior corruption must fail naming the line, got: %v", err)
	}
}

// TestKillResumeEqualsUninterrupted is the tentpole's correctness pin:
// a run killed after K cells and resumed from its journal renders the
// exact table of an uninterrupted run, re-simulating only the missing
// cells.
func TestKillResumeEqualsUninterrupted(t *testing.T) {
	cells, _, err := tinyMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := RunSpecs(cells, RunOptions{Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	const k = 2
	// "Crash" after k cells: run only a prefix against a journal whose
	// header pins the full matrix (what a killed cmd/scenarios leaves
	// behind).
	j, path := newTestJournal(t, cells, 7)
	if _, err := RunSpecs(cells[:k], RunOptions{Seed: 7, Parallelism: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	crashed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Optionally tear the final record mid-line, as a real crash can.
	// Each case resumes from its own copy of the crashed journal.
	for _, torn := range []bool{false, true} {
		b := crashed
		if torn {
			b = b[:len(b)-7]
		}
		jpath := filepath.Join(t.TempDir(), "crash.journal")
		if err := os.WriteFile(jpath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := ReadJournal(jpath)
		if err != nil {
			t.Fatal(err)
		}
		if torn != st.Torn {
			t.Fatalf("torn=%v, want %v", st.Torn, torn)
		}
		resume, warnings, err := st.Match(cells, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(warnings) != 0 {
			t.Fatalf("unexpected warnings: %v", warnings)
		}
		wantDone := k
		if torn {
			wantDone = k - 1
		}
		if len(resume) != wantDone {
			t.Fatalf("resume set has %d cells, want %d", len(resume), wantDone)
		}

		j2, err := AppendJournal(jpath)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		resumed, err := RunSpecs(cells, RunOptions{
			Seed: 7, Parallelism: 2, Journal: j2, Resume: resume, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if got, want := Table("t", resumed).String(), Table("t", uninterrupted).String(); got != want {
			t.Fatalf("torn=%v: resumed table differs from uninterrupted:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", torn, got, want)
		}
		if n := reg.Snapshot()[obs.MetricScenarioCellsResumed]; n != int64(wantDone) {
			t.Fatalf("torn=%v: resumed %d cells, want %d", torn, n, wantDone)
		}

		// The completed journal now covers the whole matrix with no
		// duplicate records (resumed cells are not re-journaled).
		final, err := ReadJournal(jpath)
		if err != nil {
			t.Fatal(err)
		}
		if len(final.Done) != len(cells) || final.Duplicates != 0 {
			t.Fatalf("torn=%v: final journal done=%d dup=%d, want %d/0",
				torn, len(final.Done), final.Duplicates, len(cells))
		}
	}
}
