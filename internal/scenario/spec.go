// Package scenario is the declarative workload layer of the evaluation
// harness. A Spec names one simulated cell of the paper's cross-product —
// topology × routing layers × routing scheme × transport × traffic pattern
// × flow-size distribution × load level × failure model — and a Matrix
// sweeps lists per axis (with skip constraints) into concrete cells. Cells
// run over the parallel experiment runtime (internal/exec) with the
// established seed-folding discipline: every random choice derives from a
// seed folded out of the run seed and the canonical key of the resource it
// belongs to, so results are byte-identical for any worker count, any cell
// order, and any matrix slicing. Cells that agree on the workload-defining
// axes (topology, pattern, flow size, load) automatically face the
// identical workload, the discipline the paper's sweep figures rely on.
//
// Specs round-trip through JSON; cmd/scenarios runs spec files from disk
// (examples under examples/scenarios/), and the migrated experiment
// runners (fig2, fig11, fig13, abl-*) are thin matrices over this package.
package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Topology selects a topology family, either at a named size class
// ("small", "medium" — the classes of topo.BuildSuite) or at an explicit
// family-specific size parameter.
type Topology struct {
	// Kind is the family tag: SF, DF, HX, XP, FT3 (alias FT), JF, Clique,
	// Star.
	Kind string `json:"kind"`
	// Class selects a topo.SizeClass when Param is 0: "small" (default) or
	// "medium".
	Class string `json:"class,omitempty"`
	// Param, when positive, sizes the family directly instead of Class:
	// SF/JF q, DF p, HX S, XP k', FT3 m, Clique k', Star n.
	Param int `json:"param,omitempty"`
	// Param2 is the secondary parameter used with Param: SF p (0 = paper
	// default), HX L (0 = 3), XP lift (0 = Param), FT3 o (0 = 2),
	// Clique p (0 = k').
	Param2 int `json:"param2,omitempty"`
}

// key is the canonical identity of the topology spec; equal keys mean
// identical built topologies at a fixed run seed.
func (ts Topology) key() string {
	return fmt.Sprintf("%s/%s/%d/%d", ts.Kind, ts.class(), ts.Param, ts.Param2)
}

func (ts Topology) class() string {
	if ts.Class == "" {
		return "small"
	}
	return ts.Class
}

func (ts Topology) sizeClass() (topo.SizeClass, error) {
	switch ts.class() {
	case "small":
		return topo.Small, nil
	case "medium":
		return topo.Medium, nil
	}
	return 0, fmt.Errorf("scenario: unknown topology class %q (want small or medium)", ts.Class)
}

func (ts Topology) validate() error {
	switch ts.Kind {
	case "SF", "DF", "HX", "XP", "FT3", "FT", "JF", "Clique", "Star":
	default:
		return fmt.Errorf("scenario: unknown topology kind %q", ts.Kind)
	}
	if _, err := ts.sizeClass(); err != nil {
		return err
	}
	if ts.Param < 0 || ts.Param2 < 0 {
		return fmt.Errorf("scenario: topology %s: negative size parameter", ts.Kind)
	}
	return nil
}

// build constructs the topology. All randomness (XP lifts, JF wiring)
// derives from seed, so equal specs build identical topologies.
func (ts Topology) build(seed int64) (*topo.Topology, error) {
	rng := rand.New(rand.NewSource(seed))
	if ts.Param == 0 {
		class, err := ts.sizeClass()
		if err != nil {
			return nil, err
		}
		return topo.ByName(ts.Kind, class, rng)
	}
	switch ts.Kind {
	case "SF":
		return topo.SlimFly(ts.Param, ts.Param2)
	case "JF":
		sf, err := topo.SlimFly(ts.Param, ts.Param2)
		if err != nil {
			return nil, err
		}
		return topo.EquivalentJellyfish(sf, rng)
	case "DF":
		return topo.Dragonfly(ts.Param)
	case "HX":
		l := ts.Param2
		if l == 0 {
			l = 3
		}
		return topo.HyperX(l, ts.Param, 0)
	case "XP":
		lift := ts.Param2
		if lift == 0 {
			lift = ts.Param
		}
		return topo.Xpander(ts.Param, lift, 0, rng)
	case "FT3", "FT":
		o := ts.Param2
		if o == 0 {
			o = 2
		}
		return topo.FatTree3(ts.Param, o)
	case "Clique":
		return topo.Complete(ts.Param, ts.Param2)
	case "Star":
		return topo.Star(ts.Param)
	}
	return nil, fmt.Errorf("scenario: unknown topology kind %q", ts.Kind)
}

// Pattern selects a traffic pattern from internal/traffic.
type Pattern struct {
	// Kind: uniform, permutation, k-permutations, off-diagonal, shuffle,
	// stencil, adversarial, worst-case.
	Kind string `json:"kind"`
	// Offset parametrizes off-diagonal (required non-zero there).
	Offset int `json:"offset,omitempty"`
	// K parametrizes k-permutations (0 = 4, the paper's oversubscribed
	// default).
	K int `json:"k,omitempty"`
	// Intensity is the worst-case pattern's traffic intensity (0 = 0.55,
	// §VI-C) or, for other kinds, an optional thinning fraction in (0,1).
	Intensity float64 `json:"intensity,omitempty"`
	// Randomize applies the §III-D randomized workload mapping on top.
	Randomize bool `json:"randomize,omitempty"`
}

func (ps Pattern) key() string {
	return fmt.Sprintf("%s/%d/%d/%s/%t", ps.Kind, ps.Offset, ps.K,
		strconv.FormatFloat(ps.Intensity, 'g', -1, 64), ps.Randomize)
}

// label is the short human form used in tables and constraint matching.
func (ps Pattern) label() string {
	l := ps.Kind
	if ps.Randomize {
		l += "+rand"
	}
	return l
}

func (ps Pattern) validate() error {
	switch ps.Kind {
	case "uniform", "permutation", "k-permutations", "shuffle", "stencil",
		"adversarial", "worst-case":
	case "off-diagonal":
		if ps.Offset == 0 {
			return fmt.Errorf("scenario: off-diagonal pattern needs a non-zero offset")
		}
	default:
		return fmt.Errorf("scenario: unknown pattern kind %q", ps.Kind)
	}
	if ps.Intensity < 0 || ps.Intensity > 1 {
		return fmt.Errorf("scenario: pattern intensity %g outside [0,1]", ps.Intensity)
	}
	if ps.K < 0 {
		return fmt.Errorf("scenario: negative permutation count k=%d", ps.K)
	}
	return nil
}

// build generates the pattern for a topology. All randomness derives from
// seed: cells agreeing on (topology, pattern) receive identical flows.
func (ps Pattern) build(t *topo.Topology, seed int64) (traffic.Pattern, error) {
	rng := rand.New(rand.NewSource(seed))
	var pat traffic.Pattern
	switch ps.Kind {
	case "uniform":
		pat = traffic.RandomUniform(rng, t.N())
	case "permutation":
		pat = traffic.RandomPermutation(rng, t.N())
	case "k-permutations":
		k := ps.K
		if k == 0 {
			k = 4
		}
		pat = traffic.KRandomPermutations(rng, t.N(), k)
	case "off-diagonal":
		pat = traffic.OffDiagonal(t.N(), ps.Offset)
	case "shuffle":
		pat = traffic.Shuffle(t.N())
	case "stencil":
		pat = traffic.DefaultStencil(t.N())
	case "adversarial":
		pat = traffic.AdversarialOffDiagonal(t)
	case "worst-case":
		intensity := ps.Intensity
		if intensity == 0 {
			intensity = 0.55
		}
		return finishPattern(traffic.WorstCase(t, intensity, rng), ps, rng), nil
	default:
		return traffic.Pattern{}, fmt.Errorf("scenario: unknown pattern kind %q", ps.Kind)
	}
	if ps.Intensity > 0 && ps.Intensity < 1 {
		pat = traffic.Intensity(pat, ps.Intensity, rng)
	}
	return finishPattern(pat, ps, rng), nil
}

func finishPattern(pat traffic.Pattern, ps Pattern, rng *rand.Rand) traffic.Pattern {
	if ps.Randomize {
		pat = traffic.RandomizeMapping(pat, rng)
	}
	return pat
}

// FlowSize selects the flow-size distribution.
type FlowSize struct {
	// Kind: "fixed" (default) or "pfabric" (the §VII-A4 web-search
	// distribution).
	Kind string `json:"kind,omitempty"`
	// Bytes is the fixed flow size (default 1 MiB).
	Bytes int64 `json:"bytes,omitempty"`
}

func (fs FlowSize) key() string { return fs.label() }

func (fs FlowSize) label() string {
	if fs.Kind == "pfabric" {
		return "pfabric"
	}
	return strconv.FormatInt(fs.bytes(), 10)
}

func (fs FlowSize) bytes() int64 {
	if fs.Bytes == 0 {
		return 1 << 20
	}
	return fs.Bytes
}

func (fs FlowSize) validate() error {
	switch fs.Kind {
	case "", "fixed", "pfabric":
	default:
		return fmt.Errorf("scenario: unknown flow-size kind %q", fs.Kind)
	}
	if fs.Bytes < 0 {
		return fmt.Errorf("scenario: negative flow size %d", fs.Bytes)
	}
	return nil
}

// sampler returns the per-flow size function.
func (fs FlowSize) sampler() func(*rand.Rand) int64 {
	if fs.Kind == "pfabric" {
		return traffic.PFabricFlowSize
	}
	return traffic.FixedSize(fs.bytes())
}

// Spec is one concrete scenario cell: everything a simulation needs.
// The zero value of each optional field selects the documented default, so
// sparse JSON specs stay readable.
type Spec struct {
	// Name optionally labels the cell (matrices usually leave it empty).
	Name     string   `json:"name,omitempty"`
	Topology Topology `json:"topology"`
	// Layers is the routing layer count n (0 = the topology's
	// core.DefaultConfig recommendation).
	Layers int `json:"layers,omitempty"`
	// Rho is the layer sparsity ρ (0 = the topology default).
	Rho float64 `json:"rho,omitempty"`
	// Construction selects the layer-construction scheme: random (default),
	// min-interference, spain, past.
	Construction string `json:"construction,omitempty"`
	// Routing is the load-balancing scheme: fatpaths (default), ecmp,
	// letflow, minimal, spray.
	Routing string `json:"routing,omitempty"`
	// Transport: ndp (default), tcp, dctcp, mptcp.
	Transport string   `json:"transport,omitempty"`
	Pattern   Pattern  `json:"pattern"`
	FlowSize  FlowSize `json:"flowSize,omitempty"`
	// Load is the Poisson flow arrival rate λ in flows/s (0 = synchronized
	// start at t=0).
	Load float64 `json:"load,omitempty"`
	// FailFrac fails this fraction of router-router links before the run.
	FailFrac float64 `json:"failFrac,omitempty"`
	// Replicas repeats the simulation with re-folded workload seeds and
	// aggregates flow results (0 = 1).
	Replicas int `json:"replicas,omitempty"`
	// HorizonMs is the simulated horizon in milliseconds (0 = 8000).
	HorizonMs float64 `json:"horizonMs,omitempty"`
	// Seed overrides the run seed for this cell when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// MAT additionally computes the maximum achievable throughput of the
	// compiled (fabric, pattern) cell (the §VI layered LP, eps 0.12).
	MAT bool `json:"mat,omitempty"`
	// Shards is the per-simulation event-loop shard count
	// (netsim.Config.Shards). Execution knob, NOT a model parameter: results
	// are byte-identical at every value, so it is deliberately excluded from
	// the canonical cell Key and every derived resource seed. 0 defers to
	// RunOptions.Shards.
	Shards int `json:"shards,omitempty"`
}

// Scheme name tables. The zero value of each field is the first entry.
var (
	constructions = map[string]core.LayerScheme{
		"":                 core.RandomSampling,
		"random":           core.RandomSampling,
		"min-interference": core.MinInterference,
		"spain":            core.SPAINScheme,
		"past":             core.PASTScheme,
	}
	transports = []string{"", "ndp", "tcp", "dctcp", "mptcp"}
	routings   = []string{"", "fatpaths", "ecmp", "letflow", "minimal", "spray"}
)

func (s Spec) construction() string {
	if s.Construction == "" {
		return "random"
	}
	return s.Construction
}

func (s Spec) transport() string {
	if s.Transport == "" {
		return "ndp"
	}
	return s.Transport
}

func (s Spec) routing() string {
	if s.Routing == "" {
		return "fatpaths"
	}
	return s.Routing
}

func (s Spec) replicas() int {
	if s.Replicas < 1 {
		return 1
	}
	return s.Replicas
}

func (s Spec) horizonMs() float64 {
	if s.HorizonMs == 0 {
		return 8000
	}
	return s.HorizonMs
}

// Validate checks every enum and range of the spec.
func (s Spec) Validate() error {
	if err := s.Topology.validate(); err != nil {
		return err
	}
	if err := s.Pattern.validate(); err != nil {
		return err
	}
	if err := s.FlowSize.validate(); err != nil {
		return err
	}
	if _, ok := constructions[s.Construction]; !ok {
		return fmt.Errorf("scenario: unknown construction %q", s.Construction)
	}
	if !contains(transports, s.Transport) {
		return fmt.Errorf("scenario: unknown transport %q", s.Transport)
	}
	if !contains(routings, s.Routing) {
		return fmt.Errorf("scenario: unknown routing %q", s.Routing)
	}
	if s.Layers < 0 {
		return fmt.Errorf("scenario: negative layer count %d", s.Layers)
	}
	if s.Rho < 0 || s.Rho > 1 {
		return fmt.Errorf("scenario: rho %g outside [0,1]", s.Rho)
	}
	if s.Load < 0 {
		return fmt.Errorf("scenario: negative load %g", s.Load)
	}
	if s.FailFrac < 0 || s.FailFrac >= 1 {
		return fmt.Errorf("scenario: failFrac %g outside [0,1)", s.FailFrac)
	}
	if s.HorizonMs < 0 {
		return fmt.Errorf("scenario: negative horizon %g", s.HorizonMs)
	}
	if s.Replicas < 0 {
		return fmt.Errorf("scenario: negative replica count %d", s.Replicas)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario: negative shard count %d", s.Shards)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Key renders the cell's canonical identity — every axis as axis=value in
// canonical axis order. It names cells in -cells listings, telemetry
// records, and worker-panic attribution.
func (s Spec) Key() string {
	var parts []string
	for _, axis := range AxisNames() {
		parts = append(parts, axis+"="+AxisValueMust(s, axis))
	}
	return strings.Join(parts, " ")
}

// effectiveSeed resolves the seed the cell actually runs at: its own
// Spec.Seed when non-zero, else the run seed.
func (s Spec) effectiveSeed(runSeed int64) int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return runSeed
}

// CacheIdentity renders the cell's full canonical identity for the durable
// runtime (result cache and run journal): every result-affecting field in
// canonical form plus the effective seed, and nothing else. Name (a label)
// and Shards (an execution knob — results are byte-identical at every
// value) are deliberately excluded, so renaming a cell or re-sharding its
// event loop still hits the cache. The determinism contract makes equal
// identities provably equal results: every random draw of a cell derives
// from (effective seed, canonical resource keys) alone.
//
// The leading "v1" versions the identity schema itself; bump it if fields
// are added or renderings change. The engine fingerprint is layered on top
// by CacheKey, not here, so journals can detect fingerprint drift
// separately from spec edits.
func (s Spec) CacheIdentity(runSeed int64) string {
	return strings.Join([]string{
		"v1",
		"topo=" + s.Topology.key(),
		"pattern=" + s.Pattern.key(),
		"routing=" + s.routing(),
		"transport=" + s.transport(),
		"layers=" + strconv.Itoa(s.Layers),
		"rho=" + strconv.FormatFloat(s.Rho, 'g', -1, 64),
		"construction=" + s.construction(),
		"flowSize=" + s.FlowSize.key(),
		"load=" + strconv.FormatFloat(s.Load, 'g', -1, 64),
		"failFrac=" + strconv.FormatFloat(s.FailFrac, 'g', -1, 64),
		"replicas=" + strconv.Itoa(s.replicas()),
		"horizonMs=" + strconv.FormatFloat(s.horizonMs(), 'g', -1, 64),
		"mat=" + strconv.FormatBool(s.MAT),
		"seed=" + strconv.FormatInt(s.effectiveSeed(runSeed), 10),
	}, "|")
}

// workloadKey identifies the workload-defining axes: cells with equal
// workload keys face the identical flows, sizes, and arrival times.
func (s Spec) workloadKey() string {
	return strings.Join([]string{
		s.Topology.key(), s.Pattern.key(), s.FlowSize.key(),
		strconv.FormatFloat(s.Load, 'g', -1, 64),
	}, "|")
}

// routingKey identifies the fabric-defining axes: cells with equal routing
// keys share one built fabric (and its lazily materialized tables).
func (s Spec) routingKey() string {
	return strings.Join([]string{
		s.Topology.key(), strconv.Itoa(s.Layers),
		strconv.FormatFloat(s.Rho, 'g', -1, 64), s.construction(),
	}, "|")
}
