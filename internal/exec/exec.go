// Package exec is the parallel experiment-execution runtime: a worker-pool
// ParallelMap plus deterministic seed-splitting. The experiments layer
// decomposes every figure and table into independent cells (one
// topology/routing/transport/seed combination each), fans them out here,
// and merges results in canonical cell order. Because each cell derives all
// of its randomness from FoldSeed(baseSeed, cellIndex) alone, results are
// byte-identical regardless of worker count or scheduling order.
package exec

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// FoldSeed derives an independent per-cell seed from a base seed and a cell
// index using the SplitMix64 generator: the returned value is the
// (cell+1)-th output of the SplitMix64 stream seeded with seed. Distinct
// cells therefore receive statistically independent seeds, and the mapping
// is a pure function — no shared state, safe from any goroutine.
//
// Callers that need seeds for resources shared by several cells (rather
// than per-cell seeds) should partition the index space, e.g. by reserving
// indices >= 1<<32 for shared tags.
func FoldSeed(seed int64, cell uint64) int64 {
	z := uint64(seed) + (cell+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// ParallelMap runs fn(i) for every i in [0, n) on up to `workers`
// goroutines and returns the results in index order. workers <= 1 (or
// n <= 1) degrades to a plain sequential loop. Since out[i] depends only on
// fn(i), the returned slice is identical for every worker count provided fn
// is a pure function of its index.
//
// On error the pool stops claiming new indices and ParallelMap returns the
// error from the lowest-indexed cell observed to fail (with concurrent
// failures, which cells ran at all may vary, but experiment cells fail
// deterministically in practice).
func ParallelMap[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	worker := func() {
		defer wg.Done()
		for !failed.Load() {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			v, err := fn(i)
			if err != nil {
				mu.Lock()
				if errIdx < 0 || i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstErr
	}
	return out, nil
}

// WorkerPanic wraps a panic escaping a ParallelMapLabeled worker so the
// crash names the cell that raised it — index, canonical resource key, the
// original panic value, and the stack at the panic site. Without it a
// worker-pool panic surfaces as a bare runtime stack with no indication of
// WHICH of the hundreds of interchangeable cells was responsible.
type WorkerPanic struct {
	Index int
	Label string
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("exec: panic in worker cell %d (%s): %v\n%s", p.Index, p.Label, p.Value, p.Stack)
}

// ParallelMapLabeled is ParallelMap with panic attribution: a panic inside
// fn(i) is recovered on the worker, wrapped as a *WorkerPanic carrying
// label(i), and re-raised on the CALLING goroutine once the pool has
// drained — a panic on a pool goroutine would crash the process before any
// caller could recover it. Already-wrapped panics (nested pools) pass
// through untouched. label may be nil.
func ParallelMapLabeled[T any](workers, n int, label func(i int) string, fn func(i int) (T, error)) ([]T, error) {
	var (
		once sync.Once
		wp   *WorkerPanic
	)
	out, err := ParallelMap(workers, n, func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				p, ok := r.(*WorkerPanic)
				if !ok {
					l := ""
					if label != nil {
						l = label(i)
					}
					p = &WorkerPanic{Index: i, Label: l, Value: r, Stack: debug.Stack()}
				}
				once.Do(func() { wp = p })
				err = p // stops the pool; superseded by the re-panic below
			}
		}()
		return fn(i)
	})
	if wp != nil {
		panic(wp)
	}
	return out, err
}
