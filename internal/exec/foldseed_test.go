package exec

// Distribution and collision properties of FoldSeed. The determinism
// contract leans on two facts: distinct cells get distinct seeds (the
// SplitMix64 finalizer is a bijection per base seed, so collisions are
// impossible, not just unlikely), and adjacent cells get statistically
// independent seeds (so replicate 7 and replicate 8 do not run
// correlated workloads).

import (
	"math/bits"
	"testing"
)

// TestFoldSeedNoCollisions exercises the bijectivity claim over a large
// contiguous cell range and over scattered ranges at extreme offsets,
// for several base seeds including adversarial ones.
func TestFoldSeedNoCollisions(t *testing.T) {
	// The last entry is the SplitMix64 increment itself reinterpreted as
	// an int64 — an adversarial base seed for the mixer.
	seeds := []int64{0, 1, -1, 42, 1 << 62, -(1 << 62), -7046029254386353131}
	for _, seed := range seeds {
		seen := make(map[int64]uint64, 1<<17)
		check := func(cell uint64) {
			s := FoldSeed(seed, cell)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed %d: cells %d and %d collide on %#x", seed, prev, cell, s)
			}
			seen[s] = cell
		}
		for cell := uint64(0); cell < 1<<16; cell++ {
			check(cell)
		}
		// Scattered high ranges: the shared-tag space (>= 1<<32) must not
		// collide with the dense low cell indices either.
		for _, base := range []uint64{1 << 32, 1 << 48, ^uint64(0) - 1<<12} {
			for off := uint64(0); off < 1<<12; off++ {
				check(base + off)
			}
		}
	}
}

// TestFoldSeedBaseSeedsIndependent checks that two base seeds produce
// disjoint streams over a shared cell range — folding must mix the base
// seed, not just offset by it.
func TestFoldSeedBaseSeedsIndependent(t *testing.T) {
	const n = 1 << 15
	seen := make(map[int64]bool, 2*n)
	for _, seed := range []int64{12345, 12346} {
		for cell := uint64(0); cell < n; cell++ {
			s := FoldSeed(seed, cell)
			if seen[s] {
				t.Fatalf("seed value %#x produced by both base seeds within %d cells", s, n)
			}
			seen[s] = true
		}
	}
}

// TestFoldSeedAvalanche: flipping the cell by one should flip about half
// of the 64 output bits on average (SplitMix64's finalizer avalanche).
// A weak mixer here would correlate adjacent replicates' workloads.
func TestFoldSeedAvalanche(t *testing.T) {
	const n = 1 << 14
	var totalFlips int
	minFlips := 64
	for cell := uint64(0); cell < n; cell++ {
		a := uint64(FoldSeed(7, cell))
		b := uint64(FoldSeed(7, cell+1))
		f := bits.OnesCount64(a ^ b)
		totalFlips += f
		if f < minFlips {
			minFlips = f
		}
	}
	mean := float64(totalFlips) / n
	if mean < 30 || mean > 34 {
		t.Errorf("mean avalanche %.2f bits, want ~32", mean)
	}
	// Even the worst adjacent pair should differ in many bits.
	if minFlips < 10 {
		t.Errorf("weakest adjacent pair differs in only %d bits", minFlips)
	}
}

// TestFoldSeedBitBalance: across many cells, each of the 64 output bit
// positions should be set about half the time.
func TestFoldSeedBitBalance(t *testing.T) {
	const n = 1 << 15
	var ones [64]int
	for cell := uint64(0); cell < n; cell++ {
		s := uint64(FoldSeed(99, cell))
		for b := 0; b < 64; b++ {
			if s&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / n
		// 5-sigma band for a fair coin over n trials (~0.5 ± 0.0138).
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("bit %d set in %.4f of outputs, want ~0.5", b, frac)
		}
	}
}
