package exec

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFoldSeedMatchesSplitMix64(t *testing.T) {
	// FoldSeed(0, c) must be the (c+1)-th output of the reference
	// SplitMix64 stream seeded with 0 (test vector from the generator's
	// reference implementation).
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for c, w := range want {
		if got := uint64(FoldSeed(0, uint64(c))); got != w {
			t.Fatalf("FoldSeed(0,%d) = %#x, want %#x", c, got, w)
		}
	}
}

func TestFoldSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[int64]uint64)
	for c := uint64(0); c < 10000; c++ {
		s := FoldSeed(42, c)
		if s != FoldSeed(42, c) {
			t.Fatalf("FoldSeed not deterministic at cell %d", c)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("FoldSeed collision: cells %d and %d both map to %d", prev, c, s)
		}
		seen[s] = c
	}
	// Nearby base seeds must not produce the same cell streams.
	if FoldSeed(1, 0) == FoldSeed(2, 0) {
		t.Fatal("adjacent base seeds collide at cell 0")
	}
}

func TestParallelMapOrderAndEquivalence(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	serial, err := ParallelMap(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9, 200} {
		par, err := ParallelMap(workers, 100, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestParallelMapEmpty(t *testing.T) {
	out, err := ParallelMap(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestParallelMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := ParallelMap(workers, 50, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want wrapped boom", workers, err)
		}
	}
}

func TestParallelMapRunsConcurrently(t *testing.T) {
	// Cell 0 blocks until cell 1 has run: only a concurrent pool (even on
	// one core, via goroutine scheduling) can finish this.
	release := make(chan struct{})
	_, err := ParallelMap(2, 2, func(i int) (int, error) {
		if i == 0 {
			<-release
		} else {
			close(release)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelMapLabeledPanicAttribution(t *testing.T) {
	// A worker panic must surface as a *WorkerPanic carrying the cell's
	// canonical resource key, its index, and the original panic value, so a
	// crash in a 10k-cell sweep names the cell that died.
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", r, r)
		}
		if wp.Index != 3 {
			t.Errorf("Index = %d, want 3", wp.Index)
		}
		if wp.Label != "topo=SF layers=9 cell 3" {
			t.Errorf("Label = %q", wp.Label)
		}
		if wp.Value != "kaboom" {
			t.Errorf("Value = %v", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Error("Stack is empty")
		}
		for _, part := range []string{"cell 3", "topo=SF layers=9 cell 3", "kaboom"} {
			if !strings.Contains(wp.Error(), part) {
				t.Errorf("Error() = %q missing %q", wp.Error(), part)
			}
		}
	}()
	ParallelMapLabeled(2, 8,
		func(i int) string { return fmt.Sprintf("topo=SF layers=9 cell %d", i) },
		func(i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
	t.Fatal("ParallelMapLabeled returned; want panic")
}

func TestParallelMapLabeledNoDoubleWrap(t *testing.T) {
	// A panic that is already a *WorkerPanic (e.g. from a nested pool)
	// passes through unwrapped so the innermost attribution survives.
	inner := &WorkerPanic{Index: 9, Label: "inner", Value: "x"}
	defer func() {
		if r := recover(); r != inner {
			t.Fatalf("recovered %v, want the inner *WorkerPanic unchanged", r)
		}
	}()
	ParallelMapLabeled(1, 1, nil, func(i int) (int, error) { panic(inner) })
}

func TestParallelMapLabeledNilLabel(t *testing.T) {
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok || wp.Index != 0 {
			t.Fatalf("recovered %v", wp)
		}
	}()
	ParallelMapLabeled(1, 1, nil, func(i int) (int, error) { panic("y") })
}

func TestParallelMapEveryIndexOnce(t *testing.T) {
	var mu sync.Mutex
	counts := make(map[int]int)
	n := 500
	if _, err := ParallelMap(8, n, func(i int) (struct{}, error) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(counts) != n {
		t.Fatalf("ran %d distinct indices, want %d", len(counts), n)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}
