package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShardEquivalence is the experiment-level determinism contract of the
// sharded event loop: a sample of experiment IDs re-run with Options.Shards
// set to 2 and 8 must render byte-identically to the checked-in goldens,
// which are recorded from serial (shards = 1) runs. The sample covers the
// three distinct execution paths: fig2 (scenario-matrix engine), fig12
// (hand-rolled runCells sweep over runSeries), and ext-failures (direct
// NewSimulation with link failures). Combined with TestGolden this proves
// results are invariant in BOTH execution knobs — worker parallelism and
// event-loop shard count.
func TestShardEquivalence(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("sharded re-runs of simulation figures: skipped under -short and -race")
	}
	for _, id := range []string{"fig2", "fig12", "ext-failures"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			for _, shards := range []int{2, 8} {
				tab, err := e.Run(Options{
					Quick: true, Seed: goldenSeed, Parallelism: 4,
					Shards: shards, RunName: id,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := tab.String(); got != string(want) {
					t.Errorf("shards=%d diverged from the serial golden:\n--- got ---\n%s\n--- want ---\n%s",
						shards, got, want)
				}
			}
		})
	}
}
