package experiments

import (
	"sync"
	"testing"
)

// TestParallelSerialEquivalence asserts the tentpole determinism guarantee:
// for a sample of experiments spanning the analytic, diversity, and
// packet-simulation runners, the rendered table at Parallelism 8 is
// byte-identical to Parallelism 1 at the same seed.
func TestParallelSerialEquivalence(t *testing.T) {
	ids := []string{"fig4", "fig6", "fig10", "fig19", "tab5", "ext-tables"}
	if !testing.Short() {
		// Packet-level simulations exercise the shared routing engine's
		// lazily built tables and the packet pool under real concurrency.
		ids = append(ids, "fig13", "fig20", "abl-randomization")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			serialTab, err := e.Run(Options{Quick: true, Seed: 3, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parTab, err := e.Run(Options{Quick: true, Seed: 3, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			serial, par := serialTab.String(), parTab.String()
			if serial != par {
				t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
			}
			if len(serialTab.Rows) == 0 {
				t.Fatal("no rows")
			}
		})
	}
}

// TestProgressReporting checks the per-cell progress callback: it must be
// invoked once per cell with a monotonically increasing done count ending
// at the total.
func TestProgressReporting(t *testing.T) {
	e, err := ByID("fig19")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var dones []int
	total := -1
	opts := Options{Quick: true, Seed: 1, Parallelism: 4, Progress: func(done, tot int) {
		mu.Lock()
		dones = append(dones, done)
		total = tot
		mu.Unlock()
	}}
	tab, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(tab.Rows) {
		t.Fatalf("progress total %d, want %d cells", total, len(tab.Rows))
	}
	if len(dones) != total {
		t.Fatalf("progress called %d times, want %d", len(dones), total)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done[%d]=%d, want %d", i, d, i+1)
		}
	}
}
