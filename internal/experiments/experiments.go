// Package experiments regenerates every table and figure of the FatPaths
// evaluation (§IV, §VI, §VII and Appendix D). Each experiment is a named
// runner producing an aligned text table with the same rows/series the
// paper plots. Runners accept an Options struct controlling scale: Quick
// mode (the default for `go test`) uses the small size class and reduced
// sample counts; cmd/experiments can run the paper-scale variants.
//
// Every runner decomposes into independent cells — one topology / routing /
// transport / seed combination each — fanned out over a worker pool
// (internal/exec) and merged in canonical order. Cells draw all randomness
// from seeds folded out of (Options.Seed, cell index), so a runner's output
// is byte-identical for every Parallelism value.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Options control experiment scale, determinism, and execution.
type Options struct {
	// Quick selects reduced scale (small topologies, fewer samples).
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Parallelism is the number of worker goroutines fanning an
	// experiment's independent cells out over cores. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs serially. Output is byte-identical for
	// every value: cells derive their RNGs from (Seed, cell index) alone
	// and rows merge in canonical cell order.
	Parallelism int
	// Shards is the per-simulation event-loop shard count (see
	// netsim.Config.Shards): cell-level parallelism fans cells over
	// workers, Shards splits each cell's event loop. Like Parallelism it is
	// an execution knob — output is byte-identical for every value. 0 runs
	// each simulation serially.
	Shards int
	// Progress, when non-nil, is called after each completed cell with the
	// number of completed cells and the runner's total. Invocations may
	// originate from worker goroutines but are serialized.
	Progress func(done, total int)
	// RunName labels telemetry records (the experiment ID being run).
	RunName string
	// Obs, when non-nil, instruments the run: fabrics report routing-core
	// telemetry and simulations flush their counters into it. Purely
	// observational — tables are byte-identical with or without it.
	Obs *obs.Registry
	// Telemetry, when non-nil, receives per-cell JSONL wall-time records.
	Telemetry *obs.Telemetry
	// Tracer, when non-nil, is offered to the runner's simulations; the
	// first to acquire it records its event loop (one bounded window per
	// process).
	Tracer *obs.Tracer
	// CacheDir, when non-empty, backs scenario-driven experiments with the
	// content-addressed result cache (see internal/scenario.Cache): cells
	// already computed under the same canonical identity, seed, and engine
	// fingerprint are read back instead of re-simulated. Output is
	// byte-identical with or without it, by the determinism contract.
	CacheDir string
}

// coreCfg assembles the layer configuration for a runner's fabric build,
// carrying the run's seed and instrumentation registry.
func (o Options) coreCfg(layers int, rho float64) core.Config {
	return core.Config{NumLayers: layers, Rho: rho, Seed: o.Seed, Shards: o.Shards, Obs: o.Obs, Tracer: o.Tracer}
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment is one reproducible unit: a figure or table of the paper.
type Experiment struct {
	ID    string // "fig2", "tab4", ...
	Title string
	Run   func(Options) (*stats.Table, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*stats.Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// Cell is one independent unit of an experiment: it owns a seed folded from
// (Options.Seed, Index), a private RNG derived from that seed, and a row
// sink whose rows are appended to the experiment table in cell-index order.
// A cell must not touch any mutable state shared with other cells.
type Cell struct {
	Index int
	// Seed is exec.FoldSeed(Options.Seed, Index): use it to seed nested
	// deterministic machinery (simulations, fabrics).
	Seed int64
	// Rng is seeded with Seed and private to the cell.
	Rng *rand.Rand

	tab stats.Table
}

// AddRowf appends a row to the cell's slice of the experiment table,
// formatting like stats.Table.AddRowf.
func (c *Cell) AddRowf(cells ...interface{}) { c.tab.AddRowf(cells...) }

// runCells fans n independent cells out over Options.Parallelism workers
// and appends each cell's rows to tab in cell order. The first failing
// cell's error aborts the experiment.
func runCells(o Options, tab *stats.Table, n int, fn func(c *Cell) error) error {
	var mu sync.Mutex
	done := 0
	//det:allow globalrand -- wall-clock telemetry (cell timings) is observational and never feeds table output
	start := time.Now()
	rows, err := exec.ParallelMapLabeled(o.workers(), n,
		func(i int) string { return fmt.Sprintf("%s cell %d", o.RunName, i) },
		func(i int) ([][]string, error) {
			seed := exec.FoldSeed(o.Seed, uint64(i))
			c := &Cell{Index: i, Seed: seed, Rng: graph.NewRand(seed)}
			//det:allow globalrand -- wall-clock telemetry (cell timings) is observational and never feeds table output
			cellStart := time.Now()
			err := fn(c)
			if o.Telemetry != nil {
				rec := obs.CellRecord{
					Type: "cell", Name: o.RunName, Index: i,
					//det:allow globalrand -- wall-clock telemetry (cell timings) is observational and never feeds table output
					WallMs:        time.Since(cellStart).Seconds() * 1e3,
					StartOffsetMs: cellStart.Sub(start).Seconds() * 1e3,
				}
				if err != nil {
					rec.Err = err.Error()
				}
				o.Telemetry.Emit(rec)
			}
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			if o.Progress != nil {
				mu.Lock()
				done++
				o.Progress(done, n)
				mu.Unlock()
			}
			return c.tab.Rows, nil
		})
	if err != nil {
		return err
	}
	for _, rs := range rows {
		tab.Rows = append(tab.Rows, rs...)
	}
	return nil
}

// sharedSeed derives a seed for a resource shared by several cells of one
// runner (e.g. the sim seed every series of a sweep compares on). The tag
// space sits above 1<<32 so it never collides with per-cell seeds, which
// fold small cell indices.
func sharedSeed(o Options, tag uint64) int64 {
	return exec.FoldSeed(o.Seed, (1<<32)+tag)
}

// fmtPct renders a fraction as a percentage string.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
