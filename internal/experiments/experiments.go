// Package experiments regenerates every table and figure of the FatPaths
// evaluation (§IV, §VI, §VII and Appendix D). Each experiment is a named
// runner producing an aligned text table with the same rows/series the
// paper plots. Runners accept an Options struct controlling scale: Quick
// mode (the default for `go test`) uses the small size class and reduced
// sample counts; cmd/experiments can run the paper-scale variants.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Options control experiment scale and determinism.
type Options struct {
	// Quick selects reduced scale (small topologies, fewer samples).
	Quick bool
	// Seed drives all randomness.
	Seed int64
}

// Experiment is one reproducible unit: a figure or table of the paper.
type Experiment struct {
	ID    string // "fig2", "tab4", ...
	Title string
	Run   func(Options) (*stats.Table, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*stats.Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// fmtPct renders a fraction as a percentage string.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
