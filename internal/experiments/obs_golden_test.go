package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestGoldenWithInstrumentation re-runs a sample of experiment IDs with the
// full observability stack attached — metrics registry, JSONL telemetry,
// and an event-loop tracer — and compares the rendered tables
// byte-for-byte against the same goldens the plain runs use. This is the
// tentpole guarantee of the obs layer: instrumentation observes, it never
// perturbs. The sample covers the three distinct execution paths: fig2
// (scenario-matrix engine), fig12 (hand-rolled runCells sweep over
// runSeries), and ext-failures (direct NewSimulation with link failures).
func TestGoldenWithInstrumentation(t *testing.T) {
	for _, id := range []string{"fig2", "fig12", "ext-failures"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			reg := obs.NewRegistry()
			var telBuf bytes.Buffer
			tracer := obs.NewTracer(0, 50_000_000, 0) // 50 simulated ms
			tab, err := e.Run(Options{
				Quick: true, Seed: goldenSeed, Parallelism: 4,
				RunName: id, Obs: reg,
				Telemetry: obs.NewTelemetry(&telBuf),
				Tracer:    tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := tab.String(); got != string(want) {
				t.Errorf("instrumented run diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}

			// The instrumentation must also have actually observed the run.
			snap := reg.Snapshot()
			if snap[obs.MetricSimEvents] == 0 {
				t.Error("metrics on, but netsim.events_processed = 0")
			}
			if snap[obs.MetricRoutingTablesBuilt] == 0 {
				t.Error("metrics on, but routing.tables_built = 0")
			}
			cells := 0
			for _, line := range strings.Split(strings.TrimSpace(telBuf.String()), "\n") {
				var rec map[string]any
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("telemetry line is not JSON: %v\n%s", err, line)
				}
				if rec["type"] == "cell" {
					cells++
				}
			}
			if cells == 0 {
				t.Error("telemetry on, but no cell records emitted")
			}
			if tracer.Len() == 0 {
				t.Error("tracer on, but no events recorded")
			}
		})
	}
}
