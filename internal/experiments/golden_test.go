package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden tables under testdata/")

// goldenSeed is the fixed seed every golden table is generated with (the
// cmd/experiments default).
const goldenSeed = 42

// slowGolden marks the experiments whose quick-mode runs still take tens
// of seconds each; they are skipped in -short mode and under the race
// detector (which slows simulation severalfold) and covered by the
// dedicated non-race TestGolden CI step instead.
var slowGolden = map[string]bool{"fig14": true, "fig16": true, "fig17": true}

// TestGolden runs every registered experiment at quick scale with a fixed
// seed and compares the rendered table byte-for-byte against the
// checked-in files under testdata/. Goldens are written from
// Parallelism-1 runs (-update) while the test compares a Parallelism-8
// run, so every passing run also re-proves the parallel-runtime
// byte-equivalence guarantee for every experiment ID. After an intentional
// output change, regenerate with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if slowGolden[e.ID] && (testing.Short() || raceEnabled) {
				t.Skip("slow simulation figure: skipped under -short and -race")
			}
			t.Parallel()
			path := filepath.Join("testdata", e.ID+".golden")
			if *update {
				tab, err := e.Run(Options{Quick: true, Seed: goldenSeed, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(tab.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			tab, err := e.Run(Options{Quick: true, Seed: goldenSeed, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if got := tab.String(); got != string(want) {
				t.Errorf("table differs from %s (run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
