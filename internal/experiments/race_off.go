//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; the golden
// harness uses it to skip the slowest simulation figures under -race.
const raceEnabled = false
