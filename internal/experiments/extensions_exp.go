package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Extension experiments beyond the paper's numbered figures: the §V-G
// fault-tolerance behaviour, the §VIII-A2 MPTCP subflow striping, and the
// §V-D/E forwarding-state sizing analysis.

func init() {
	register("ext-failures", "Resilience: completion and FCT vs failed links (FatPaths vs single-path)", runExtFailures)
	register("ext-mptcp", "MPTCP-style subflow striping over layers vs flowlet FatPaths (TCP)", runExtMPTCP)
	register("ext-tables", "Forwarding table sizing: flat vs prefix matching (SS V-D/E)", runExtTables)
}

func runExtFailures(o Options) (*stats.Table, error) {
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Resilience under link failures (NDP transport, 64KiB flows)",
		Headers: []string{"series", "failed links", "completed", "mean FCT ms", "p99 ms"},
	}
	flows := pick(o, 60, 200)
	fractions := []float64{0, 0.02, 0.05, 0.10}
	series := []struct {
		name   string
		cfgLB  netsim.LoadBalance
		layers int
		rho    float64
	}{
		{"FatPaths(9 layers)", netsim.LBFatPaths, 9, 0.6},
		{"single minimal path", netsim.LBMinimalLayer, 1, 1.0},
	}
	fabs := make([]*core.Fabric, len(series))
	for i, s := range series {
		fabs[i], err = core.Build(sf, o.coreCfg(s.layers, s.rho))
		if err != nil {
			return nil, err
		}
	}
	// Failure counts and flow endpoints derive from o.Seed alone (the same
	// failed-link set must hit both series), so cells stay comparable at
	// every parallelism.
	if err := runCells(o, tab, len(series)*len(fractions), func(c *Cell) error {
		si := c.Index / len(fractions)
		frac := fractions[c.Index%len(fractions)]
		s := series[si]
		cfg := netsim.NDPDefaults()
		cfg.LB = s.cfgLB
		sim := fabs[si].NewSimulation(cfg)
		nFail := int(frac * float64(sf.G.M()))
		sim.Net.FailRandomLinks(nFail, graph.NewRand(o.Seed+int64(nFail)))
		frng := graph.NewRand(o.Seed)
		for i := 0; i < flows; i++ {
			src, dst := graph.SampleDistinctPair(frng, sf.N())
			sim.AddFlow(netsim.FlowSpec{Src: int32(src), Dst: int32(dst), Bytes: 64 << 10})
		}
		res := sim.Run(3 * netsim.Second)
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(s.name, nFail, fmtPct(netsim.CompletedFraction(res)), fct.Mean, fct.P99)
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runExtMPTCP(o Options) (*stats.Table, error) {
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(sf, o.coreCfg(4, 0.6))
	if err != nil {
		return nil, err
	}
	pat := traffic.AdversarialOffDiagonal(sf)
	size := int64(512 << 10)
	horizon := 10 * netsim.Second
	tab := &stats.Table{
		Title:   "MPTCP subflow striping vs flowlet FatPaths (512KiB messages, TCP)",
		Headers: []string{"series", "mean FCT ms", "p99 ms", "completed"},
	}
	// All four series run the identical workload.
	simSeed := sharedSeed(o, 0)
	stripeKs := []int{2, 4}
	if err := runCells(o, tab, 2+len(stripeKs), func(c *Cell) error {
		switch c.Index {
		case 0:
			// Flowlet FatPaths baseline.
			cfg := netsim.TCPDefaults(netsim.TransportTCP)
			res, err := runSeries(o, fab, cfg, pat, size, 0, horizon, simSeed)
			if err != nil {
				return err
			}
			fct := netsim.SummarizeFCT(res)
			c.AddRowf("flowlet FatPaths", fct.Mean, fct.P99, fmtPct(netsim.CompletedFraction(res)))
		case 1:
			// Native MPTCP transport (LIA-coupled subflows over pinned layers).
			mcfg := netsim.TCPDefaults(netsim.TransportMPTCP)
			mres, err := runSeries(o, fab, mcfg, pat, size, 0, horizon, simSeed)
			if err != nil {
				return err
			}
			mfct := netsim.SummarizeFCT(mres)
			c.AddRowf("MPTCP transport (LIA)", mfct.Mean, mfct.P99, fmtPct(netsim.CompletedFraction(mres)))
		default:
			k := stripeKs[c.Index-2]
			cfg := netsim.TCPDefaults(netsim.TransportTCP)
			mres, err := fab.RunWorkloadMPTCP(cfg, pat, size, k, horizon, simSeed)
			if err != nil {
				return err
			}
			var sm stats.Sample
			done := 0
			for _, r := range mres {
				if r.Done {
					done++
					sm.Add(r.FCT.Seconds() * 1e3)
				}
			}
			s := sm.Summarize()
			c.AddRowf("MPTCP k="+strconv.Itoa(k), s.Mean, s.P99, fmtPct(float64(done)/float64(len(mres))))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runExtTables(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	tab := &stats.Table{
		Title:   "Forwarding state per router: flat exact match vs prefix match vs deployed CSR tables",
		Headers: []string{"topology", "N", "Nr", "layers", "flat entries", "prefix entries", "compression", "fits VLANs", "CSR entries", "tables built"},
	}
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	tops := suite.All()
	// The final cell is the paper's worked example: SF with N=10830, Nr=722.
	if err := runCells(o, tab, len(tops)+1, func(c *Cell) error {
		t := tops[0]
		name := ""
		if c.Index < len(tops) {
			t = tops[c.Index]
			name = t.Name
		} else {
			sf19, err := topo.SlimFly(19, 15)
			if err != nil {
				return err
			}
			t = sf19
			name = sf19.Name + " (paper example)"
		}
		sz := layers.SizeTables(t, 9)
		// Measure the routing state a real deployment materializes: the
		// shared multi-next-hop tables (internal/routing) build lazily per
		// destination, so a workload routing to a handful of destination
		// routers occupies a sliver of the dense n·Nr² footprint even at
		// the paper-example scale.
		fab, err := core.Build(t, o.coreCfg(sz.Layers, 0.6))
		if err != nil {
			return err
		}
		dsts := 8
		if dsts > t.Nr() {
			dsts = t.Nr()
		}
		for _, d := range c.Rng.Perm(t.Nr())[:dsts] {
			for l := 0; l < fab.Fwd.NumLayers(); l++ {
				fab.Fwd.Candidates(l, 0, d)
			}
		}
		dep := layers.SizeDeployedFor(fab.Fwd)
		c.AddRowf(name, t.N(), t.Nr(), sz.Layers, sz.FlatEntries, sz.PrefixEntries,
			sz.Compression, sz.FitsVLANs, dep.CandEntries,
			fmt.Sprintf("%d/%d", dep.TablesBuilt, dep.TablesTotal))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}
