package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Extension experiments beyond the paper's numbered figures: the §V-G
// fault-tolerance behaviour, the §VIII-A2 MPTCP subflow striping, and the
// §V-D/E forwarding-state sizing analysis.

func init() {
	register("ext-failures", "Resilience: completion and FCT vs failed links (FatPaths vs single-path)", runExtFailures)
	register("ext-mptcp", "MPTCP-style subflow striping over layers vs flowlet FatPaths (TCP)", runExtMPTCP)
	register("ext-tables", "Forwarding table sizing: flat vs prefix matching (SS V-D/E)", runExtTables)
}

func runExtFailures(o Options) (*stats.Table, error) {
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Resilience under link failures (NDP transport, 64KiB flows)",
		Headers: []string{"series", "failed links", "completed", "mean FCT ms", "p99 ms"},
	}
	flows := pick(o, 60, 200)
	fractions := []float64{0, 0.02, 0.05, 0.10}
	for _, series := range []struct {
		name   string
		cfgLB  netsim.LoadBalance
		layers int
		rho    float64
	}{
		{"FatPaths(9 layers)", netsim.LBFatPaths, 9, 0.6},
		{"single minimal path", netsim.LBMinimalLayer, 1, 1.0},
	} {
		fab, err := core.Build(sf, core.Config{NumLayers: series.layers, Rho: series.rho, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		for _, frac := range fractions {
			cfg := netsim.NDPDefaults()
			cfg.LB = series.cfgLB
			sim := fab.NewSimulation(cfg)
			nFail := int(frac * float64(sf.G.M()))
			sim.Net.FailRandomLinks(nFail, graph.NewRand(o.Seed+int64(nFail)))
			frng := graph.NewRand(o.Seed)
			for i := 0; i < flows; i++ {
				s, d := graph.SampleDistinctPair(frng, sf.N())
				sim.AddFlow(netsim.FlowSpec{Src: int32(s), Dst: int32(d), Bytes: 64 << 10})
			}
			res := sim.Run(3 * netsim.Second)
			fct := netsim.SummarizeFCT(res)
			tab.AddRowf(series.name, nFail, fmtPct(netsim.CompletedFraction(res)), fct.Mean, fct.P99)
		}
	}
	return tab, nil
}

func runExtMPTCP(o Options) (*stats.Table, error) {
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(sf, core.Config{NumLayers: 4, Rho: 0.6, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	pat := traffic.AdversarialOffDiagonal(sf)
	size := int64(512 << 10)
	tab := &stats.Table{
		Title:   "MPTCP subflow striping vs flowlet FatPaths (512KiB messages, TCP)",
		Headers: []string{"series", "mean FCT ms", "p99 ms", "completed"},
	}

	// Flowlet FatPaths baseline.
	cfg := netsim.TCPDefaults(netsim.TransportTCP)
	res := runSeries(fab, cfg, pat, size, 0, 10*netsim.Second, o.Seed)
	fct := netsim.SummarizeFCT(res)
	tab.AddRowf("flowlet FatPaths", fct.Mean, fct.P99, fmtPct(netsim.CompletedFraction(res)))

	// Native MPTCP transport (LIA-coupled subflows over pinned layers).
	mcfg := netsim.TCPDefaults(netsim.TransportMPTCP)
	mres := runSeries(fab, mcfg, pat, size, 0, 10*netsim.Second, o.Seed)
	mfct := netsim.SummarizeFCT(mres)
	tab.AddRowf("MPTCP transport (LIA)", mfct.Mean, mfct.P99, fmtPct(netsim.CompletedFraction(mres)))

	for _, k := range []int{2, 4} {
		mres, err := fab.RunWorkloadMPTCP(cfg, pat, size, k, 10*netsim.Second, o.Seed)
		if err != nil {
			return nil, err
		}
		var sm stats.Sample
		done := 0
		for _, r := range mres {
			if r.Done {
				done++
				sm.Add(r.FCT.Seconds() * 1e3)
			}
		}
		s := sm.Summarize()
		tab.AddRowf("MPTCP k="+strconv.Itoa(k), s.Mean, s.P99, fmtPct(float64(done)/float64(len(mres))))
	}
	return tab, nil
}

func runExtTables(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	tab := &stats.Table{
		Title:   "Forwarding state per router: flat exact match vs prefix match",
		Headers: []string{"topology", "N", "Nr", "layers", "flat entries", "prefix entries", "compression", "fits VLANs"},
	}
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	for _, t := range suite.All() {
		sz := layers.SizeTables(t, 9)
		tab.AddRowf(t.Name, t.N(), t.Nr(), sz.Layers, sz.FlatEntries, sz.PrefixEntries,
			sz.Compression, sz.FitsVLANs)
	}
	// The paper's worked example: SF with N=10830 has Nr=722.
	sf19, err := topo.SlimFly(19, 15)
	if err != nil {
		return nil, err
	}
	sz := layers.SizeTables(sf19, 9)
	tab.AddRowf(sf19.Name+" (paper example)", sf19.N(), sf19.Nr(), sz.Layers,
		sz.FlatEntries, sz.PrefixEntries, sz.Compression, sz.FitsVLANs)
	return tab, nil
}
