package experiments

import (
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// QueueModel implements the "simple queueing model" prediction of Fig 15:
// an M/M/1 processor-sharing approximation of the receiver access link.
// A flow of v bytes on a C-bps link shared with n concurrent flows takes
// (n+1)·v·8/C plus a base RTT; under Poisson arrivals of rate λ per
// endpoint and mean size E[v], the number of concurrent flows is geometric
// with parameter the link load ρ = λ·E[v]·8/C. Flow sizes here are fixed
// (the figure plots 1MiB flows), so E[v] = v.

// QueueModelSample draws `samples` model FCTs (in ms) and digests them.
func QueueModelSample(rng *rand.Rand, samples int, flowBytes int64, linkBps float64, lambda float64, baseRTT netsim.Time) stats.Summary {
	load := lambda * float64(flowBytes) * 8 / linkBps
	if load > 0.95 {
		load = 0.95 // model validity guard; the paper operates below saturation
	}
	serialize := float64(flowBytes) * 8 / linkBps // seconds
	var sm stats.Sample
	for i := 0; i < samples; i++ {
		// Geometric number-in-system: P(n) = (1-ρ)ρ^n.
		n := 0
		for rng.Float64() < load {
			n++
			if n > 1000 {
				break
			}
		}
		fct := baseRTT.Seconds() + serialize*float64(n+1)
		sm.Add(fct * 1e3)
	}
	return sm.Summarize()
}
