package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// This file implements the packet-level simulation experiments of §VII and
// Appendix D: Fig 2 (randomized workload throughput), Fig 11 (skewed
// adversarial), Fig 12 (n/ρ sweep, htsim mode), Fig 13 (largest feasible
// networks), Fig 14 (TCP: FatPaths vs ECMP vs LetFlow), Fig 15 (FCT
// distribution vs queueing model), Fig 16 (ρ sweep, TCP), Fig 17 (stencil +
// barrier), Fig 20/21 (λ calibration on crossbar/fat tree), plus the
// ablation studies called out in DESIGN.md §4.

func init() {
	register("fig2", "Throughput/flow vs flow size: low-diameter+FatPaths vs FT+NDP (randomized workload)", runFig2)
	register("fig11", "Skewed adversarial traffic: FatPaths vs minimal NDP baseline", runFig11)
	register("fig12", "Effect of layer count n and sparsity rho on long-flow FCT (htsim mode)", runFig12)
	register("fig13", "Larger networks: SF vs SF-JF vs DF throughput and FCT tails", runFig13)
	register("fig14", "TCP: FatPaths (rho=0.6, rho=1) vs ECMP vs LetFlow", runFig14)
	register("fig15", "Long-flow FCT distribution on SF: queueing model vs FatPaths vs ECMP", runFig15)
	register("fig16", "Impact of rho on long-flow FCT (TCP, n=4)", runFig16)
	register("fig17", "Stencil+barrier completion time speedups (TCP)", runFig17)
	register("fig20", "Long-flow FCT vs arrival rate on a crossbar (TCP)", runFig20)
	register("fig21", "Influence of lambda on baseline NDP: crossbar vs fat tree", runFig21)
	register("abl-transport", "Ablation: purified transport vs TCP tail-drop on identical layers", runAblTransport)
	register("abl-construction", "Ablation: random vs min-interference layer construction", runAblConstruction)
	register("abl-randomization", "Ablation: workload randomization on vs off", runAblRandomization)
}

// smallSuite returns the per-figure topology set at quick or full scale.
func simSuite(o Options, rng *rand.Rand) (map[string]*topo.Topology, error) {
	out := map[string]*topo.Topology{}
	var err error
	add := func(k string, t *topo.Topology, e error) {
		if err == nil && e != nil {
			err = e
		}
		out[k] = t
	}
	if o.Quick {
		sf, e := topo.SlimFly(5, 0)
		add("SF", sf, e)
		df, e := topo.Dragonfly(3)
		add("DF", df, e)
		hx, e := topo.HyperX(3, 4, 0)
		add("HX", hx, e)
		xp, e := topo.Xpander(8, 8, 0, rng)
		add("XP", xp, e)
		ft, e := topo.FatTree3(4, 2)
		add("FT", ft, e)
	} else {
		sf, e := topo.SlimFly(11, 0)
		add("SF", sf, e)
		df, e := topo.Dragonfly(4)
		add("DF", df, e)
		hx, e := topo.HyperX(3, 7, 0)
		add("HX", hx, e)
		xp, e := topo.Xpander(16, 16, 0, rng)
		add("XP", xp, e)
		ft, e := topo.FatTree3(8, 2)
		add("FT", ft, e)
	}
	if err != nil {
		return nil, err
	}
	jf, e := topo.EquivalentJellyfish(out["SF"], rng)
	if e != nil {
		return nil, e
	}
	out["JF"] = jf
	return out, nil
}

// runSeries simulates one (fabric, config, pattern, size) combination.
func runSeries(fab *core.Fabric, cfg netsim.Config, pat traffic.Pattern, size int64, lambda float64, horizon netsim.Time, seed int64) []netsim.FlowResult {
	wl := core.Workload{Pattern: pat, FlowSize: traffic.FixedSize(size), Lambda: lambda}
	return fab.RunWorkload(cfg, wl, horizon, seed)
}

func flowSizes(o Options) []int64 {
	if o.Quick {
		return []int64{32 << 10, 256 << 10, 2 << 20}
	}
	return []int64{32 << 10, 128 << 10, 512 << 10, 2 << 20}
}

func runFig2(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 2: throughput per flow [MiB/s], randomized workload, NDP-style transport",
		Headers: []string{"topology", "scheme", "flow KiB", "mean", "1% tail", "completed"},
	}
	horizon := 8 * netsim.Second
	for _, name := range []string{"SF", "XP", "HX", "DF", "FT"} {
		t := suite[name]
		scheme := "FatPaths"
		cfg := netsim.NDPDefaults()
		var fab *core.Fabric
		if name == "FT" {
			// Fat trees run the plain NDP design: per-packet spraying over
			// minimal paths (Handley et al.), no layers.
			scheme = "NDP"
			cfg.LB = netsim.LBPacketSpray
			fab, err = core.Build(t, core.Config{NumLayers: 1, Rho: 1, Seed: o.Seed})
		} else {
			fab, err = core.Build(t, core.DefaultConfig(t))
		}
		if err != nil {
			return nil, err
		}
		for _, size := range flowSizes(o) {
			pat := traffic.RandomizeMapping(traffic.RandomUniform(rng, t.N()), rng)
			res := runSeries(fab, cfg, pat, size, 300, horizon, o.Seed+size)
			tp := netsim.SummarizeThroughput(res)
			tab.AddRowf(t.Name, scheme, size>>10, tp.Mean, tp.P01, fmtPct(netsim.CompletedFraction(res)))
		}
	}
	return tab, nil
}

func runFig11(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 11: skewed adversarial (non-randomized) traffic, NDP-style transport",
		Headers: []string{"topology", "scheme", "flow KiB", "mean MiB/s", "1% tail", "completed"},
	}
	horizon := 10 * netsim.Second
	for _, name := range []string{"SF", "XP", "HX", "DF", "FT"} {
		t := suite[name]
		pat := traffic.AdversarialOffDiagonal(t)
		for _, scheme := range []string{"FatPaths", "NDP-minimal"} {
			cfg := netsim.NDPDefaults()
			var fab *core.Fabric
			if scheme == "FatPaths" {
				fab, err = core.Build(t, core.DefaultConfig(t))
			} else {
				cfg.LB = netsim.LBPacketSpray
				fab, err = core.Build(t, core.Config{NumLayers: 1, Rho: 1, Seed: o.Seed})
			}
			if err != nil {
				return nil, err
			}
			for _, size := range flowSizes(o) {
				res := runSeries(fab, cfg, pat, size, 300, horizon, o.Seed+size)
				tp := netsim.SummarizeThroughput(res)
				tab.AddRowf(t.Name, scheme, size>>10, tp.Mean, tp.P01, fmtPct(netsim.CompletedFraction(res)))
			}
		}
	}
	return tab, nil
}

func runFig12(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	df, err := topo.Dragonfly(pick(o, 3, 4))
	if err != nil {
		return nil, err
	}
	cl, err := topo.Complete(pick(o, 15, 40), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 12: effect of n and rho on 1MiB-flow FCT [ms] (NDP mode)",
		Headers: []string{"topology", "n", "rho", "mean", "p10", "p99", "completed"},
	}
	ns := []int{2, 5, 9}
	rhos := []float64{0.5, 0.7, 0.8}
	if !o.Quick {
		ns = []int{2, 5, 9, 17, 33}
	}
	horizon := 10 * netsim.Second
	for _, t := range []*topo.Topology{cl, sf, df} {
		pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, t.N()), rng)
		for _, n := range ns {
			for _, rho := range rhos {
				fab, err := core.Build(t, core.Config{NumLayers: n, Rho: rho, Seed: o.Seed})
				if err != nil {
					return nil, err
				}
				res := runSeries(fab, netsim.NDPDefaults(), pat, 1<<20, 300, horizon, o.Seed)
				fct := netsim.SummarizeFCT(res)
				tab.AddRowf(t.Kind, n, rho, fct.Mean, fct.P10, fct.P99, fmtPct(netsim.CompletedFraction(res)))
			}
		}
	}
	return tab, nil
}

func runFig13(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	q := pick(o, 7, 13)
	sf, err := topo.SlimFly(q, 0)
	if err != nil {
		return nil, err
	}
	sfjf, err := topo.EquivalentJellyfish(sf, rng)
	if err != nil {
		return nil, err
	}
	df, err := topo.Dragonfly(pick(o, 3, 5))
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 13: larger networks, 1MiB flows (NDP mode)",
		Headers: []string{"topology", "N", "mean MiB/s", "FCT p50 ms", "FCT p99 ms", "completed"},
	}
	horizon := 10 * netsim.Second
	for _, t := range []*topo.Topology{sf, sfjf, df} {
		fab, err := core.Build(t, core.DefaultConfig(t))
		if err != nil {
			return nil, err
		}
		pat := traffic.RandomizeMapping(traffic.RandomUniform(rng, t.N()), rng)
		res := runSeries(fab, netsim.NDPDefaults(), pat, 1<<20, 300, horizon, o.Seed)
		tp := netsim.SummarizeThroughput(res)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(t.Name, t.N(), tp.Mean, fct.P50, fct.P99, fmtPct(netsim.CompletedFraction(res)))
	}
	return tab, nil
}

// tcpSeriesConfig returns the four Fig 14 series: ECMP, LetFlow,
// FatPaths(rho=0.6), FatPaths(rho=1), all with n=4 layers (§VII-C).
type tcpSeries struct {
	name   string
	lb     netsim.LoadBalance
	layers int
	rho    float64
}

func tcpSeriesSet() []tcpSeries {
	return []tcpSeries{
		{"ECMP", netsim.LBECMP, 1, 1},
		{"LetFlow", netsim.LBLetFlow, 1, 1},
		{"FatPaths(0.6)", netsim.LBFatPaths, 4, 0.6},
		{"FatPaths(1.0)", netsim.LBFatPaths, 4, 1.0},
	}
}

func runFig14(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	sizes := []int64{20e3, 200e3, 2e6}
	tab := &stats.Table{
		Title:   "Fig 14: TCP — speedup over ECMP (mean and 99% tail of FCT)",
		Headers: []string{"topology", "flow KB", "series", "mean FCT ms", "p99 ms", "speedup mean", "speedup p99"},
	}
	horizon := 12 * netsim.Second
	for _, name := range []string{"DF", "FT", "HX", "JF", "SF", "XP"} {
		t := suite[name]
		pat := traffic.AdversarialOffDiagonal(t)
		for _, size := range sizes {
			var base stats.Summary
			for _, s := range tcpSeriesSet() {
				fab, err := core.Build(t, core.Config{NumLayers: s.layers, Rho: s.rho, Seed: o.Seed})
				if err != nil {
					return nil, err
				}
				cfg := netsim.TCPDefaults(netsim.TransportTCP)
				cfg.LB = s.lb
				// Synchronized starts: at this scaled-down N, Poisson
				// staggering would dissolve the path collisions the figure
				// studies (the paper's N≈10k runs have enough concurrent
				// flows for lambda=200 to keep collisions persistent).
				res := runSeries(fab, cfg, pat, size, 0, horizon, o.Seed)
				fct := netsim.SummarizeFCT(res)
				if s.name == "ECMP" {
					base = fct
				}
				spMean, spTail := 0.0, 0.0
				if fct.Mean > 0 {
					spMean = base.Mean / fct.Mean
				}
				if fct.P99 > 0 {
					spTail = base.P99 / fct.P99
				}
				tab.AddRowf(name, size/1000, s.name, fct.Mean, fct.P99, spMean, spTail)
			}
		}
	}
	return tab, nil
}

func runFig15(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 15: 1MiB-flow FCT distribution on SF (TCP)",
		Headers: []string{"series", "p10 ms", "p50 ms", "p90 ms", "p99 ms", "mean ms"},
	}
	lambda := 200.0
	horizon := 12 * netsim.Second
	pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, sf.N()), rng)

	// Simple M/M/1-PS queueing-model prediction at the access link.
	model := QueueModelSample(graph.NewRand(o.Seed), 4000, 1<<20, 10e9, lambda, 20*netsim.Microsecond)
	tab.AddRowf("queueing model", model.P10, model.P50, model.P90, model.P99, model.Mean)

	for _, s := range []tcpSeries{
		{"FatPaths(TCP)", netsim.LBFatPaths, 4, 0.6},
		{"ECMP", netsim.LBECMP, 1, 1},
	} {
		fab, err := core.Build(sf, core.Config{NumLayers: s.layers, Rho: s.rho, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		cfg := netsim.TCPDefaults(netsim.TransportTCP)
		cfg.LB = s.lb
		res := runSeries(fab, cfg, pat, 1<<20, lambda, horizon, o.Seed)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(s.name, fct.P10, fct.P50, fct.P90, fct.P99, fct.Mean)
	}
	return tab, nil
}

func runFig16(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	rhos := []float64{0.5, 0.7, 0.9, 1.0}
	if !o.Quick {
		rhos = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	tab := &stats.Table{
		Title:   "Fig 16: impact of rho on 1MiB-flow FCT (TCP, n=4)",
		Headers: []string{"topology", "rho", "mean ms", "p10 ms", "p99 ms"},
	}
	horizon := 12 * netsim.Second
	for _, name := range []string{"DF", "JF", "HX", "SF", "XP"} {
		t := suite[name]
		pat := traffic.AdversarialOffDiagonal(t)
		for _, rho := range rhos {
			fab, err := core.Build(t, core.Config{NumLayers: 4, Rho: rho, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			cfg := netsim.TCPDefaults(netsim.TransportTCP)
			res := runSeries(fab, cfg, pat, 1<<20, 200, horizon, o.Seed)
			fct := netsim.SummarizeFCT(res)
			tab.AddRowf(name, rho, fct.Mean, fct.P10, fct.P99)
		}
	}
	return tab, nil
}

func runFig17(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	sizes := []int64{20e3, 200e3}
	if !o.Quick {
		sizes = append(sizes, 2e6)
	}
	rounds := pick(o, 3, 5)
	tab := &stats.Table{
		Title:   "Fig 17: stencil+barrier completion time, speedup over ECMP (TCP)",
		Headers: []string{"topology", "flow KB", "series", "total ms", "speedup"},
	}
	for _, name := range []string{"DF", "FT", "HX", "JF", "SF", "XP"} {
		t := suite[name]
		pat := traffic.RandomizeMapping(traffic.DefaultStencil(t.N()), rng)
		for _, size := range sizes {
			var base netsim.Time
			for _, s := range tcpSeriesSet() {
				fab, err := core.Build(t, core.Config{NumLayers: s.layers, Rho: s.rho, Seed: o.Seed})
				if err != nil {
					return nil, err
				}
				cfg := netsim.TCPDefaults(netsim.TransportTCP)
				cfg.LB = s.lb
				total, _ := fab.RunStencilRounds(cfg, pat, size, rounds, 6*netsim.Second, o.Seed)
				if s.name == "ECMP" {
					base = total
				}
				sp := 0.0
				if total > 0 {
					sp = float64(base) / float64(total)
				}
				tab.AddRowf(name, size/1000, s.name, total.Seconds()*1e3, sp)
			}
		}
	}
	return tab, nil
}

func runFig20(o Options) (*stats.Table, error) {
	n := pick(o, 24, 60)
	st, err := topo.Star(n)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(st, core.Config{NumLayers: 1, Rho: 1, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 20: 2MB-flow FCT vs arrival rate on a crossbar (TCP)",
		Headers: []string{"lambda", "p10 ms", "mean ms", "p90 ms", "completed"},
	}
	rng := graph.NewRand(o.Seed)
	for _, lambda := range []float64{100, 250, 500, 800} {
		pat := traffic.RandomUniform(rng, n)
		cfg := netsim.TCPDefaults(netsim.TransportTCP)
		cfg.LB = netsim.LBMinimalLayer
		res := runSeries(fab, cfg, pat, 2e6, lambda, 10*netsim.Second, o.Seed)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(lambda, fct.P10, fct.Mean, fct.P90, fmtPct(netsim.CompletedFraction(res)))
	}
	return tab, nil
}

func runFig21(o Options) (*stats.Table, error) {
	n := pick(o, 24, 128)
	st, err := topo.Star(n)
	if err != nil {
		return nil, err
	}
	m := pick(o, 3, 6)
	ft, err := topo.FatTree3(m, 2)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 21: influence of lambda on baseline NDP (per-packet spray)",
		Headers: []string{"topology", "lambda", "FCT p10 ms", "mean ms", "p99 ms", "completed"},
	}
	rng := graph.NewRand(o.Seed)
	for _, t := range []*topo.Topology{st, ft} {
		fab, err := core.Build(t, core.Config{NumLayers: 1, Rho: 1, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		for _, lambda := range []float64{100, 300, 500} {
			pat := traffic.RandomUniform(rng, t.N())
			cfg := netsim.NDPDefaults()
			cfg.LB = netsim.LBPacketSpray
			res := runSeries(fab, cfg, pat, 256<<10, lambda, 10*netsim.Second, o.Seed)
			fct := netsim.SummarizeFCT(res)
			tab.AddRowf(t.Kind, lambda, fct.P10, fct.Mean, fct.P99, fmtPct(netsim.CompletedFraction(res)))
		}
	}
	return tab, nil
}

func runAblTransport(o Options) (*stats.Table, error) {
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(sf, core.DefaultConfig(sf))
	if err != nil {
		return nil, err
	}
	pat := traffic.AdversarialOffDiagonal(sf)
	tab := &stats.Table{
		Title:   "Ablation: purified (NDP-style) transport vs TCP tail-drop, identical layers",
		Headers: []string{"transport", "mean FCT ms", "p99 ms", "drops", "trims"},
	}
	for _, mode := range []string{"purified", "tcp"} {
		var cfg netsim.Config
		if mode == "purified" {
			cfg = netsim.NDPDefaults()
		} else {
			cfg = netsim.TCPDefaults(netsim.TransportTCP)
		}
		sim := fab.NewSimulation(cfg)
		for _, fl := range pat.Flows {
			sim.AddFlow(netsim.FlowSpec{Src: fl.Src, Dst: fl.Dst, Bytes: 512 << 10, Start: 0})
		}
		res := sim.Run(10 * netsim.Second)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(mode, fct.Mean, fct.P99, sim.Net.TotalDrops(), sim.Net.TotalTrims())
	}
	return tab, nil
}

func runAblConstruction(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	pat := traffic.WorstCase(sf, 0.55, rng)
	tab := &stats.Table{
		Title:   "Ablation: layer construction scheme (MAT on worst-case pattern + sim FCT)",
		Headers: []string{"scheme", "MAT T", "sim mean FCT ms"},
	}
	for _, scheme := range []core.LayerScheme{core.RandomSampling, core.MinInterference} {
		fab, err := core.Build(sf, core.Config{NumLayers: 5, Rho: 0.6, Scheme: scheme, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		mat, err := fab.MAT(pat, 0.12)
		if err != nil {
			return nil, err
		}
		res := runSeries(fab, netsim.NDPDefaults(), pat, 256<<10, 0, 8*netsim.Second, o.Seed)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(scheme.String(), mat, fct.Mean)
	}
	return tab, nil
}

func runAblRandomization(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(sf, core.DefaultConfig(sf))
	if err != nil {
		return nil, err
	}
	skewed := traffic.AdversarialOffDiagonal(sf)
	randomized := traffic.RandomizeMapping(skewed, rng)
	tab := &stats.Table{
		Title:   "Ablation: randomized workload mapping (§III-D)",
		Headers: []string{"mapping", "mean MiB/s", "p99 FCT ms"},
	}
	for _, pc := range []struct {
		name string
		pat  traffic.Pattern
	}{{"skewed", skewed}, {"randomized", randomized}} {
		res := runSeries(fab, netsim.NDPDefaults(), pc.pat, 512<<10, 0, 8*netsim.Second, o.Seed)
		tp := netsim.SummarizeThroughput(res)
		fct := netsim.SummarizeFCT(res)
		tab.AddRowf(pc.name, tp.Mean, fct.P99)
	}
	return tab, nil
}
