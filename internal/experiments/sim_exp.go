package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// This file implements the packet-level simulation experiments of §VII and
// Appendix D: Fig 2 (randomized workload throughput), Fig 11 (skewed
// adversarial), Fig 12 (n/ρ sweep, htsim mode), Fig 13 (largest feasible
// networks), Fig 14 (TCP: FatPaths vs ECMP vs LetFlow), Fig 15 (FCT
// distribution vs queueing model), Fig 16 (ρ sweep, TCP), Fig 17 (stencil +
// barrier), Fig 20/21 (λ calibration on crossbar/fat tree), plus the
// transport/construction/randomization ablations (see README.md's
// experiment table).
//
// fig2, fig11, fig13 and the three ablations are declarative scenario
// matrices (internal/scenario): the runner states the swept axes and skip
// constraints, the engine expands, seeds, and executes the cells over the
// parallel runtime, and the runner only reformats CellResults into the
// figure's table shape. The remaining runners enumerate cells by hand (they
// embed per-cell baselines or model predictions the matrix form does not
// express) and fan out via runCells with the same seed-folding discipline.

func init() {
	register("fig2", "Throughput/flow vs flow size: low-diameter+FatPaths vs FT+NDP (randomized workload)", runFig2)
	register("fig11", "Skewed adversarial traffic: FatPaths vs minimal NDP baseline", runFig11)
	register("fig12", "Effect of layer count n and sparsity rho on long-flow FCT (htsim mode)", runFig12)
	register("fig13", "Larger networks: SF vs SF-JF vs DF throughput and FCT tails", runFig13)
	register("fig14", "TCP: FatPaths (rho=0.6, rho=1) vs ECMP vs LetFlow", runFig14)
	register("fig15", "Long-flow FCT distribution on SF: queueing model vs FatPaths vs ECMP", runFig15)
	register("fig16", "Impact of rho on long-flow FCT (TCP, n=4)", runFig16)
	register("fig17", "Stencil+barrier completion time speedups (TCP)", runFig17)
	register("fig20", "Long-flow FCT vs arrival rate on a crossbar (TCP)", runFig20)
	register("fig21", "Influence of lambda on baseline NDP: crossbar vs fat tree", runFig21)
	register("abl-transport", "Ablation: purified transport vs TCP tail-drop on identical layers", runAblTransport)
	register("abl-construction", "Ablation: random vs min-interference layer construction", runAblConstruction)
	register("abl-randomization", "Ablation: workload randomization on vs off", runAblRandomization)
}

// smallSuite returns the per-figure topology set at quick or full scale.
func simSuite(o Options, rng *rand.Rand) (map[string]*topo.Topology, error) {
	out := map[string]*topo.Topology{}
	var err error
	add := func(k string, t *topo.Topology, e error) {
		if err == nil && e != nil {
			err = e
		}
		out[k] = t
	}
	if o.Quick {
		sf, e := topo.SlimFly(5, 0)
		add("SF", sf, e)
		df, e := topo.Dragonfly(3)
		add("DF", df, e)
		hx, e := topo.HyperX(3, 4, 0)
		add("HX", hx, e)
		xp, e := topo.Xpander(8, 8, 0, rng)
		add("XP", xp, e)
		ft, e := topo.FatTree3(4, 2)
		add("FT", ft, e)
	} else {
		sf, e := topo.SlimFly(11, 0)
		add("SF", sf, e)
		df, e := topo.Dragonfly(4)
		add("DF", df, e)
		hx, e := topo.HyperX(3, 7, 0)
		add("HX", hx, e)
		xp, e := topo.Xpander(16, 16, 0, rng)
		add("XP", xp, e)
		ft, e := topo.FatTree3(8, 2)
		add("FT", ft, e)
	}
	if err != nil {
		return nil, err
	}
	jf, e := topo.EquivalentJellyfish(out["SF"], rng)
	if e != nil {
		return nil, e
	}
	out["JF"] = jf
	return out, nil
}

// scenTopo maps a simSuite family tag onto the scenario topology spec of
// the same size at the current scale.
func scenTopo(o Options, kind string) scenario.Topology {
	switch kind {
	case "SF":
		return scenario.Topology{Kind: "SF", Param: pick(o, 5, 11)}
	case "JF":
		return scenario.Topology{Kind: "JF", Param: pick(o, 5, 11)}
	case "DF":
		return scenario.Topology{Kind: "DF", Param: pick(o, 3, 4)}
	case "HX":
		return scenario.Topology{Kind: "HX", Param: pick(o, 4, 7)}
	case "XP":
		return scenario.Topology{Kind: "XP", Param: pick(o, 8, 16)}
	case "FT":
		return scenario.Topology{Kind: "FT3", Param: pick(o, 4, 8)}
	}
	panic("unknown suite kind " + kind)
}

func scenTopos(o Options, kinds ...string) []scenario.Topology {
	out := make([]scenario.Topology, len(kinds))
	for i, k := range kinds {
		out[i] = scenTopo(o, k)
	}
	return out
}

// runMatrices expands the given matrices, concatenates their cells in
// order, and executes everything as one batch over the parallel runtime
// with the experiment's seed and progress reporting.
func runMatrices(o Options, ms ...*scenario.Matrix) ([]scenario.CellResult, error) {
	var cells []scenario.Spec
	for _, m := range ms {
		cs, _, err := m.Expand()
		if err != nil {
			return nil, err
		}
		cells = append(cells, cs...)
	}
	return scenario.RunSpecs(cells, scenario.RunOptions{
		Seed:        o.Seed,
		Parallelism: o.workers(),
		Shards:      o.Shards,
		Progress:    o.Progress,
		Name:        o.RunName,
		Obs:         o.Obs,
		Telemetry:   o.Telemetry,
		Tracer:      o.Tracer,
		CacheDir:    o.CacheDir,
	})
}

// runSeries simulates one (fabric, config, pattern, size) combination. The
// pattern is validated first: a malformed pattern aborts the experiment
// with a useful error instead of simulating garbage. The run's tracer (if
// any) is offered to every series; the first simulation wins it.
func runSeries(o Options, fab *core.Fabric, cfg netsim.Config, pat traffic.Pattern, size int64, lambda float64, horizon netsim.Time, seed int64) ([]netsim.FlowResult, error) {
	if err := pat.ValidateFlows(); err != nil {
		return nil, err
	}
	cfg.Tracer = o.Tracer
	if cfg.Shards == 0 {
		cfg.Shards = o.Shards
	}
	wl := core.Workload{Pattern: pat, FlowSize: traffic.FixedSize(size), Lambda: lambda}
	return fab.RunWorkload(cfg, wl, horizon, seed), nil
}

func flowSizes(o Options) []int64 {
	if o.Quick {
		return []int64{32 << 10, 256 << 10, 2 << 20}
	}
	return []int64{32 << 10, 128 << 10, 512 << 10, 2 << 20}
}

func scenSizes(o Options) []scenario.FlowSize {
	var out []scenario.FlowSize
	for _, b := range flowSizes(o) {
		out = append(out, scenario.FlowSize{Bytes: b})
	}
	return out
}

func runFig2(o Options) (*stats.Table, error) {
	// Low-diameter topologies run FatPaths; the fat tree runs the plain NDP
	// design (per-packet spraying over minimal paths, no layers). Both
	// matrices share the randomized-uniform workload axes.
	base := scenario.Spec{
		Pattern:   scenario.Pattern{Kind: "uniform", Randomize: true},
		Load:      300,
		HorizonMs: 8000,
	}
	lowDiam := &scenario.Matrix{
		Name: "fig2-fatpaths",
		Base: base,
		Axes: scenario.Axes{
			Topologies: scenTopos(o, "SF", "XP", "HX", "DF"),
			FlowSizes:  scenSizes(o),
		},
	}
	ftBase := base
	ftBase.Topology = scenTopo(o, "FT")
	ftBase.Routing = "spray"
	ftBase.Layers = 1
	ftBase.Rho = 1
	ft := &scenario.Matrix{
		Name: "fig2-ndp-ft",
		Base: ftBase,
		Axes: scenario.Axes{FlowSizes: scenSizes(o)},
	}
	results, err := runMatrices(o, lowDiam, ft)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 2: throughput per flow [MiB/s], randomized workload, NDP-style transport",
		Headers: []string{"topology", "scheme", "flow KiB", "mean", "1% tail", "completed"},
	}
	for _, r := range results {
		scheme := "FatPaths"
		if r.Spec.Routing == "spray" {
			scheme = "NDP"
		}
		tab.AddRowf(r.TopoName, scheme, r.Spec.FlowSize.Bytes>>10,
			r.Throughput.Mean, r.Throughput.P01, fmtPct(r.Completed))
	}
	return tab, nil
}

func runFig11(o Options) (*stats.Table, error) {
	// One matrix over (topology × scheme × size). The two schemes need
	// different layer configurations, so the layers/rho axes carry both and
	// skip constraints cut the cross product down to the two real series:
	// FatPaths at the topology default (layers=0, rho=0) and the minimal
	// NDP baseline on a single dense layer (layers=1, rho=1).
	m := &scenario.Matrix{
		Name: "fig11",
		Base: scenario.Spec{
			Pattern:   scenario.Pattern{Kind: "adversarial"},
			Load:      300,
			HorizonMs: 10000,
		},
		Axes: scenario.Axes{
			Topologies: scenTopos(o, "SF", "XP", "HX", "DF", "FT"),
			Routings:   []string{"fatpaths", "spray"},
			Layers:     []int{0, 1},
			Rhos:       []float64{0, 1},
			FlowSizes:  scenSizes(o),
		},
		Skip: []scenario.Constraint{
			{When: map[string]string{"routing": "fatpaths", "layers": "1"}},
			{When: map[string]string{"routing": "fatpaths", "rho": "1"}},
			{When: map[string]string{"routing": "spray", "layers": "0"}},
			{When: map[string]string{"routing": "spray", "rho": "0"}},
		},
	}
	results, err := runMatrices(o, m)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 11: skewed adversarial (non-randomized) traffic, NDP-style transport",
		Headers: []string{"topology", "scheme", "flow KiB", "mean MiB/s", "1% tail", "completed"},
	}
	for _, r := range results {
		scheme := "FatPaths"
		if r.Spec.Routing == "spray" {
			scheme = "NDP-minimal"
		}
		tab.AddRowf(r.TopoName, scheme, r.Spec.FlowSize.Bytes>>10,
			r.Throughput.Mean, r.Throughput.P01, fmtPct(r.Completed))
	}
	return tab, nil
}

func runFig12(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	df, err := topo.Dragonfly(pick(o, 3, 4))
	if err != nil {
		return nil, err
	}
	cl, err := topo.Complete(pick(o, 15, 40), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 12: effect of n and rho on 1MiB-flow FCT [ms] (NDP mode)",
		Headers: []string{"topology", "n", "rho", "mean", "p10", "p99", "completed"},
	}
	ns := []int{2, 5, 9}
	rhos := []float64{0.5, 0.7, 0.8}
	if !o.Quick {
		ns = []int{2, 5, 9, 17, 33}
	}
	horizon := 10 * netsim.Second
	type cell struct {
		t       *topo.Topology
		pat     traffic.Pattern
		n       int
		rho     float64
		simSeed int64
	}
	var cells []cell
	for ti, t := range []*topo.Topology{cl, sf, df} {
		// The whole (n, rho) sweep of one topology compares FCT on the same
		// workload: pattern and sim seed are shared across its cells.
		pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, t.N()), rng)
		simSeed := sharedSeed(o, uint64(ti))
		for _, n := range ns {
			for _, rho := range rhos {
				cells = append(cells, cell{t, pat, n, rho, simSeed})
			}
		}
	}
	if err := runCells(o, tab, len(cells), func(c *Cell) error {
		cl := cells[c.Index]
		fab, err := core.Build(cl.t, o.coreCfg(cl.n, cl.rho))
		if err != nil {
			return err
		}
		res, err := runSeries(o, fab, netsim.NDPDefaults(), cl.pat, 1<<20, 300, horizon, cl.simSeed)
		if err != nil {
			return err
		}
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(cl.t.Kind, cl.n, cl.rho, fct.Mean, fct.P10, fct.P99, fmtPct(netsim.CompletedFraction(res)))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig13(o Options) (*stats.Table, error) {
	m := &scenario.Matrix{
		Name: "fig13",
		Base: scenario.Spec{
			Pattern:   scenario.Pattern{Kind: "uniform", Randomize: true},
			FlowSize:  scenario.FlowSize{Bytes: 1 << 20},
			Load:      300,
			HorizonMs: 10000,
		},
		Axes: scenario.Axes{
			Topologies: []scenario.Topology{
				{Kind: "SF", Param: pick(o, 7, 13)},
				{Kind: "JF", Param: pick(o, 7, 13)},
				{Kind: "DF", Param: pick(o, 3, 5)},
			},
		},
	}
	results, err := runMatrices(o, m)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 13: larger networks, 1MiB flows (NDP mode)",
		Headers: []string{"topology", "N", "mean MiB/s", "FCT p50 ms", "FCT p99 ms", "completed"},
	}
	for _, r := range results {
		tab.AddRowf(r.TopoName, r.TopoN, r.Throughput.Mean, r.FCT.P50, r.FCT.P99, fmtPct(r.Completed))
	}
	return tab, nil
}

// tcpSeriesConfig returns the four Fig 14 series: ECMP, LetFlow,
// FatPaths(rho=0.6), FatPaths(rho=1), all with n=4 layers (§VII-C).
type tcpSeries struct {
	name   string
	lb     netsim.LoadBalance
	layers int
	rho    float64
}

func tcpSeriesSet() []tcpSeries {
	return []tcpSeries{
		{"ECMP", netsim.LBECMP, 1, 1},
		{"LetFlow", netsim.LBLetFlow, 1, 1},
		{"FatPaths(0.6)", netsim.LBFatPaths, 4, 0.6},
		{"FatPaths(1.0)", netsim.LBFatPaths, 4, 1.0},
	}
}

func runFig14(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	sizes := []int64{20e3, 200e3, 2e6}
	tab := &stats.Table{
		Title:   "Fig 14: TCP — speedup over ECMP (mean and 99% tail of FCT)",
		Headers: []string{"topology", "flow KB", "series", "mean FCT ms", "p99 ms", "speedup mean", "speedup p99"},
	}
	horizon := 12 * netsim.Second
	names := []string{"DF", "FT", "HX", "JF", "SF", "XP"}
	// One cell per (topology, size): the ECMP baseline the speedup columns
	// divide by lives in the same cell as the series compared against it.
	if err := runCells(o, tab, len(names)*len(sizes), func(c *Cell) error {
		name := names[c.Index/len(sizes)]
		size := sizes[c.Index%len(sizes)]
		t := suite[name]
		pat := traffic.AdversarialOffDiagonal(t)
		var base stats.Summary
		for _, s := range tcpSeriesSet() {
			fab, err := core.Build(t, o.coreCfg(s.layers, s.rho))
			if err != nil {
				return err
			}
			cfg := netsim.TCPDefaults(netsim.TransportTCP)
			cfg.LB = s.lb
			// Synchronized starts: at this scaled-down N, Poisson
			// staggering would dissolve the path collisions the figure
			// studies (the paper's N≈10k runs have enough concurrent
			// flows for lambda=200 to keep collisions persistent).
			res, err := runSeries(o, fab, cfg, pat, size, 0, horizon, c.Seed)
			if err != nil {
				return err
			}
			fct := netsim.SummarizeFCT(res)
			if s.name == "ECMP" {
				base = fct
			}
			spMean, spTail := 0.0, 0.0
			if fct.Mean > 0 {
				spMean = base.Mean / fct.Mean
			}
			if fct.P99 > 0 {
				spTail = base.P99 / fct.P99
			}
			c.AddRowf(name, size/1000, s.name, fct.Mean, fct.P99, spMean, spTail)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig15(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 15: 1MiB-flow FCT distribution on SF (TCP)",
		Headers: []string{"series", "p10 ms", "p50 ms", "p90 ms", "p99 ms", "mean ms"},
	}
	lambda := 200.0
	horizon := 12 * netsim.Second
	pat := traffic.RandomizeMapping(traffic.RandomPermutation(rng, sf.N()), rng)
	// Both simulated series face the identical Poisson arrival process.
	simSeed := sharedSeed(o, 0)
	series := []tcpSeries{
		{"FatPaths(TCP)", netsim.LBFatPaths, 4, 0.6},
		{"ECMP", netsim.LBECMP, 1, 1},
	}
	// Cell 0 is the M/M/1-PS queueing-model prediction at the access link;
	// cells 1.. are the simulated series.
	if err := runCells(o, tab, 1+len(series), func(c *Cell) error {
		if c.Index == 0 {
			model := QueueModelSample(c.Rng, 4000, 1<<20, 10e9, lambda, 20*netsim.Microsecond)
			c.AddRowf("queueing model", model.P10, model.P50, model.P90, model.P99, model.Mean)
			return nil
		}
		s := series[c.Index-1]
		fab, err := core.Build(sf, o.coreCfg(s.layers, s.rho))
		if err != nil {
			return err
		}
		cfg := netsim.TCPDefaults(netsim.TransportTCP)
		cfg.LB = s.lb
		res, err := runSeries(o, fab, cfg, pat, 1<<20, lambda, horizon, simSeed)
		if err != nil {
			return err
		}
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(s.name, fct.P10, fct.P50, fct.P90, fct.P99, fct.Mean)
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig16(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	rhos := []float64{0.5, 0.7, 0.9, 1.0}
	if !o.Quick {
		rhos = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	tab := &stats.Table{
		Title:   "Fig 16: impact of rho on 1MiB-flow FCT (TCP, n=4)",
		Headers: []string{"topology", "rho", "mean ms", "p10 ms", "p99 ms"},
	}
	horizon := 12 * netsim.Second
	names := []string{"DF", "JF", "HX", "SF", "XP"}
	if err := runCells(o, tab, len(names)*len(rhos), func(c *Cell) error {
		ti := c.Index / len(rhos)
		name := names[ti]
		rho := rhos[c.Index%len(rhos)]
		t := suite[name]
		pat := traffic.AdversarialOffDiagonal(t)
		fab, err := core.Build(t, o.coreCfg(4, rho))
		if err != nil {
			return err
		}
		cfg := netsim.TCPDefaults(netsim.TransportTCP)
		// The rho sweep of one topology compares against the same workload.
		res, err := runSeries(o, fab, cfg, pat, 1<<20, 200, horizon, sharedSeed(o, uint64(ti)))
		if err != nil {
			return err
		}
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(name, rho, fct.Mean, fct.P10, fct.P99)
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig17(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := simSuite(o, rng)
	if err != nil {
		return nil, err
	}
	sizes := []int64{20e3, 200e3}
	if !o.Quick {
		sizes = append(sizes, 2e6)
	}
	rounds := pick(o, 3, 5)
	tab := &stats.Table{
		Title:   "Fig 17: stencil+barrier completion time, speedup over ECMP (TCP)",
		Headers: []string{"topology", "flow KB", "series", "total ms", "speedup"},
	}
	names := []string{"DF", "FT", "HX", "JF", "SF", "XP"}
	pats := make([]traffic.Pattern, len(names))
	for i, name := range names {
		pats[i] = traffic.RandomizeMapping(traffic.DefaultStencil(suite[name].N()), rng)
	}
	// One cell per (topology, size); the series loop stays inside so the
	// ECMP total the speedups divide by is computed alongside.
	if err := runCells(o, tab, len(names)*len(sizes), func(c *Cell) error {
		ti := c.Index / len(sizes)
		name := names[ti]
		size := sizes[c.Index%len(sizes)]
		t := suite[name]
		var base netsim.Time
		for _, s := range tcpSeriesSet() {
			fab, err := core.Build(t, o.coreCfg(s.layers, s.rho))
			if err != nil {
				return err
			}
			cfg := netsim.TCPDefaults(netsim.TransportTCP)
			cfg.LB = s.lb
			total, _ := fab.RunStencilRounds(cfg, pats[ti], size, rounds, 6*netsim.Second, c.Seed)
			if s.name == "ECMP" {
				base = total
			}
			sp := 0.0
			if total > 0 {
				sp = float64(base) / float64(total)
			}
			c.AddRowf(name, size/1000, s.name, total.Seconds()*1e3, sp)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig20(o Options) (*stats.Table, error) {
	n := pick(o, 24, 60)
	st, err := topo.Star(n)
	if err != nil {
		return nil, err
	}
	fab, err := core.Build(st, o.coreCfg(1, 1))
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 20: 2MB-flow FCT vs arrival rate on a crossbar (TCP)",
		Headers: []string{"lambda", "p10 ms", "mean ms", "p90 ms", "completed"},
	}
	rng := graph.NewRand(o.Seed)
	lambdas := []float64{100, 250, 500, 800}
	pats := make([]traffic.Pattern, len(lambdas))
	for i := range lambdas {
		pats[i] = traffic.RandomUniform(rng, n)
	}
	if err := runCells(o, tab, len(lambdas), func(c *Cell) error {
		cfg := netsim.TCPDefaults(netsim.TransportTCP)
		cfg.LB = netsim.LBMinimalLayer
		res, err := runSeries(o, fab, cfg, pats[c.Index], 2e6, lambdas[c.Index], 10*netsim.Second, c.Seed)
		if err != nil {
			return err
		}
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(lambdas[c.Index], fct.P10, fct.Mean, fct.P90, fmtPct(netsim.CompletedFraction(res)))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig21(o Options) (*stats.Table, error) {
	n := pick(o, 24, 128)
	st, err := topo.Star(n)
	if err != nil {
		return nil, err
	}
	m := pick(o, 3, 6)
	ft, err := topo.FatTree3(m, 2)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 21: influence of lambda on baseline NDP (per-packet spray)",
		Headers: []string{"topology", "lambda", "FCT p10 ms", "mean ms", "p99 ms", "completed"},
	}
	rng := graph.NewRand(o.Seed)
	lambdas := []float64{100, 300, 500}
	type cell struct {
		fab *core.Fabric
		pat traffic.Pattern
		l   float64
	}
	var cells []cell
	for _, t := range []*topo.Topology{st, ft} {
		fab, err := core.Build(t, o.coreCfg(1, 1))
		if err != nil {
			return nil, err
		}
		for _, lambda := range lambdas {
			cells = append(cells, cell{fab, traffic.RandomUniform(rng, t.N()), lambda})
		}
	}
	if err := runCells(o, tab, len(cells), func(c *Cell) error {
		cl := cells[c.Index]
		cfg := netsim.NDPDefaults()
		cfg.LB = netsim.LBPacketSpray
		res, err := runSeries(o, cl.fab, cfg, cl.pat, 256<<10, cl.l, 10*netsim.Second, c.Seed)
		if err != nil {
			return err
		}
		fct := netsim.SummarizeFCT(res)
		c.AddRowf(cl.fab.Topo.Kind, cl.l, fct.P10, fct.Mean, fct.P99, fmtPct(netsim.CompletedFraction(res)))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runAblTransport(o Options) (*stats.Table, error) {
	m := &scenario.Matrix{
		Name: "abl-transport",
		Base: scenario.Spec{
			Topology:  scenTopo(o, "SF"),
			Pattern:   scenario.Pattern{Kind: "adversarial"},
			FlowSize:  scenario.FlowSize{Bytes: 512 << 10},
			HorizonMs: 10000,
		},
		Axes: scenario.Axes{Transports: []string{"ndp", "tcp"}},
	}
	results, err := runMatrices(o, m)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Ablation: purified (NDP-style) transport vs TCP tail-drop, identical layers",
		Headers: []string{"transport", "mean FCT ms", "p99 ms", "drops", "trims"},
	}
	for _, r := range results {
		label := "tcp"
		if r.Spec.Transport == "ndp" {
			label = "purified"
		}
		tab.AddRowf(label, r.FCT.Mean, r.FCT.P99, r.Drops, r.Trims)
	}
	return tab, nil
}

func runAblConstruction(o Options) (*stats.Table, error) {
	m := &scenario.Matrix{
		Name: "abl-construction",
		Base: scenario.Spec{
			Topology:  scenTopo(o, "SF"),
			Layers:    5,
			Rho:       0.6,
			Pattern:   scenario.Pattern{Kind: "worst-case", Intensity: 0.55},
			FlowSize:  scenario.FlowSize{Bytes: 256 << 10},
			HorizonMs: 8000,
			MAT:       true,
		},
		Axes: scenario.Axes{Constructions: []string{"random", "min-interference"}},
	}
	results, err := runMatrices(o, m)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Ablation: layer construction scheme (MAT on worst-case pattern + sim FCT)",
		Headers: []string{"scheme", "MAT T", "sim mean FCT ms"},
	}
	for _, r := range results {
		tab.AddRowf(r.Spec.Construction, r.MAT, r.FCT.Mean)
	}
	return tab, nil
}

func runAblRandomization(o Options) (*stats.Table, error) {
	m := &scenario.Matrix{
		Name: "abl-randomization",
		Base: scenario.Spec{
			Topology:  scenTopo(o, "SF"),
			FlowSize:  scenario.FlowSize{Bytes: 512 << 10},
			HorizonMs: 8000,
		},
		Axes: scenario.Axes{Patterns: []scenario.Pattern{
			{Kind: "adversarial"},
			{Kind: "adversarial", Randomize: true},
		}},
	}
	results, err := runMatrices(o, m)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Ablation: randomized workload mapping (§III-D)",
		Headers: []string{"mapping", "mean MiB/s", "p99 FCT ms"},
	}
	for _, r := range results {
		mapping := "skewed"
		if r.Spec.Pattern.Randomize {
			mapping = "randomized"
		}
		tab.AddRowf(mapping, r.Throughput.Mean, r.FCT.P99)
	}
	return tab, nil
}
