package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-construction", "abl-randomization", "abl-transport",
		"ext-failures", "ext-mptcp", "ext-tables",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig19", "fig2", "fig20", "fig21", "fig4", "fig6",
		"fig7", "fig8", "fig9", "tab4", "tab5",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), ids())
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("registry[%d]=%s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil || e.ID != "fig4" {
		t.Fatal("fig4 lookup failed")
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID must error")
	}
}

func TestFig4Collisions(t *testing.T) {
	tab, err := runFig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3 topologies x 5 patterns.
	if len(tab.Rows) != 15 {
		t.Fatalf("%d rows, want 15", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"Clique", "SF", "DF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in output:\n%s", want, out)
		}
	}
}

func TestFig6MinimalPaths(t *testing.T) {
	tab, err := runFig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 topologies + 5 equivalent JFs.
	if len(tab.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(tab.Rows))
	}
}

func TestTable4(t *testing.T) {
	tab, err := runTable4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
}

func TestTable5AndFig19(t *testing.T) {
	tab, err := runTable5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("tab5: %d rows, want 7", len(tab.Rows))
	}
	tab19, err := runFig19(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab19.Rows) < 10 {
		t.Fatalf("fig19: %d rows", len(tab19.Rows))
	}
}

func TestFig10Cost(t *testing.T) {
	tab, err := runFig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
}

func TestQueueModel(t *testing.T) {
	sum := QueueModelSample(newTestRand(), 2000, 1<<20, 10e9, 200, 20_000)
	if sum.Mean <= 0 {
		t.Fatal("model mean must be positive")
	}
	// 1MiB at 10G is ~0.84ms; with load ~0.17 the mean should be close to
	// the unloaded value but above it.
	if sum.Mean < 0.8 || sum.Mean > 3 {
		t.Fatalf("model mean %f ms out of expected band", sum.Mean)
	}
	if sum.P99 < sum.P50 {
		t.Fatal("percentiles out of order")
	}
}

func TestLayerCountComparison(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	tab, err := LayerCountComparison(sf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
}

// The packet-simulation experiments are exercised end-to-end (including
// full table content) by the golden-table harness in golden_test.go; the
// heaviest figures additionally run as benchmarks (bench_test.go at the
// repository root) and via cmd/experiments.

// TestMalformedPatternRejected: runSeries (the gate every hand-rolled
// simulation runner funnels through; scenario-backed runners validate in
// internal/scenario) must reject an out-of-range or self-flow pattern with
// a useful error instead of simulating garbage.
func TestMalformedPatternRejected(t *testing.T) {
	sf, err := topo.SlimFly(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := core.Build(sf, core.Config{NumLayers: 2, Rho: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := traffic.Pattern{Name: "broken", N: sf.N(), Flows: []traffic.Flow{{Src: 0, Dst: int32(sf.N() + 5)}}}
	_, err = runSeries(Options{}, fab, netsim.NDPDefaults(), bad, 32<<10, 0, netsim.Second, 1)
	if err == nil {
		t.Fatal("out-of-range pattern must be rejected")
	}
	for _, want := range []string{"broken", "out of range"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q should mention %q", err, want)
		}
	}
	self := traffic.Pattern{Name: "selfie", N: sf.N(), Flows: []traffic.Flow{{Src: 3, Dst: 3}}}
	if _, err := runSeries(Options{}, fab, netsim.NDPDefaults(), self, 32<<10, 0, netsim.Second, 1); err == nil {
		t.Fatal("self-flow pattern must be rejected")
	}
}

// newTestRand returns a deterministic rng for model tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
