package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/topo"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-construction", "abl-randomization", "abl-transport",
		"ext-failures", "ext-mptcp", "ext-tables",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig19", "fig2", "fig20", "fig21", "fig4", "fig6",
		"fig7", "fig8", "fig9", "tab4", "tab5",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), ids())
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("registry[%d]=%s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil || e.ID != "fig4" {
		t.Fatal("fig4 lookup failed")
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID must error")
	}
}

func TestFig4Collisions(t *testing.T) {
	tab, err := runFig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3 topologies x 5 patterns.
	if len(tab.Rows) != 15 {
		t.Fatalf("%d rows, want 15", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"Clique", "SF", "DF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in output:\n%s", want, out)
		}
	}
}

func TestFig6MinimalPaths(t *testing.T) {
	tab, err := runFig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 topologies + 5 equivalent JFs.
	if len(tab.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(tab.Rows))
	}
}

func TestTable4(t *testing.T) {
	tab, err := runTable4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
}

func TestTable5AndFig19(t *testing.T) {
	tab, err := runTable5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("tab5: %d rows, want 7", len(tab.Rows))
	}
	tab19, err := runFig19(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab19.Rows) < 10 {
		t.Fatalf("fig19: %d rows", len(tab19.Rows))
	}
}

func TestFig10Cost(t *testing.T) {
	tab, err := runFig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
}

func TestQueueModel(t *testing.T) {
	sum := QueueModelSample(newTestRand(), 2000, 1<<20, 10e9, 200, 20_000)
	if sum.Mean <= 0 {
		t.Fatal("model mean must be positive")
	}
	// 1MiB at 10G is ~0.84ms; with load ~0.17 the mean should be close to
	// the unloaded value but above it.
	if sum.Mean < 0.8 || sum.Mean > 3 {
		t.Fatalf("model mean %f ms out of expected band", sum.Mean)
	}
	if sum.P99 < sum.P50 {
		t.Fatal("percentiles out of order")
	}
}

func TestLayerCountComparison(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	tab, err := LayerCountComparison(sf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
}

// Smoke-run the packet-simulation experiments that are cheap enough for
// unit tests; the heavier ones run as benchmarks (bench_test.go at the
// repository root) and via cmd/experiments.
func TestSimulationExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short mode")
	}
	// fig11/fig14/fig16/fig17 take tens of seconds each even in quick
	// mode; they run as benchmarks instead.
	ids := []string{
		"fig2", "fig9", "fig12", "fig13", "fig15",
		"fig20", "fig21",
		"abl-transport", "abl-construction", "abl-randomization",
		"ext-failures", "ext-mptcp", "ext-tables",
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := e.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
		})
	}
}

// newTestRand returns a deterministic rng for model tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
