package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/diversity"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// This file implements the path-diversity experiments of §IV:
// Fig 4 (collision histograms), Fig 6 (minimal path distributions),
// Fig 7 (non-minimal disjoint path distributions), Fig 8 (path
// interference), Table IV (CDP/PI at d'), Table V (topology parameters)
// and Fig 19 (edge density / radix scaling).

func init() {
	register("fig4", "Histogram of colliding paths per router pair (5 patterns; SF, DF, clique)", runFig4)
	register("fig6", "Distributions of lengths and counts of shortest paths", runFig6)
	register("fig7", "Distribution of non-minimal disjoint path counts c_l(A,B)", runFig7)
	register("fig8", "Distribution of path interference at l=2..5", runFig8)
	register("tab4", "CDP and PI at distance d' (Table IV)", runTable4)
	register("tab5", "Topology parameter table (Table V)", runTable5)
	register("fig19", "Edge density and radix vs network size", runFig19)
}

func runFig4(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	var tops []*topo.Topology
	sf, err := topo.SlimFly(pick(o, 7, 19), 0)
	if err != nil {
		return nil, err
	}
	df, err := topo.Dragonfly(pick(o, 3, 7))
	if err != nil {
		return nil, err
	}
	cl, err := topo.Complete(pick(o, 31, 100), 0)
	if err != nil {
		return nil, err
	}
	tops = append(tops, cl, sf, df)

	tab := &stats.Table{
		Title:   "Fig 4: path collisions per router pair (p = k'/D)",
		Headers: []string{"topology", "pattern", "pairs", "max", "frac>=4", "frac>=9"},
	}
	type cell struct {
		t   *topo.Topology
		pat traffic.Pattern
	}
	var cells []cell
	for _, t := range tops {
		n := t.N()
		for _, p := range []traffic.Pattern{
			traffic.RandomPermutation(rng, n),
			traffic.RandomizeMapping(traffic.OffDiagonal(n, n/3+1), rng),
			traffic.RandomizeMapping(traffic.Shuffle(n), rng),
			traffic.KRandomPermutations(rng, n, 4),
			traffic.RandomizeMapping(traffic.DefaultStencil(n), rng),
		} {
			cells = append(cells, cell{t, p})
		}
	}
	if err := runCells(o, tab, len(cells), func(c *Cell) error {
		cl := cells[c.Index]
		h := diversity.Collisions(cl.t, cl.pat)
		_, max := diversity.CollisionTakeaway(h)
		c.AddRowf(cl.t.Kind, cl.pat.Name, h.Total, max,
			fmtPct(h.FractionAtLeast(4)), fmtPct(h.FractionAtLeast(9)))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig6(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Fig 6: shortest path length (lmin) and diversity (cmin) distributions",
		Headers: []string{"topology", "lmin=1", "lmin=2", "lmin=3", "lmin=4", "cmin=1", "cmin=2", "cmin=3", "cmin>3"},
	}
	// Row order interleaves each base topology with its equivalent
	// Jellyfish; the JFs are constructed in the serial prologue so every
	// cell only samples.
	var tops []*topo.Topology
	for _, t := range suite.All() {
		jf, err := topo.EquivalentJellyfish(t, rng)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t, jf)
	}
	samples := pick(o, 400, 2000)
	if err := runCells(o, tab, len(tops), func(c *Cell) error {
		t := tops[c.Index]
		mp := diversity.MinimalPaths(t.G, samples, c.Rng)
		c.AddRowf(t.Name,
			fmtPct(mp.LenHist.Fraction(1)), fmtPct(mp.LenHist.Fraction(2)),
			fmtPct(mp.LenHist.Fraction(3)), fmtPct(mp.LenHist.Fraction(4)),
			fmtPct(mp.CountHist.Fraction(1)), fmtPct(mp.CountHist.Fraction(2)),
			fmtPct(mp.CountHist.Fraction(3)), fmtPct(mp.CountHist.Fraction(4)))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig7(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	sfjf, err := topo.EquivalentJellyfish(suite.SF, rng)
	if err != nil {
		return nil, err
	}
	tops := []*topo.Topology{suite.DF, suite.HX, suite.SF, sfjf}
	tab := &stats.Table{
		Title:   "Fig 7: counts of disjoint non-minimal paths c_l(A,B) over sampled pairs",
		Headers: []string{"topology", "l", "mean", "p1", "p50", "p99"},
	}
	samples := pick(o, 150, 600)
	if err := runCells(o, tab, len(tops), func(c *Cell) error {
		t := tops[c.Index]
		hists := diversity.CDPDistribution(t.G, []int{2, 3, 4}, samples, c.Rng)
		for _, l := range []int{2, 3, 4} {
			h := hists[l]
			var sm stats.Sample
			for _, k := range h.Keys() {
				for i := int64(0); i < h.Counts[k]; i++ {
					sm.Add(float64(k))
				}
			}
			c.AddRowf(t.Name, l, h.Mean(), sm.Percentile(0.01), sm.Percentile(0.5), sm.Percentile(0.99))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig8(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	sfjf, _ := topo.EquivalentJellyfish(suite.SF, rng)
	dfjf, _ := topo.EquivalentJellyfish(suite.DF, rng)
	hxjf, _ := topo.EquivalentJellyfish(suite.HX, rng)
	tops := []*topo.Topology{suite.DF, dfjf, suite.FT, suite.HX, hxjf, suite.SF, sfjf}
	tab := &stats.Table{
		Title:   "Fig 8: path interference I^l over sampled router quadruples",
		Headers: []string{"topology", "l", "mean", "p99", "p99.9"},
	}
	samples := pick(o, 100, 500)
	ls := []int{2, 3, 4, 5}
	if err := runCells(o, tab, len(tops)*len(ls), func(c *Cell) error {
		t := tops[c.Index/len(ls)]
		l := ls[c.Index%len(ls)]
		pi := diversity.PathInterference(t.G, t.NominalRadix, l, samples, c.Rng)
		c.AddRowf(t.Name, l, pi.Raw.Mean(), pi.Raw.Percentile(0.99), pi.Raw.Percentile(0.999))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runTable4(o Options) (*stats.Table, error) {
	tab := &stats.Table{
		Title:   "Table IV: CDP (fraction of k') and PI at distance d'",
		Headers: []string{"topology", "d'", "k'", "Nr", "N", "CDP mean", "CDP 1%", "PI mean", "PI 99.9%"},
	}
	configs := topo.TableIVSet()
	if o.Quick {
		// Small-class stand-ins with the same d' structure.
		configs = quickTable4()
	}
	samples := pick(o, 120, 400)
	piSamples := pick(o, 80, 300)
	if err := runCells(o, tab, len(configs), func(cc *Cell) error {
		c := configs[cc.Index]
		t, err := c.Build(cc.Rng)
		if err != nil {
			return err
		}
		// Sample only endpoint-hosting routers: traffic never originates at
		// a fat tree's aggregation or core switches, and the paper's FT3
		// row (CDP 100%, PI 0) is an edge-to-edge statement.
		pool := diversity.HostRouters(t)
		if len(pool) == t.Nr() {
			pool = nil
		}
		cdp := diversity.CDPAmong(t.G, pool, t.NominalRadix, c.DPrim, samples, cc.Rng)
		pi := diversity.PathInterferenceAmong(t.G, pool, t.NominalRadix, c.DPrim, piSamples, cc.Rng)
		cc.AddRowf(c.Name, c.DPrim, t.NominalRadix, t.Nr(), t.N(),
			fmtPct(cdp.Mean), fmtPct(cdp.Tail1Pct), fmtPct(pi.Mean), fmtPct(pi.Tail999Pct))
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

// quickTable4 lists small-class stand-ins with the same d' per family.
func quickTable4() []topo.TableIVConfig {
	return []topo.TableIVConfig{
		{Name: "clique", DPrim: 2, Build: func(*rand.Rand) (*topo.Topology, error) { return topo.Complete(31, 31) }},
		{Name: "SF", DPrim: 3, Build: func(*rand.Rand) (*topo.Topology, error) { return topo.SlimFly(7, 0) }},
		{Name: "XP", DPrim: 3, Build: func(r *rand.Rand) (*topo.Topology, error) { return topo.Xpander(8, 8, 0, r) }},
		{Name: "HX", DPrim: 3, Build: func(*rand.Rand) (*topo.Topology, error) { return topo.HyperX(3, 5, 0) }},
		{Name: "DF", DPrim: 4, Build: func(*rand.Rand) (*topo.Topology, error) { return topo.Dragonfly(3) }},
		{Name: "FT3", DPrim: 4, Build: func(*rand.Rand) (*topo.Topology, error) { return topo.FatTree3(5, 2) }},
	}
}

func runTable5(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	tab := &stats.Table{
		Title:   "Table V: topology parameters",
		Headers: []string{"topology", "Nr", "N", "k'", "p(avg)", "D", "M(links)"},
	}
	all := suite.All()
	cl, _ := topo.Complete(pick(o, 31, 100), 0)
	jf, err := topo.EquivalentJellyfish(suite.SF, rng)
	if err != nil {
		return nil, err
	}
	all = append(all, cl, jf)
	if err := runCells(o, tab, len(all), func(c *Cell) error {
		t := all[c.Index]
		d := t.Diameter
		if d < 0 {
			d, _ = t.G.DiameterAndMean()
		}
		c.AddRowf(t.Name, t.Nr(), t.N(), t.NominalRadix,
			fmt.Sprintf("%.1f", t.MeanConcentration()), d, t.G.M())
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig19(o Options) (*stats.Table, error) {
	tab := &stats.Table{
		Title:   "Fig 19: edge density and total radix vs N",
		Headers: []string{"topology", "N", "edge density", "radix k"},
	}
	qs := []int{5, 7, 11, 13}
	dfs := []int{2, 3, 4}
	ms := []int{4, 6, 8}
	ss := []int{4, 5, 6}
	if !o.Quick {
		qs = append(qs, 17, 19, 23, 29)
		dfs = append(dfs, 6, 8)
		ms = append(ms, 12, 18)
		ss = append(ss, 8, 11)
	}
	type cell struct {
		kind  string
		param int
	}
	var cells []cell
	for _, q := range qs {
		cells = append(cells, cell{"SF", q})
	}
	for _, p := range dfs {
		cells = append(cells, cell{"DF", p})
	}
	for _, m := range ms {
		cells = append(cells, cell{"FT", m})
	}
	for _, s := range ss {
		cells = append(cells, cell{"HX3", s})
	}
	if err := runCells(o, tab, len(cells), func(c *Cell) error {
		cl := cells[c.Index]
		var (
			t   *topo.Topology
			err error
		)
		switch cl.kind {
		case "SF":
			t, err = topo.SlimFly(cl.param, 0)
		case "DF":
			t, err = topo.Dragonfly(cl.param)
		case "FT":
			t, err = topo.FatTree3(cl.param, 1)
		case "HX3":
			t, err = topo.HyperX(3, cl.param, 0)
		}
		if err != nil {
			return err
		}
		c.AddRowf(cl.kind, t.N(), t.EdgeDensity(), t.TotalRadix())
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

// pick selects by scale.
func pick(o Options, quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

func sizeClass(o Options) topo.SizeClass {
	if o.Quick {
		return topo.Small
	}
	return topo.Medium
}
