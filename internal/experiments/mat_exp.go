package experiments

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/mcf"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// This file implements the theoretical-analysis experiments of §VI:
// Fig 9 (maximum achievable throughput of FatPaths vs SPAIN, PAST and
// k-shortest paths under the worst-case matched pattern at intensity 0.55)
// and the cost model of Fig 10.

func init() {
	register("fig9", "Maximum achievable throughput: FatPaths vs SPAIN/PAST/k-shortest (worst-case pattern, intensity 0.55)", runFig9)
	register("fig10", "Cost per endpoint breakdown (100GbE model)", runFig10)
}

// matFor computes the path-restricted MAT for one scheme on one topology.
func matFor(t *topo.Topology, scheme core.LayerScheme, nLayers int, comms []mcf.Commodity, seed int64, quick bool) (float64, error) {
	rho := 0.6
	fab, err := core.Build(t, core.Config{NumLayers: nLayers, Rho: rho, Scheme: scheme, Seed: seed})
	if err != nil {
		return 0, err
	}
	ps := mcf.FromForwarding(t.G, fab.Fwd, comms)
	// Commodities unreachable in sparse baseline layers fall back to the
	// full layer's single shortest path, which FromForwarding already
	// includes (layer 0 is always present).
	if quick {
		// Small instances: exact simplex.
		return mcf.PathMAT(ps, 1)
	}
	return mcf.PathMATApprox(ps, 1, 0.10)
}

func runFig9(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	var tops []*topo.Topology
	sf, err := topo.SlimFly(pick(o, 5, 11), 0)
	if err != nil {
		return nil, err
	}
	df, err := topo.Dragonfly(pick(o, 2, 4))
	if err != nil {
		return nil, err
	}
	hx, err := topo.HyperX(3, pick(o, 4, 7), 0)
	if err != nil {
		return nil, err
	}
	xp, err := topo.Xpander(8, 8, 0, rng)
	if err != nil {
		return nil, err
	}
	ft, err := topo.FatTree3(pick(o, 4, 8), 2)
	if err != nil {
		return nil, err
	}
	sfjf, err := topo.EquivalentJellyfish(sf, rng)
	if err != nil {
		return nil, err
	}
	tops = append(tops, sf, df, hx, xp, ft, sfjf)

	nLayers := pick(o, 5, 9)
	tab := &stats.Table{
		Title:   "Fig 9: maximum achievable throughput T (worst-case pattern, intensity 0.55, equal layer counts)",
		Headers: []string{"topology", "N", "FatPaths(minPI)", "FatPaths(random)", "SPAIN", "PAST", "k-shortest"},
	}
	pats := make([]traffic.Pattern, len(tops))
	for i, t := range tops {
		pats[i] = traffic.WorstCase(t, 0.55, rng)
	}
	if err := runCells(o, tab, len(tops), func(c *Cell) error {
		t := tops[c.Index]
		comms := mcf.CommoditiesFromPattern(t, pats[c.Index])
		if len(comms) == 0 {
			return nil
		}
		minPI, err := matFor(t, core.MinInterference, nLayers, comms, o.Seed, o.Quick)
		if err != nil {
			return err
		}
		random, err := matFor(t, core.RandomSampling, nLayers, comms, o.Seed, o.Quick)
		if err != nil {
			return err
		}
		spain, err := matFor(t, core.SPAINScheme, nLayers, comms, o.Seed, o.Quick)
		if err != nil {
			return err
		}
		past, err := matFor(t, core.PASTScheme, nLayers, comms, o.Seed, o.Quick)
		if err != nil {
			return err
		}
		// k-shortest paths: k = number of layers for resource parity.
		kspPS := mcf.FromKShortest(t.G, comms, nLayers)
		var ksp float64
		if o.Quick {
			ksp, err = mcf.PathMAT(kspPS, 1)
		} else {
			ksp, err = mcf.PathMATApprox(kspPS, 1, 0.10)
		}
		if err != nil {
			return err
		}
		c.AddRowf(t.Name, t.N(), minPI, random, spain, past, ksp)
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

func runFig10(o Options) (*stats.Table, error) {
	rng := graph.NewRand(o.Seed)
	suite, err := topo.BuildSuite(sizeClass(o), rng)
	if err != nil {
		return nil, err
	}
	jf, err := topo.EquivalentJellyfish(suite.SF, rng)
	if err != nil {
		return nil, err
	}
	model := topo.Default100GbE()
	tab := &stats.Table{
		Title:   "Fig 10: cost per endpoint (k$), 100GbE model",
		Headers: []string{"topology", "N", "switches", "endpoint links", "interconnect links", "total"},
	}
	all := append(suite.All(), jf)
	if err := runCells(o, tab, len(all), func(c *Cell) error {
		t := all[c.Index]
		cost := model.Cost(t)
		c.AddRowf(t.Name, t.N(), cost.Switches, cost.EndpointLinks, cost.InterconnLinks, cost.Total())
		return nil
	}); err != nil {
		return nil, err
	}
	return tab, nil
}

// LayerCountComparison supports the §VI-B analysis: layers needed per
// scheme to cover the network's links (FatPaths needs O(1); SPAIN/PAST
// need O(k') to O(N_r) tree layers).
func LayerCountComparison(t *topo.Topology, seed int64) (*stats.Table, error) {
	rng := graph.NewRand(seed)
	tab := &stats.Table{
		Title:   "§VI-B: layers and edges per layer by scheme",
		Headers: []string{"scheme", "layers", "edges/layer (max)", "links covered"},
	}
	add := func(name string, ls *layers.LayerSet) {
		maxE := 0
		covered := make([]bool, t.G.M())
		for _, l := range ls.Layers[1:] {
			if l.EdgeCount > maxE {
				maxE = l.EdgeCount
			}
			for id, on := range l.Mask {
				if on {
					covered[id] = true
				}
			}
		}
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		tab.AddRowf(name, ls.N()-1, maxE, fmtPct(float64(n)/float64(t.G.M())))
	}
	fp, err := layers.Random(t.G, 9, 0.6, rng)
	if err != nil {
		return nil, err
	}
	add("FatPaths(random, n=9)", fp)
	sp, err := layers.SPAIN(t.G, layers.SPAINConfig{K: 2}, rng)
	if err != nil {
		return nil, err
	}
	add("SPAIN(all)", sp)
	pa, err := layers.PAST(t.G, 9, layers.PASTNonMinimal, rng)
	if err != nil {
		return nil, err
	}
	add("PAST(n=9)", pa)
	return tab, nil
}
