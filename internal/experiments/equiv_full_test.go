package experiments

import (
	"os"
	"testing"
)

// TestFullEquivalence runs EVERY registered experiment at Parallelism 1
// and 8 and asserts byte-identical tables — the acceptance criterion for
// the parallel runtime. The heavy simulation figures make this a
// multi-minute run, so it is gated behind FATPATHS_FULL_EQUIV=1;
// TestParallelSerialEquivalence covers a representative sample on every
// `go test`.
func TestFullEquivalence(t *testing.T) {
	if os.Getenv("FATPATHS_FULL_EQUIV") == "" {
		t.Skip("set FATPATHS_FULL_EQUIV=1 to compare all experiments at parallelism 1 vs 8")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serialTab, err := e.Run(Options{Quick: true, Seed: 11, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parTab, err := e.Run(Options{Quick: true, Seed: 11, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if serialTab.String() != parTab.String() {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serialTab, parTab)
			}
		})
	}
}
