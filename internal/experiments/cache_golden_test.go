package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// scenarioBacked lists the experiment IDs that run through the scenario
// engine and therefore gain the durable runtime's content-addressed
// cache via Options.CacheDir.
var scenarioBacked = []string{
	"fig2", "fig11", "fig13", "abl-transport", "abl-construction", "abl-randomization",
}

// shortCacheGolden is the subset exercised under -short.
var shortCacheGolden = map[string]bool{"fig2": true, "abl-transport": true}

// TestCacheGolden: scenario-backed experiments render byte-identical
// golden tables with caching on — once cold (populating the cache) and
// once warm (every cell a hit). This is the replay-equals-rerun pin at
// the experiment level: a cached result that changed any byte of any
// golden table fails here.
func TestCacheGolden(t *testing.T) {
	byID := map[string]Experiment{}
	for _, e := range All() {
		byID[e.ID] = e
	}
	for _, id := range scenarioBacked {
		e, ok := byID[id]
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !shortCacheGolden[id] {
				t.Skip("subset only under -short")
			}
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			dir := t.TempDir()
			for _, phase := range []string{"cold", "warm"} {
				tab, err := e.Run(Options{Quick: true, Seed: goldenSeed, Parallelism: 8, CacheDir: dir})
				if err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				if got := tab.String(); got != string(want) {
					t.Errorf("%s cached table differs from golden:\n--- got ---\n%s\n--- want ---\n%s", phase, got, want)
				}
			}
		})
	}
}
