package layers

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// SPAIN (Mudigonda et al., NSDI'10), per Appendix C-B / Listing 4: for
// every destination router, compute k paths from every other router
// preferring link-disjointness (greedy: repeatedly take the lightest
// shortest path and penalize its edges by |E|); color the per-destination
// path set so that paths sharing a vertex with different next hops get
// different colors (the vlan-compatible predicate); each color class forms
// a candidate subgraph; finally, greedily merge subgraphs across
// destinations whenever the union stays acyclic, so every merged layer is a
// forest deployable as one VLAN.

// SPAINConfig parametrizes the construction.
type SPAINConfig struct {
	// K is the number of paths computed per (source, destination) pair.
	K int
	// MaxLayers optionally truncates the merged layer list to the n
	// heaviest layers (plus the implicit full layer 0) so that comparisons
	// against FatPaths use equally many layers (§VI-C). 0 keeps all.
	MaxLayers int
}

// SPAIN builds a LayerSet with the SPAIN algorithm. Layer 0 is the full
// graph (used as the shortest-path fallback, mirroring how SPAIN falls
// back to flooding/spanning-tree when VLAN paths are unavailable); layers
// 1.. are the merged VLAN forests.
func SPAIN(g *graph.Graph, cfg SPAINConfig, rng *rand.Rand) (*LayerSet, error) {
	if cfg.K < 1 {
		cfg.K = 2
	}
	nr := g.N()
	type pathT []int32
	// 1. Per-destination path computation (Listing 4, first stage).
	//    perDest[u] = all paths from any v to u.
	perDest := make([][]pathT, nr)
	w := make([]float64, g.M())
	for u := 0; u < nr; u++ {
		var paths []pathT
		for v := 0; v < nr; v++ {
			if v == u {
				continue
			}
			for i := range w {
				w[i] = 1 // base hop cost; disjointness penalty added below
			}
			seen := map[string]bool{}
			for k := 0; k < cfg.K; k++ {
				p, _ := g.Dijkstra(v, u, func(id int) float64 { return w[id] }, nil, nil)
				if p == nil {
					break
				}
				key := fingerprint(p)
				if seen[key] {
					break // no further distinct path found
				}
				seen[key] = true
				paths = append(paths, p)
				for i := 0; i+1 < len(p); i++ {
					id := g.EdgeBetween(int(p[i]), int(p[i+1]))
					w[id] += float64(g.M()) // prefer link-disjoint alternatives
				}
			}
		}
		perDest[u] = paths
	}

	// 2. Color each destination's paths: conflicting paths (sharing a
	//    vertex but diverging afterwards) get different colors.
	type subgraph struct {
		mask  []bool
		count int
	}
	var candidates []*subgraph
	for u := 0; u < nr; u++ {
		paths := perDest[u]
		if len(paths) == 0 {
			continue
		}
		adj := make([][]int, len(paths))
		for i := 0; i < len(paths); i++ {
			for j := i + 1; j < len(paths); j++ {
				if !vlanCompatible(paths[i], paths[j]) {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		colors := greedyColoring(adj, rng)
		nColors := 0
		for _, c := range colors {
			if c+1 > nColors {
				nColors = c + 1
			}
		}
		subs := make([]*subgraph, nColors)
		for i := range subs {
			subs[i] = &subgraph{mask: make([]bool, g.M())}
		}
		for pi, p := range paths {
			sub := subs[colors[pi]]
			for i := 0; i+1 < len(p); i++ {
				id := g.EdgeBetween(int(p[i]), int(p[i+1]))
				if !sub.mask[id] {
					sub.mask[id] = true
					sub.count++
				}
			}
		}
		candidates = append(candidates, subs...)
	}

	// 3. Greedy merging in random order: union two subgraphs if acyclic.
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var merged []*subgraph
	for _, c := range candidates {
		placed := false
		for _, m := range merged {
			if acyclicUnion(g, m.mask, c.mask) {
				for id, on := range c.mask {
					if on && !m.mask[id] {
						m.mask[id] = true
						m.count++
					}
				}
				placed = true
				break
			}
		}
		if !placed {
			merged = append(merged, &subgraph{mask: append([]bool(nil), c.mask...), count: c.count})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].count > merged[j].count })
	if cfg.MaxLayers > 0 && len(merged) > cfg.MaxLayers {
		merged = merged[:cfg.MaxLayers]
	}
	ls := &LayerSet{Base: g, Scheme: "spain"}
	ls.Layers = append(ls.Layers, fullLayer(g))
	for _, m := range merged {
		ls.Layers = append(ls.Layers, Layer{Mask: m.mask, EdgeCount: m.count})
	}
	return ls, nil
}

// vlanCompatible implements the listing's predicate: whenever the two paths
// visit a common vertex they must continue to the same successor, so that
// per-destination forwarding within one VLAN is unambiguous.
func vlanCompatible(pi, pj []int32) bool {
	next := make(map[int32]int32, len(pi))
	for i := 0; i+1 < len(pi); i++ {
		next[pi[i]] = pi[i+1]
	}
	for j := 0; j+1 < len(pj); j++ {
		if n, ok := next[pj[j]]; ok && n != pj[j+1] {
			return false
		}
	}
	return true
}

// greedyColoring colors a conflict graph given as adjacency lists,
// processing vertices in random order.
func greedyColoring(adj [][]int, rng *rand.Rand) []int {
	n := len(adj)
	order := rng.Perm(n)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	used := map[int]bool{}
	for _, v := range order {
		for k := range used {
			delete(used, k)
		}
		for _, u := range adj[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// acyclicUnion reports whether the union of two edge masks is a forest.
func acyclicUnion(g *graph.Graph, a, b []bool) bool {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for id, e := range g.Edges() {
		if !a[id] && !b[id] {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			return false
		}
		parent[ru] = rv
	}
	return true
}

func fingerprint(p []int32) string {
	b := make([]byte, 0, len(p)*4)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
