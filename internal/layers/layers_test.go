package layers

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestRandomLayersBasic(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(1)
	ls, err := Random(sf.G, 5, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ls.N() != 5 {
		t.Fatalf("n=%d, want 5", ls.N())
	}
	// Layer 0 is the full graph.
	if ls.Layers[0].EdgeCount != sf.G.M() {
		t.Fatal("layer 0 must contain all links")
	}
	// Sparse layers: roughly rho fraction of edges, and connected.
	for i := 1; i < ls.N(); i++ {
		frac := float64(ls.Layers[i].EdgeCount) / float64(sf.G.M())
		if frac < 0.4 || frac > 0.8 {
			t.Fatalf("layer %d keeps %.2f of edges, want ≈0.6", i, frac)
		}
		if !sf.G.SubsetConnected(ls.Layers[i].Mask) {
			t.Fatalf("layer %d disconnects the network", i)
		}
	}
}

func TestRandomLayersRejectsBadParams(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	rng := graph.NewRand(2)
	if _, err := Random(g, 0, 0.5, rng); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := Random(g, 2, 0, rng); err == nil {
		t.Error("rho=0 must fail")
	}
	if _, err := Random(g, 2, 1.5, rng); err == nil {
		t.Error("rho>1 must fail")
	}
	// A path graph cannot lose any edge and stay connected: with rho=0.1
	// the sampler must either return the (unlikely) full layer or fail.
	if ls, err := Random(g, 2, 0.1, rng); err == nil {
		if !g.SubsetConnected(ls.Layers[1].Mask) {
			t.Error("returned disconnected layer")
		}
	}
}

func TestForwardingLoopFreeAndComplete(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(3)
	ls, err := Random(sf.G, 4, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := NewForwarding(ls, 1)
	if f.NumLayers() != 4 {
		t.Fatal("forwarding must cover all layers")
	}
	nr := sf.Nr()
	for layer := 0; layer < f.NumLayers(); layer++ {
		for s := 0; s < nr; s++ {
			for d := 0; d < nr; d++ {
				if s == d {
					continue
				}
				// Connected layers: all pairs reachable, path terminates.
				if !f.Reachable(layer, s, d) {
					t.Fatalf("layer %d: %d->%d unreachable in connected layer", layer, s, d)
				}
				if hops := f.PathLen(layer, s, d); hops < 1 || hops > nr {
					t.Fatalf("layer %d: path %d->%d has %d hops", layer, s, d, hops)
				}
			}
		}
	}
}

func TestForwardingMinimalWithinLayer(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(4)
	ls, _ := Random(sf.G, 3, 0.6, rng)
	f := NewForwarding(ls, 1)
	// Within each layer, the forwarding path length equals the BFS
	// distance in the layer subgraph (minimal routing per layer, §V-B).
	for layer := 0; layer < ls.N(); layer++ {
		sub := sf.G.Subgraph(ls.Layers[layer].Mask)
		for s := 0; s < sf.Nr(); s += 7 {
			dist := sub.BFS(s)
			for d := 0; d < sf.Nr(); d += 5 {
				if s == d {
					continue
				}
				if got := f.PathLen(layer, s, d); got != int(dist[d]) {
					t.Fatalf("layer %d %d->%d: forwarding %d hops, BFS %d", layer, s, d, got, dist[d])
				}
			}
		}
	}
}

func TestLayerLocalMinimalIsGloballyNonMinimal(t *testing.T) {
	// The core FatPaths property (§V): minimal routes within a sparse layer
	// are usually non-minimal on the full topology, exposing extra paths.
	sf, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(5)
	ls, _ := Random(sf.G, 6, 0.5, rng)
	f := NewForwarding(ls, 1)
	longer := 0
	pairs := 0
	for i := 0; i < 300; i++ {
		s, d := graph.SampleDistinctPair(rng, sf.Nr())
		base := f.PathLen(0, s, d)
		pairs++
		for l := 1; l < ls.N(); l++ {
			if f.PathLen(l, s, d) > base {
				longer++
				break
			}
		}
	}
	if float64(longer)/float64(pairs) < 0.5 {
		t.Fatalf("only %d/%d pairs gained a non-minimal route; layers are not exposing diversity", longer, pairs)
	}
}

func TestLayerPathLengthsAndPaths(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(6)
	ls, _ := Random(sf.G, 4, 0.7, rng)
	f := NewForwarding(ls, 1)
	s, d := 0, 17
	lens := f.LayerPathLengths(s, d)
	paths := LayerPaths(f, s, d)
	if len(paths) != len(lens) {
		t.Fatalf("%d paths vs %d lengths", len(paths), len(lens))
	}
	for i, p := range paths {
		if len(p)-1 != lens[i] {
			t.Fatalf("path %d has %d hops, length table says %d", i, len(p)-1, lens[i])
		}
		if p[0] != int32(s) || p[len(p)-1] != int32(d) {
			t.Fatal("path endpoints wrong")
		}
		for j := 0; j+1 < len(p); j++ {
			if !sf.G.HasEdge(int(p[j]), int(p[j+1])) {
				t.Fatal("path uses non-edge")
			}
		}
	}
}

func TestMinInterferenceLayers(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(7)
	ls, err := MinInterference(sf.G, MinInterferenceConfig{N: 4, ExtraHops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ls.N() != 4 {
		t.Fatalf("n=%d, want 4", ls.N())
	}
	if ls.Layers[0].EdgeCount != sf.G.M() {
		t.Fatal("layer 0 must be full")
	}
	for i := 1; i < ls.N(); i++ {
		if ls.Layers[i].EdgeCount == 0 {
			t.Fatalf("layer %d is empty", i)
		}
		if ls.Layers[i].EdgeCount >= sf.G.M() {
			t.Fatalf("layer %d is not sparsified", i)
		}
	}
	// Forwarding over these layers must produce some paths one hop above
	// minimal (the +1 preference).
	f := NewForwarding(ls, 1)
	nonMinimal := 0
	for i := 0; i < 200; i++ {
		s, d := graph.SampleDistinctPair(rng, sf.Nr())
		base := f.PathLen(0, s, d)
		for l := 1; l < ls.N(); l++ {
			if pl := f.PathLen(l, s, d); pl == base+1 {
				nonMinimal++
				break
			}
		}
	}
	if nonMinimal == 0 {
		t.Fatal("min-interference layers expose no almost-minimal paths")
	}
}

func TestMinInterferenceInvalid(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	rng := graph.NewRand(8)
	if _, err := MinInterference(g, MinInterferenceConfig{N: 0}, rng); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := MinInterference(g, MinInterferenceConfig{N: 2, ExtraHops: -1}, rng); err == nil {
		t.Error("negative ExtraHops must fail")
	}
}

func TestSPAINLayersAreForests(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(9)
	ls, err := SPAIN(sf.G, SPAINConfig{K: 2, MaxLayers: 16}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ls.N() < 2 {
		t.Fatal("SPAIN produced no VLAN layers")
	}
	empty := make([]bool, sf.G.M())
	for i := 1; i < ls.N(); i++ {
		if !acyclicUnion(sf.G, ls.Layers[i].Mask, empty) {
			t.Fatalf("SPAIN layer %d contains a cycle (not a VLAN-deployable forest)", i)
		}
	}
}

func TestVlanCompatible(t *testing.T) {
	// Paths sharing vertex 1 with the same successor 2 are compatible.
	a := []int32{0, 1, 2}
	b := []int32{3, 1, 2}
	if !vlanCompatible(a, b) {
		t.Fatal("same-successor paths must be compatible")
	}
	// Diverging at vertex 1: incompatible.
	c := []int32{3, 1, 4}
	if vlanCompatible(a, c) {
		t.Fatal("diverging paths must be incompatible")
	}
	// Disjoint paths are compatible.
	d := []int32{5, 6, 7}
	if !vlanCompatible(a, d) {
		t.Fatal("disjoint paths must be compatible")
	}
}

func TestGreedyColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := graph.NewRand(seed)
		n := 2 + rng.Intn(30)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		colors := greedyColoring(adj, rng)
		for v := range adj {
			for _, u := range adj[v] {
				if colors[v] == colors[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPASTLayersAreSpanningTrees(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(10)
	for _, variant := range []PASTVariant{PASTBaseline, PASTNonMinimal} {
		ls, err := PAST(sf.G, 4, variant, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < ls.N(); i++ {
			if ls.Layers[i].EdgeCount != sf.Nr()-1 {
				t.Fatalf("PAST layer %d has %d edges, want Nr-1=%d", i, ls.Layers[i].EdgeCount, sf.Nr()-1)
			}
			if !sf.G.SubsetConnected(ls.Layers[i].Mask) {
				t.Fatalf("PAST layer %d does not span", i)
			}
		}
	}
}

func TestKShortestPathSets(t *testing.T) {
	hx, _ := topo.HyperX(2, 4, 0)
	pairs := [][2]int{{0, 5}, {1, 10}}
	sets := KShortestPathSets(hx.G, pairs, 3)
	if len(sets) != 2 {
		t.Fatal("missing pair entries")
	}
	for pr, paths := range sets {
		if len(paths) == 0 {
			t.Fatalf("no paths for %v", pr)
		}
		for _, p := range paths {
			if int(p[0]) != pr[0] || int(p[len(p)-1]) != pr[1] {
				t.Fatal("path endpoints wrong")
			}
		}
	}
}

func TestSummarizeDiversityGrowsWithLayers(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(11)
	ls2, _ := Random(sf.G, 2, 0.6, graph.NewRand(42))
	ls8, _ := Random(sf.G, 8, 0.6, graph.NewRand(42))
	f2 := NewForwarding(ls2, 1)
	f8 := NewForwarding(ls8, 1)
	s2 := Summarize(ls2, f2, 200, graph.NewRand(2))
	s8 := Summarize(ls8, f8, 200, graph.NewRand(2))
	if s8.MeanDistinctPaths <= s2.MeanDistinctPaths {
		t.Fatalf("more layers must expose more distinct routes: n=2 gives %.2f, n=8 gives %.2f",
			s2.MeanDistinctPaths, s8.MeanDistinctPaths)
	}
	_ = rng
}

func TestForwardingDeterministicGivenSeed(t *testing.T) {
	// Tie-breaking folds the seed with (layer, src, dst) — a pure function,
	// so two independently constructed views agree everywhere, and every
	// pick is a member of the candidate set.
	sf, _ := topo.SlimFly(5, 0)
	ls, _ := Random(sf.G, 2, 0.8, graph.NewRand(12))
	f1 := NewForwarding(ls, 0)
	f2 := NewForwarding(ls, 0)
	for l := 0; l < f1.NumLayers(); l++ {
		for s := 0; s < sf.Nr(); s++ {
			for d := 0; d < sf.Nr(); d++ {
				nh := f1.Next(l, s, d)
				if nh != f2.Next(l, s, d) {
					t.Fatal("seeded forwarding must be deterministic")
				}
				if s != d && nh >= 0 {
					found := false
					for _, c := range f1.Candidates(l, s, d) {
						if c == nh {
							found = true
						}
					}
					if !found {
						t.Fatalf("Next(%d,%d,%d)=%d not among candidates", l, s, d, nh)
					}
				}
			}
		}
	}
}

func TestSizeTables(t *testing.T) {
	// The paper's worked example (§V-E): an SF with N=10,830 endpoints has
	// only Nr=722 routers, so prefix tables shrink by N/Nr = 15x.
	sf, err := topo.SlimFly(19, 15)
	if err != nil {
		t.Fatal(err)
	}
	if sf.N() != 10830 || sf.Nr() != 722 {
		t.Fatalf("SF(19,p=15): N=%d Nr=%d, want 10830/722", sf.N(), sf.Nr())
	}
	sz := SizeTables(sf, 9)
	if sz.FlatEntries != 10830*9 || sz.PrefixEntries != 722*9 {
		t.Fatalf("sizing %+v", sz)
	}
	if sz.Compression < 14.9 || sz.Compression > 15.1 {
		t.Fatalf("compression %f, want 15", sz.Compression)
	}
	if !sz.FitsVLANs {
		t.Fatal("9 layers must fit the VLAN space")
	}
	if SizeTables(sf, VLANLimit+1).FitsVLANs {
		t.Fatal("4097 layers must not fit the VLAN space")
	}
}

func TestSizeTablesFor(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	ls, _ := Random(sf.G, 3, 0.8, graph.NewRand(1))
	sz := SizeTablesFor(sf, ls)
	if sz.Layers != 3 || sz.PrefixEntries != sf.Nr()*3 {
		t.Fatalf("sizing %+v", sz)
	}
}

// Property: every BFS-built forwarding table is loop-free and minimal on
// random connected graphs with random layers.
func TestForwardingLoopFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := graph.NewRand(seed)
		n := 6 + rng.Intn(20)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i))
		}
		for i := 0; i < n; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		ls, err := Random(g, 3, 0.9, rng)
		if err != nil {
			return true // sampler could not keep the graph connected; fine
		}
		fwd := NewForwarding(ls, 1)
		for l := 0; l < ls.N(); l++ {
			sub := g.Subgraph(ls.Layers[l].Mask)
			for s := 0; s < n; s++ {
				dist := sub.BFS(s)
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					got := fwd.PathLen(l, s, d)
					if got != int(dist[d]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockAnalysis(t *testing.T) {
	// A spanning tree's routing is always deadlock-free (trees induce no
	// CDG cycles); minimal routing on a ring is the classic deadlocking
	// example (the dependency cycle around the ring).
	ringG := graph.New(6)
	for i := 0; i < 6; i++ {
		ringG.AddEdge(i, (i+1)%6)
	}
	rng := graph.NewRand(31)
	ringLS, _ := Random(ringG, 1, 1.0, rng)
	ringFwd := NewForwarding(ringLS, 1)
	rep := AnalyzeDeadlock(ringFwd, ringLS, 0)
	if rep.Acyclic {
		t.Fatal("minimal routing on a ring must have a cyclic CDG")
	}
	if rep.Channels != 12 {
		t.Fatalf("ring uses %d channels, want all 12", rep.Channels)
	}
	// PAST spanning-tree layers: acyclic CDG.
	sf, _ := topo.SlimFly(5, 0)
	past, _ := PAST(sf.G, 3, PASTNonMinimal, rng)
	pastFwd := NewForwarding(past, 1)
	for l := 1; l < past.N(); l++ {
		if rep := AnalyzeDeadlock(pastFwd, past, l); !rep.Acyclic {
			t.Fatalf("spanning-tree layer %d must be deadlock-free", l)
		}
	}
	// AnalyzeAllLayers covers every layer.
	all := AnalyzeAllLayers(pastFwd, past)
	if len(all) != past.N() {
		t.Fatalf("got %d reports, want %d", len(all), past.N())
	}
}

func TestLayerSetSerializationRoundTrip(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(32)
	ls, err := Random(sf.G, 4, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ls.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLayerSet(&buf, sf.G)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ls.N() || got.Scheme != ls.Scheme || got.Rho != ls.Rho {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range ls.Layers {
		if got.Layers[i].EdgeCount != ls.Layers[i].EdgeCount {
			t.Fatalf("layer %d edge count %d != %d", i, got.Layers[i].EdgeCount, ls.Layers[i].EdgeCount)
		}
		for id := range ls.Layers[i].Mask {
			if got.Layers[i].Mask[id] != ls.Layers[i].Mask[id] {
				t.Fatalf("layer %d mask differs at edge %d", i, id)
			}
		}
	}
	// Forwarding built from the round-tripped set is identical given the
	// same rng.
	f1 := NewForwarding(ls, 5)
	f2 := NewForwarding(got, 5)
	for l := 0; l < ls.N(); l++ {
		for s := 0; s < sf.Nr(); s += 7 {
			for d := 0; d < sf.Nr(); d += 3 {
				if f1.Next(l, s, d) != f2.Next(l, s, d) {
					t.Fatal("forwarding differs after round trip")
				}
			}
		}
	}
}

func TestLayerSetSerializationRoundTripRepaired(t *testing.T) {
	// The §V-G major-update artifact: a repaired (post-WithoutEdges) layer
	// set survives the JSON round trip with its "+repaired" scheme tag and
	// exact masks, and routing built from the round-tripped set matches.
	sf, _ := topo.SlimFly(5, 0)
	ls, err := Random(sf.G, 3, 0.7, graph.NewRand(40))
	if err != nil {
		t.Fatal(err)
	}
	failed := []int{0, 3, 9}
	repaired := ls.WithoutEdges(failed)
	if repaired.Scheme != "random+repaired" {
		t.Fatalf("scheme %q, want random+repaired", repaired.Scheme)
	}
	var buf bytes.Buffer
	if err := repaired.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLayerSet(bytes.NewReader(buf.Bytes()), sf.G)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != "random+repaired" || got.N() != repaired.N() {
		t.Fatalf("round trip lost metadata: %q, %d layers", got.Scheme, got.N())
	}
	for i := range repaired.Layers {
		if got.Layers[i].EdgeCount != repaired.Layers[i].EdgeCount {
			t.Fatalf("layer %d edge count %d != %d", i, got.Layers[i].EdgeCount, repaired.Layers[i].EdgeCount)
		}
		for id := range repaired.Layers[i].Mask {
			if got.Layers[i].Mask[id] != repaired.Layers[i].Mask[id] {
				t.Fatalf("layer %d mask differs at edge %d", i, id)
			}
		}
		for _, id := range failed {
			if got.Layers[i].Mask[id] {
				t.Fatalf("layer %d still contains failed edge %d after round trip", i, id)
			}
		}
	}
	f1 := NewForwarding(repaired, 6)
	f2 := NewForwarding(got, 6)
	for l := 0; l < repaired.N(); l++ {
		for s := 0; s < sf.Nr(); s += 7 {
			for d := 0; d < sf.Nr(); d += 3 {
				if f1.Next(l, s, d) != f2.Next(l, s, d) {
					t.Fatal("routing differs after repaired round trip")
				}
			}
		}
	}
	// The vertex/edge-count mismatch error path: a repaired configuration
	// is still for the ORIGINAL base graph (masks shrink, the graph does
	// not), so loading it against a different graph must fail with the
	// count mismatch error.
	other, _ := topo.SlimFly(7, 0)
	if _, err := ReadLayerSet(bytes.NewReader(buf.Bytes()), other.G); err == nil {
		t.Fatal("repaired set must be rejected against a mismatched base graph")
	} else if !strings.Contains(err.Error(), "graph") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestReadLayerSetRejectsMismatch(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	other, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(33)
	ls, _ := Random(sf.G, 2, 0.8, rng)
	var buf bytes.Buffer
	if err := ls.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLayerSet(&buf, other.G); err == nil {
		t.Fatal("mismatched base graph must be rejected")
	}
	if _, err := ReadLayerSet(strings.NewReader("not json"), sf.G); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadLayerSet(strings.NewReader(`{"vertices":50,"edges":175,"layers":[[9999]]}`), sf.G); err == nil {
		t.Fatal("out-of-range edge IDs must be rejected")
	}
	if _, err := ReadLayerSet(strings.NewReader(`{"vertices":50,"edges":175,"layers":[]}`), sf.G); err == nil {
		t.Fatal("empty layer list must be rejected")
	}
}
