package layers

import (
	"math/rand"

	"repro/internal/graph"
)

// PAST (Stephens et al., CoNEXT'12), per Appendix C-C / Listing 5: one
// spanning tree per address, built by BFS with random tie-breaking; the
// non-minimal variant (inspired by Valiant load balancing) roots the tree
// at a random intermediate switch rather than at the destination. When
// integrated into the layered-routing comparison, the number of trees is
// capped at n so all schemes use equally many layers (§VI-C).

// PASTVariant selects tree rooting.
type PASTVariant int

const (
	// PASTBaseline roots each spanning tree at a destination switch
	// chosen round-robin (the per-address tree of the original scheme).
	PASTBaseline PASTVariant = iota
	// PASTNonMinimal roots each tree at a random switch (the Valiant-
	// inspired variant of Listing 5).
	PASTNonMinimal
)

// PAST builds n−1 spanning-tree layers plus the full layer 0.
func PAST(g *graph.Graph, n int, variant PASTVariant, rng *rand.Rand) (*LayerSet, error) {
	ls := &LayerSet{Base: g, Scheme: "past"}
	ls.Layers = append(ls.Layers, fullLayer(g))
	for li := 1; li < n; li++ {
		var root int
		switch variant {
		case PASTNonMinimal:
			root = rng.Intn(g.N())
		default:
			root = (li - 1) % g.N()
		}
		mask := spanningTreeBFS(g, root, rng)
		count := 0
		for _, on := range mask {
			if on {
				count++
			}
		}
		ls.Layers = append(ls.Layers, Layer{Mask: mask, EdgeCount: count})
	}
	return ls, nil
}

// spanningTreeBFS builds a BFS spanning tree from root with random
// tie-breaking: the neighbor exploration order at each vertex is shuffled
// so that repeated calls distribute tree edges over physical links (the
// load-spreading goal of PAST).
func spanningTreeBFS(g *graph.Graph, root int, rng *rand.Rand) []bool {
	mask := make([]bool, g.M())
	visited := make([]bool, g.N())
	visited[root] = true
	queue := []int32{int32(root)}
	order := make([]graph.Half, 0, 64)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		order = append(order[:0], g.Neighbors(int(v))...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, h := range order {
			if !visited[h.To] {
				visited[h.To] = true
				mask[h.Edge] = true
				queue = append(queue, h.To)
			}
		}
	}
	return mask
}

// KShortestPathSets computes, for each requested router pair, up to k
// loop-free shortest paths (Yen's algorithm) — the k-shortest-paths
// comparison baseline of §VI (the routing used by Jellyfish). The result
// feeds the path-restricted MCF formulation; it is path-based rather than
// layer-based, exactly as in the paper's comparison.
func KShortestPathSets(g *graph.Graph, pairs [][2]int, k int) map[[2]int][][]int32 {
	out := make(map[[2]int][][]int32, len(pairs))
	for _, pr := range pairs {
		out[pr] = g.YenKShortest(pr[0], pr[1], k, graph.Unit)
	}
	return out
}

// LayerPaths extracts, for a router pair, the concrete per-layer path
// (vertex sequence) induced by a forwarding table — the path set a
// FatPaths sender load-balances over.
func LayerPaths(f *Forwarding, src, dst int) [][]int32 {
	var out [][]int32
	for l := 0; l < f.NumLayers(); l++ {
		if !f.Reachable(l, src, dst) {
			continue
		}
		path := []int32{int32(src)}
		v := src
		for v != dst {
			nxt := f.Next(l, v, dst)
			if nxt < 0 || len(path) > f.Nr {
				path = nil
				break
			}
			path = append(path, nxt)
			v = int(nxt)
		}
		if path != nil {
			out = append(out, path)
		}
	}
	return out
}
