package layers

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Serialization of deployed layer configurations. The paper notes that
// "to facilitate implementation of FatPaths, the project repository
// contains layer configurations (ρ, n) that ensure high-performance
// routing for used topologies" (§V-B) — this file provides that artifact:
// a JSON format carrying the layer masks (as edge-ID lists) plus the
// construction metadata, so a configuration computed once can be shipped
// and redeployed without recomputation.

// layerSetJSON is the wire format.
type layerSetJSON struct {
	Scheme   string  `json:"scheme"`
	Rho      float64 `json:"rho,omitempty"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	// Layers lists, per layer, the base-graph edge IDs it contains.
	// Layer 0 (all edges) is stored as null to keep files small.
	Layers [][]int32 `json:"layers"`
}

// Save serializes the layer set as JSON.
func (ls *LayerSet) Save(w io.Writer) error {
	out := layerSetJSON{
		Scheme:   ls.Scheme,
		Rho:      ls.Rho,
		Vertices: ls.Base.N(),
		Edges:    ls.Base.M(),
		Layers:   make([][]int32, len(ls.Layers)),
	}
	for i, l := range ls.Layers {
		if l.EdgeCount == ls.Base.M() {
			out.Layers[i] = nil // full layer, implicit
			continue
		}
		ids := make([]int32, 0, l.EdgeCount)
		for id, on := range l.Mask {
			if on {
				ids = append(ids, int32(id))
			}
		}
		out.Layers[i] = ids
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadLayerSet deserializes a layer set against its base graph. The base
// graph must be bit-identical (same construction, same seed) to the one
// the configuration was computed for; vertex/edge counts are verified.
func ReadLayerSet(r io.Reader, base *graph.Graph) (*LayerSet, error) {
	var in layerSetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("layers: decode: %w", err)
	}
	if in.Vertices != base.N() || in.Edges != base.M() {
		return nil, fmt.Errorf("layers: configuration is for a %dv/%de graph, base has %dv/%de",
			in.Vertices, in.Edges, base.N(), base.M())
	}
	ls := &LayerSet{Base: base, Scheme: in.Scheme, Rho: in.Rho}
	for li, ids := range in.Layers {
		if ids == nil {
			ls.Layers = append(ls.Layers, fullLayer(base))
			continue
		}
		mask := make([]bool, base.M())
		count := 0
		for _, id := range ids {
			if id < 0 || int(id) >= base.M() {
				return nil, fmt.Errorf("layers: layer %d references edge %d out of range", li, id)
			}
			if !mask[id] {
				mask[id] = true
				count++
			}
		}
		ls.Layers = append(ls.Layers, Layer{Mask: mask, EdgeCount: count})
	}
	if len(ls.Layers) == 0 {
		return nil, fmt.Errorf("layers: configuration contains no layers")
	}
	return ls, nil
}
