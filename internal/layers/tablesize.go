package layers

import "repro/internal/topo"

// Forwarding-state sizing analysis (§V-D/E of the paper): layers deploy as
// VLAN tags or address-space partitions, and forwarding functions compile
// to lookup tables. With flat exact matching every endpoint needs an entry
// (O(N) per router per layer); because all endpoints of a router share the
// routes toward that router, prefix matching on the router part of the
// address reduces this to O(N_r) — e.g. an SF with N = 10,830 endpoints
// needs only N_r = 722 prefix entries. VLAN deployments are limited to
// 4096 tags by the 802.1Q field.

// VLANLimit is the 12-bit 802.1Q VLAN ID space.
const VLANLimit = 4096

// TableSizing reports per-router forwarding state for a deployed layer set.
type TableSizing struct {
	Layers int
	// FlatEntries is per-router entries with flat exact-match tables:
	// one per endpoint per layer (O(N·n)).
	FlatEntries int
	// PrefixEntries is per-router entries with semi-hierarchical
	// prefix matching: one per destination router per layer (O(N_r·n)).
	PrefixEntries int
	// Compression is FlatEntries / PrefixEntries.
	Compression float64
	// FitsVLANs reports whether the layer count fits the 802.1Q tag space
	// (trivially true for FatPaths' O(1) layers; SPAIN-style per-
	// destination trees can exceed it on large networks).
	FitsVLANs bool
}

// SizeTables computes table sizing for a topology and layer count.
func SizeTables(t *topo.Topology, numLayers int) TableSizing {
	flat := t.N() * numLayers
	prefix := t.Nr() * numLayers
	comp := 0.0
	if prefix > 0 {
		comp = float64(flat) / float64(prefix)
	}
	return TableSizing{
		Layers:        numLayers,
		FlatEntries:   flat,
		PrefixEntries: prefix,
		Compression:   comp,
		FitsVLANs:     numLayers <= VLANLimit,
	}
}

// SizeTablesFor sizes the tables of a concrete layer set.
func SizeTablesFor(t *topo.Topology, ls *LayerSet) TableSizing {
	return SizeTables(t, ls.N())
}

// DeployedSizing reports the routing state a Forwarding has actually
// materialized: the CSR-packed multi-next-hop tables of internal/routing,
// measured against the dense single-next-hop array they replaced
// (n · Nr² entries with ECMP ties discarded). Tables build lazily per
// destination, so TablesBuilt < TablesTotal whenever a workload routed to
// only a slice of the destinations — the scaling win at paper-size router
// counts.
type DeployedSizing struct {
	// TablesBuilt / TablesTotal count materialized vs possible
	// (layer, destination) tables.
	TablesBuilt, TablesTotal int
	// CandEntries is the number of CSR candidate entries materialized —
	// the full within-layer ECMP state, not one frozen hop per pair.
	CandEntries int64
	// DenseEntries is what the dense n·Nr² builder would have allocated.
	DenseEntries int64
}

// SizeDeployedFor measures the materialized routing state of a Forwarding.
func SizeDeployedFor(f *Forwarding) DeployedSizing {
	st := f.Engine().Stat()
	return DeployedSizing{
		TablesBuilt:  st.TablesBuilt,
		TablesTotal:  st.TablesTotal,
		CandEntries:  st.CandEntries,
		DenseEntries: int64(f.NumLayers()) * int64(f.Nr) * int64(f.Nr),
	}
}
