// Package layers implements FatPaths layered routing (§V of the paper):
// dividing the links of a topology into (not necessarily disjoint) subsets
// called layers, routing minimally within each layer so that layer-local
// minimal paths are non-minimal globally, and populating per-layer
// destination-based forwarding tables. It also implements the comparison
// baselines of §VI / Appendix C: SPAIN, PAST, and k-shortest-paths.
package layers

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
)

// Layer is one routing layer: a subset of the base graph's links.
type Layer struct {
	// Mask[id] reports whether base edge id belongs to the layer.
	Mask []bool
	// EdgeCount is the number of enabled edges.
	EdgeCount int
}

// LayerSet is an ordered collection of layers over one base graph.
// Layers[0] always contains every link (the minimal-path layer σ1 of
// §V-B); the remaining layers are sparsified.
type LayerSet struct {
	Base   *graph.Graph
	Layers []Layer
	// Scheme records how the set was constructed ("random", "min-interference",
	// "spain", "past").
	Scheme string
	// Rho is the fraction of edges kept per sparsified layer (0 when the
	// scheme does not use ρ).
	Rho float64
}

// N returns the number of layers n.
func (ls *LayerSet) N() int { return len(ls.Layers) }

// fullLayer returns a layer containing all edges of g.
func fullLayer(g *graph.Graph) Layer {
	mask := make([]bool, g.M())
	for i := range mask {
		mask[i] = true
	}
	return Layer{Mask: mask, EdgeCount: g.M()}
}

// Random builds n layers by the random uniform edge sampling of Listing 1:
// layer 1 keeps all links; each of the remaining n−1 layers keeps each edge
// independently with probability ρ (using the canonical orientation given
// by a fresh random vertex permutation, exactly as the listing's
// π(u) < π(v) convention). A sample that disconnects the network is
// rejected and redrawn, per §V-B2.
func Random(g *graph.Graph, n int, rho float64, rng *rand.Rand) (*LayerSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("layers: n=%d must be >= 1", n)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("layers: rho=%f must be in (0,1]", rho)
	}
	ls := &LayerSet{Base: g, Scheme: "random", Rho: rho}
	ls.Layers = append(ls.Layers, fullLayer(g))
	const maxAttempts = 200
	for li := 1; li < n; li++ {
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			// Listing 1 samples each edge once in the canonical orientation
			// given by a random vertex permutation π (the π(u) < π(v)
			// condition only provides acyclicity for directed deployments;
			// full-duplex links make the orientation immaterial here).
			mask := make([]bool, g.M())
			count := 0
			for id := range g.Edges() {
				if rng.Float64() < rho {
					mask[id] = true
					count++
				}
			}
			if !g.SubsetConnected(mask) {
				continue
			}
			ls.Layers = append(ls.Layers, Layer{Mask: mask, EdgeCount: count})
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("layers: could not sample a connected layer with rho=%f after %d attempts", rho, maxAttempts)
		}
	}
	return ls, nil
}

// WithoutEdges returns a copy of the layer set with the given base edges
// removed from every layer — the "recompute layers" repair path for major
// topology updates of §V-G. The caller rebuilds forwarding tables on the
// result. Layers that become disconnected are kept (forwarding marks the
// unreachable pairs; the flowlet balancer avoids them).
func (ls *LayerSet) WithoutEdges(failed []int) *LayerSet {
	dead := make([]bool, ls.Base.M())
	for _, id := range failed {
		dead[id] = true
	}
	out := &LayerSet{Base: ls.Base, Scheme: ls.Scheme + "+repaired", Rho: ls.Rho}
	for _, l := range ls.Layers {
		mask := make([]bool, len(l.Mask))
		count := 0
		for id, on := range l.Mask {
			if on && !dead[id] {
				mask[id] = true
				count++
			}
		}
		out.Layers = append(out.Layers, Layer{Mask: mask, EdgeCount: count})
	}
	return out
}

// Forwarding is the deployed view of the routing core (internal/routing):
// per-layer destination-based multi-next-hop tables, the σ_i functions of
// §V-A deployed as forwarding tables (Listing 3). Where the paper's
// listing freezes one random tie per (layer, src, dst), this view keeps
// the full within-layer ECMP candidate set (§V-C) and exposes both a
// deterministic representative hop (Next) and the whole set (Candidates).
// A Next of -1 means the destination is unreachable within the layer
// (possible for sparse SPAIN/min-interference layers); callers fall back
// to layer 0.
type Forwarding struct {
	Nr  int
	eng *routing.Engine
}

// NewForwarding equips a layer set with routing tables. Tables materialize
// lazily per destination; call BuildAll to precompute everything in
// parallel. seed drives the deterministic ECMP tie-breaking, so two
// Forwardings over identical layer sets and seeds are byte-identical
// regardless of build order or worker count.
func NewForwarding(ls *LayerSet, seed int64) *Forwarding {
	masks := make([][]bool, ls.N())
	for i, l := range ls.Layers {
		if l.EdgeCount == ls.Base.M() {
			masks[i] = nil // full layer: let the engine skip mask checks
			continue
		}
		masks[i] = l.Mask
	}
	return &Forwarding{Nr: ls.Base.N(), eng: routing.NewEngine(ls.Base, masks, seed)}
}

// Engine exposes the underlying routing engine (candidate sets, route
// counts, materialization stats).
func (f *Forwarding) Engine() *routing.Engine { return f.eng }

// SetMetrics attaches routing-core telemetry to the underlying engine
// (nil disables). Repaired views from WithoutEdges inherit the bundle.
func (f *Forwarding) SetMetrics(m *obs.RoutingMetrics) { f.eng.SetMetrics(m) }

// NumLayers returns the number of layers with tables.
func (f *Forwarding) NumLayers() int { return f.eng.NumLayers() }

// BuildAll eagerly materializes every (layer, destination) table on up to
// `workers` goroutines (0 = all cores).
func (f *Forwarding) BuildAll(workers int) { f.eng.BuildAll(workers) }

// Next returns the representative next-hop router from src toward dst
// within the given layer, or -1 if unreachable in that layer. Ties among
// ECMP candidates break deterministically by seed folding.
func (f *Forwarding) Next(layer, src, dst int) int32 {
	return f.eng.Next(layer, src, dst)
}

// Candidates returns every ECMP next hop from src toward dst within the
// layer (the set the flowlet balancer hashes over). The slice aliases the
// table and must not be modified.
func (f *Forwarding) Candidates(layer, src, dst int) []int32 {
	return f.eng.Candidates(layer, src, dst)
}

// Reachable reports whether dst is reachable from src within the layer.
func (f *Forwarding) Reachable(layer, src, dst int) bool {
	return f.eng.Reachable(layer, src, dst)
}

// PathLen returns the hop count of the layer's minimal route from src to
// dst, or -1 on a routing hole. Minimal routing makes this the BFS
// distance, read straight from the table in O(1) instead of walking the
// forwarding function.
func (f *Forwarding) PathLen(layer, src, dst int) int {
	if src == dst {
		return 0
	}
	return int(f.eng.Dist(layer, src, dst))
}

// WithoutEdges returns a repaired view with the given base edges removed
// from every layer — the §V-G "major topology update" path. Invalidation
// is incremental and per destination: tables whose minimal-path DAG never
// used a removed edge are shared with the parent, the rest rebuild lazily.
func (f *Forwarding) WithoutEdges(failed []int) *Forwarding {
	return &Forwarding{Nr: f.Nr, eng: f.eng.WithoutEdges(failed)}
}

// LayerPathLengths returns, for a router pair, the per-layer path length
// under the layer's minimal routing (-1 where unreachable). Layer-local
// minimal paths in sparsified layers are the paper's "almost" shortest
// global paths.
func (f *Forwarding) LayerPathLengths(src, dst int) []int {
	out := make([]int, f.NumLayers())
	for l := range out {
		out[l] = f.PathLen(l, src, dst)
	}
	return out
}

// Stats summarizes a layer set: edges per layer and two deployed
// path-diversity measures read straight from the routing tables.
type Stats struct {
	EdgesPerLayer []int
	// MeanDistinctPaths is the average (over sampled pairs) number of
	// distinct (first-hop, length) routes across layers, counting every
	// ECMP candidate — the choices the flowlet balancer actually has.
	MeanDistinctPaths float64
	// MeanMinimalRoutes is the average (over sampled pairs) total number
	// of distinct within-layer minimal routes summed across layers,
	// computed by DP over the tables' candidate DAGs.
	MeanMinimalRoutes float64
}

// Summarize computes layer statistics using sampled router pairs. All path
// statistics come from the shared routing tables (no BFS re-walks).
func Summarize(ls *LayerSet, f *Forwarding, samples int, rng *rand.Rand) Stats {
	st := Stats{}
	for _, l := range ls.Layers {
		st.EdgesPerLayer = append(st.EdgesPerLayer, l.EdgeCount)
	}
	if samples <= 0 || ls.Base.N() < 2 {
		return st
	}
	totalDistinct := 0.0
	totalRoutes := 0.0
	// The route-count DP is per (layer, destination); sampled destinations
	// repeat, so memoize the whole counts vector rather than re-running it.
	countMemo := map[[2]int][]int64{}
	routeCounts := func(l, t int) []int64 {
		key := [2]int{l, t}
		if c, ok := countMemo[key]; ok {
			return c
		}
		c := f.eng.RouteCounts(l, t)
		countMemo[key] = c
		return c
	}
	for i := 0; i < samples; i++ {
		s, t := graph.SampleDistinctPair(rng, ls.Base.N())
		type route struct {
			first int32
			len   int
		}
		distinct := map[route]bool{}
		for l := 0; l < f.NumLayers(); l++ {
			pl := f.PathLen(l, s, t)
			if pl < 0 {
				continue
			}
			for _, nh := range f.Candidates(l, s, t) {
				distinct[route{nh, pl}] = true
			}
			totalRoutes += float64(routeCounts(l, t)[s])
		}
		totalDistinct += float64(len(distinct))
	}
	st.MeanDistinctPaths = totalDistinct / float64(samples)
	st.MeanMinimalRoutes = totalRoutes / float64(samples)
	return st
}
