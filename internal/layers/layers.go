// Package layers implements FatPaths layered routing (§V of the paper):
// dividing the links of a topology into (not necessarily disjoint) subsets
// called layers, routing minimally within each layer so that layer-local
// minimal paths are non-minimal globally, and populating per-layer
// destination-based forwarding tables. It also implements the comparison
// baselines of §VI / Appendix C: SPAIN, PAST, and k-shortest-paths.
package layers

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Layer is one routing layer: a subset of the base graph's links.
type Layer struct {
	// Mask[id] reports whether base edge id belongs to the layer.
	Mask []bool
	// EdgeCount is the number of enabled edges.
	EdgeCount int
}

// LayerSet is an ordered collection of layers over one base graph.
// Layers[0] always contains every link (the minimal-path layer σ1 of
// §V-B); the remaining layers are sparsified.
type LayerSet struct {
	Base   *graph.Graph
	Layers []Layer
	// Scheme records how the set was constructed ("random", "min-interference",
	// "spain", "past").
	Scheme string
	// Rho is the fraction of edges kept per sparsified layer (0 when the
	// scheme does not use ρ).
	Rho float64
}

// N returns the number of layers n.
func (ls *LayerSet) N() int { return len(ls.Layers) }

// fullLayer returns a layer containing all edges of g.
func fullLayer(g *graph.Graph) Layer {
	mask := make([]bool, g.M())
	for i := range mask {
		mask[i] = true
	}
	return Layer{Mask: mask, EdgeCount: g.M()}
}

// Random builds n layers by the random uniform edge sampling of Listing 1:
// layer 1 keeps all links; each of the remaining n−1 layers keeps each edge
// independently with probability ρ (using the canonical orientation given
// by a fresh random vertex permutation, exactly as the listing's
// π(u) < π(v) convention). A sample that disconnects the network is
// rejected and redrawn, per §V-B2.
func Random(g *graph.Graph, n int, rho float64, rng *rand.Rand) (*LayerSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("layers: n=%d must be >= 1", n)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("layers: rho=%f must be in (0,1]", rho)
	}
	ls := &LayerSet{Base: g, Scheme: "random", Rho: rho}
	ls.Layers = append(ls.Layers, fullLayer(g))
	const maxAttempts = 200
	for li := 1; li < n; li++ {
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			// Listing 1 samples each edge once in the canonical orientation
			// given by a random vertex permutation π (the π(u) < π(v)
			// condition only provides acyclicity for directed deployments;
			// full-duplex links make the orientation immaterial here).
			mask := make([]bool, g.M())
			count := 0
			for id := range g.Edges() {
				if rng.Float64() < rho {
					mask[id] = true
					count++
				}
			}
			if !g.SubsetConnected(mask) {
				continue
			}
			ls.Layers = append(ls.Layers, Layer{Mask: mask, EdgeCount: count})
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("layers: could not sample a connected layer with rho=%f after %d attempts", rho, maxAttempts)
		}
	}
	return ls, nil
}

// WithoutEdges returns a copy of the layer set with the given base edges
// removed from every layer — the "recompute layers" repair path for major
// topology updates of §V-G. The caller rebuilds forwarding tables on the
// result. Layers that become disconnected are kept (forwarding marks the
// unreachable pairs; the flowlet balancer avoids them).
func (ls *LayerSet) WithoutEdges(failed []int) *LayerSet {
	dead := make([]bool, ls.Base.M())
	for _, id := range failed {
		dead[id] = true
	}
	out := &LayerSet{Base: ls.Base, Scheme: ls.Scheme + "+repaired", Rho: ls.Rho}
	for _, l := range ls.Layers {
		mask := make([]bool, len(l.Mask))
		count := 0
		for id, on := range l.Mask {
			if on && !dead[id] {
				mask[id] = true
				count++
			}
		}
		out.Layers = append(out.Layers, Layer{Mask: mask, EdgeCount: count})
	}
	return out
}

// Forwarding holds per-layer destination-based next-hop tables, the σ_i
// functions of §V-A deployed as forwarding tables (Listing 3). An entry of
// -1 means the destination is unreachable within the layer (possible for
// sparse SPAIN/min-interference layers); callers fall back to layer 0.
type Forwarding struct {
	Nr     int
	tables [][]int32 // tables[layer][dst*Nr+src] = next-hop router or -1
}

// NumLayers returns the number of layers with tables.
func (f *Forwarding) NumLayers() int { return len(f.tables) }

// Next returns the next-hop router from src toward dst within the given
// layer, or -1 if unreachable in that layer.
func (f *Forwarding) Next(layer, src, dst int) int32 {
	return f.tables[layer][dst*f.Nr+src]
}

// Reachable reports whether dst is reachable from src within the layer.
func (f *Forwarding) Reachable(layer, src, dst int) bool {
	return src == dst || f.tables[layer][dst*f.Nr+src] >= 0
}

// PathLen walks the forwarding function from src to dst within the layer
// and returns the hop count, or -1 on a routing hole. It also detects
// loops (which would indicate a table construction bug).
func (f *Forwarding) PathLen(layer, src, dst int) int {
	hops := 0
	v := src
	for v != dst {
		nxt := f.Next(layer, v, dst)
		if nxt < 0 {
			return -1
		}
		v = int(nxt)
		hops++
		if hops > f.Nr {
			return -1 // loop guard; cannot happen with BFS-built tables
		}
	}
	return hops
}

// BuildForwarding populates the forwarding tables of every layer (Listing 3
// semantics): within each layer, minimum paths between all router pairs;
// where several first hops tie, one is chosen uniformly at random (§V-C).
// Complexity is O(n · N_r · (N_r + M)) using one reverse BFS per
// destination rather than the listing's Floyd–Warshall exposition.
func BuildForwarding(ls *LayerSet, rng *rand.Rand) *Forwarding {
	g := ls.Base
	nr := g.N()
	f := &Forwarding{Nr: nr}
	dist := make([]int32, nr)
	for _, layer := range ls.Layers {
		table := make([]int32, nr*nr)
		for i := range table {
			table[i] = -1
		}
		for dst := 0; dst < nr; dst++ {
			// BFS from dst over layer edges gives dist-to-dst for all
			// sources (undirected graph: distances are symmetric).
			for i := range dist {
				dist[i] = graph.Unreachable
			}
			dist[dst] = 0
			queue := []int32{int32(dst)}
			for qi := 0; qi < len(queue); qi++ {
				v := queue[qi]
				for _, h := range g.Neighbors(int(v)) {
					if !layer.Mask[h.Edge] {
						continue
					}
					if dist[h.To] == graph.Unreachable {
						dist[h.To] = dist[v] + 1
						queue = append(queue, h.To)
					}
				}
			}
			row := table[dst*nr : (dst+1)*nr]
			for src := 0; src < nr; src++ {
				if src == dst || dist[src] == graph.Unreachable {
					continue
				}
				// Choose u.a.r. among neighbors one step closer to dst.
				count := 0
				var pick int32 = -1
				for _, h := range g.Neighbors(src) {
					if !layer.Mask[h.Edge] {
						continue
					}
					if dist[h.To] == dist[src]-1 {
						count++
						if rng == nil {
							if pick < 0 {
								pick = h.To
							}
						} else if rng.Intn(count) == 0 {
							pick = h.To
						}
					}
				}
				row[src] = pick
			}
		}
		f.tables = append(f.tables, table)
	}
	return f
}

// LayerPathLengths returns, for a router pair, the per-layer path length
// under the layer's minimal routing (-1 where unreachable). Layer-local
// minimal paths in sparsified layers are the paper's "almost" shortest
// global paths.
func (f *Forwarding) LayerPathLengths(src, dst int) []int {
	out := make([]int, f.NumLayers())
	for l := range f.tables {
		out[l] = f.PathLen(l, src, dst)
	}
	return out
}

// Stats summarizes a layer set: edges per layer and the number of distinct
// next hops the set provides per router pair (a direct path-diversity
// measure of the deployed configuration).
type Stats struct {
	EdgesPerLayer []int
	// MeanDistinctPaths is the average (over sampled pairs) number of
	// distinct (first-hop, length) routes across layers.
	MeanDistinctPaths float64
}

// Summarize computes layer statistics using sampled router pairs.
func Summarize(ls *LayerSet, f *Forwarding, samples int, rng *rand.Rand) Stats {
	st := Stats{}
	for _, l := range ls.Layers {
		st.EdgesPerLayer = append(st.EdgesPerLayer, l.EdgeCount)
	}
	if samples <= 0 || ls.Base.N() < 2 {
		return st
	}
	total := 0.0
	for i := 0; i < samples; i++ {
		s, t := graph.SampleDistinctPair(rng, ls.Base.N())
		type route struct {
			first int32
			len   int
		}
		distinct := map[route]bool{}
		for l := 0; l < f.NumLayers(); l++ {
			nh := f.Next(l, s, t)
			if nh < 0 {
				continue
			}
			distinct[route{nh, f.PathLen(l, s, t)}] = true
		}
		total += float64(len(distinct))
	}
	st.MeanDistinctPaths = total / float64(samples)
	return st
}
