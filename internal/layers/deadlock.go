package layers

// Channel-dependency analysis for lossless deployments. FatPaths targets
// lossy Ethernet, where deadlock is not a concern, but §VIII-A6 proposes
// carrying the layered design to InfiniBand — a lossless, credit-based
// fabric where a routing function is usable only if its channel dependency
// graph (CDG) is acyclic (Dally–Seitz). The paper's layer concept itself is
// "similar to virtual layers known from works on deadlock-freedom" (LASH);
// this file provides the analysis that makes that connection concrete: per
// layer, build the CDG induced by the forwarding function and test it for
// cycles, so a deployment can assign virtual lanes per layer (LASH-style)
// only where needed.

// DeadlockReport summarizes the CDG analysis of one layer.
type DeadlockReport struct {
	Layer int
	// Channels is the number of directed links used by at least one route.
	Channels int
	// Dependencies is the number of CDG edges (consecutive channel pairs).
	Dependencies int
	// Acyclic reports whether the CDG has no cycle (deadlock-free for
	// lossless credit-based flow control).
	Acyclic bool
}

// AnalyzeDeadlock builds the channel dependency graph of one layer's
// routing tables over all router pairs and checks it for cycles. Channels
// are directed router-router links; a dependency (c1 -> c2) exists when
// some route enters a router over c1 and leaves over c2. Because the
// routing core keeps the full within-layer ECMP candidate sets, the CDG
// covers every minimal route the flowlet balancer may use — not just one
// frozen representative per pair.
func AnalyzeDeadlock(f *Forwarding, ls *LayerSet, layer int) DeadlockReport {
	g := ls.Base
	nr := g.N()
	// Channel IDs: 2*edge for U->V, 2*edge+1 for V->U.
	chanOf := func(from, to int) int {
		id := g.EdgeBetween(from, to)
		if id < 0 {
			return -1
		}
		if int(g.Edge(id).U) == from {
			return 2 * id
		}
		return 2*id + 1
	}
	used := make(map[int]bool)
	deps := make(map[int64]bool) // c1*2M + c2
	m2 := int64(2 * g.M())
	for dst := 0; dst < nr; dst++ {
		// Walk the minimal-path DAG toward dst: every candidate edge is a
		// used channel, and each consecutive candidate pair (u -> v -> w)
		// is a dependency.
		for src := 0; src < nr; src++ {
			if src == dst {
				continue
			}
			for _, v := range f.Candidates(layer, src, dst) {
				c1 := chanOf(src, int(v))
				used[c1] = true
				for _, w := range f.Candidates(layer, int(v), dst) {
					c2 := chanOf(int(v), int(w))
					deps[int64(c1)*m2+int64(c2)] = true
				}
			}
		}
	}
	// Cycle check on the dependency graph via iterative DFS coloring.
	adj := make(map[int][]int, len(used))
	//det:allow maprange -- adjacency lists feed only the cycle-existence check below; acyclicity does not depend on edge or visit order
	for key := range deps {
		c1 := int(key / m2)
		c2 := int(key % m2)
		adj[c1] = append(adj[c1], c2)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(used))
	acyclic := true
	type frame struct {
		node int
		next int
	}
	for start := range used {
		if color[start] != white {
			continue
		}
		frames := []frame{{node: start}}
		color[start] = gray
		for len(frames) > 0 && acyclic {
			fr := &frames[len(frames)-1]
			children := adj[fr.node]
			if fr.next < len(children) {
				child := children[fr.next]
				fr.next++
				switch color[child] {
				case white:
					color[child] = gray
					frames = append(frames, frame{node: child})
				case gray:
					acyclic = false
				}
			} else {
				color[fr.node] = black
				frames = frames[:len(frames)-1]
			}
		}
		if !acyclic {
			break
		}
	}
	return DeadlockReport{
		Layer:        layer,
		Channels:     len(used),
		Dependencies: len(deps),
		Acyclic:      acyclic,
	}
}

// AnalyzeAllLayers runs the CDG analysis on every layer.
func AnalyzeAllLayers(f *Forwarding, ls *LayerSet) []DeadlockReport {
	out := make([]DeadlockReport, 0, ls.N())
	for l := 0; l < ls.N(); l++ {
		out = append(out, AnalyzeDeadlock(f, ls, l))
	}
	return out
}
