package layers

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// This file implements the path-overlap-minimizing layer construction of
// Listing 2 (§V-B3): instead of sampling edges at random, each sparsified
// layer is grown by placing, for the router pairs that so far received the
// fewest paths, a path whose length is one hop above minimal (the sweet
// spot identified by the §IV diversity analysis) and whose edges carry the
// lowest accumulated usage weight W. After a path (v1..vd) is placed, the
// listing's bookkeeping applies: chords (vi,vj), |i−j|>1, are excluded from
// further use in the layer so traffic between the path's interior pairs
// cannot shortcut, near pairs (j−i < Lmin) are removed from the candidate
// set, and W is increased along the path by i·(len−1−i), penalizing the
// middle of long paths where interference concentrates.

// MinInterferenceConfig parametrizes the Listing 2 construction.
type MinInterferenceConfig struct {
	// N is the number of layers (including the full layer 0).
	N int
	// ExtraHops is how many hops above the pair's minimal distance placed
	// paths should have (the paper prefers 1).
	ExtraHops int
	// MaxPathsPerLayer is the listing's constant M bounding paths placed
	// per layer (0 = N_r, a path per router on average).
	MaxPathsPerLayer int
	// Rho optionally caps each layer's edge count at ⌊Rho·|E|⌋, keeping
	// min-interference layers as sparse as the equivalent random layers.
	// Sparsity is what makes layer-local minimal routes globally
	// non-minimal (§V-B1) — without a budget a fully covered layer
	// converges to the whole graph and exposes no extra paths. 0 disables
	// the cap.
	Rho float64
}

// pairItem is a candidate router pair in the priority queue Q.
type pairItem struct {
	u, v  int32
	count int // paths already placed for this pair across layers
	tie   int64
	index int
}

type pairQueue []*pairItem

func (q pairQueue) Len() int { return len(q) }
func (q pairQueue) Less(i, j int) bool {
	if q[i].count != q[j].count {
		return q[i].count < q[j].count
	}
	return q[i].tie < q[j].tie
}
func (q pairQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pairQueue) Push(x interface{}) {
	it := x.(*pairItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *pairQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// MinInterference builds a LayerSet per Listing 2.
func MinInterference(g *graph.Graph, cfg MinInterferenceConfig, rng *rand.Rand) (*LayerSet, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("layers: n=%d must be >= 1", cfg.N)
	}
	if cfg.ExtraHops < 0 {
		return nil, fmt.Errorf("layers: negative ExtraHops")
	}
	maxPaths := cfg.MaxPathsPerLayer
	if maxPaths <= 0 {
		maxPaths = g.N()
	}
	edgeBudget := g.M()
	if cfg.Rho > 0 && cfg.Rho < 1 {
		edgeBudget = int(cfg.Rho * float64(g.M()))
	}
	ls := &LayerSet{Base: g, Scheme: "min-interference"}
	ls.Layers = append(ls.Layers, fullLayer(g))

	nr := g.N()
	// Global edge usage weights W, persisted across layers.
	W := make([]float64, g.M())
	// Paths placed per ordered pair across layers (the queue priority).
	pathCount := make(map[int64]int)
	pairKey := func(u, v int32) int64 { return int64(u)*int64(nr) + int64(v) }

	// Minimal distances for per-pair length targets.
	dists := make([][]int32, nr)
	for v := 0; v < nr; v++ {
		dists[v] = g.BFS(v)
	}

	for li := 1; li < cfg.N; li++ {
		pi := graph.Permutation(rng, nr)
		mask := make([]bool, g.M())
		edgeCount := 0
		// Candidate pairs: π(u) < π(v) (the listing's acyclicity filter).
		q := make(pairQueue, 0, nr*(nr-1)/2)
		for u := int32(0); u < int32(nr); u++ {
			for v := int32(0); v < int32(nr); v++ {
				if u != v && pi[u] < pi[v] {
					q = append(q, &pairItem{u: u, v: v, count: pathCount[pairKey(u, v)], tie: rng.Int63()})
				}
			}
		}
		heap.Init(&q)
		// incidence: per-layer edge exclusions (chords of placed paths).
		excluded := make([]bool, g.M())
		placed := 0
		for q.Len() > 0 && placed < maxPaths && edgeCount < edgeBudget {
			it := heap.Pop(&q).(*pairItem)
			u, v := it.u, it.v
			d := dists[u][v]
			if d < 0 {
				continue
			}
			lmin := int(d) + cfg.ExtraHops
			lmax := lmin
			path := findPath(g, int(u), int(v), W, excluded, pi, lmin, lmax)
			if path == nil {
				// Fall back to a minimal-length path if no +ExtraHops path
				// respects the π-order and exclusions.
				path = findPath(g, int(u), int(v), W, excluded, pi, int(d), int(d))
				if path == nil {
					continue
				}
			}
			placed++
			pathCount[pairKey(u, v)]++
			for i := 0; i+1 < len(path); i++ {
				id := g.EdgeBetween(int(path[i]), int(path[i+1]))
				if !mask[id] {
					mask[id] = true
					edgeCount++
				}
				// W[vi][vi+1] += i·(len-1-i): middle edges of the path are
				// penalized most.
				W[id] += float64(i * (len(path) - 2 - i))
			}
			// Exclude chords of the placed path within this layer.
			for i := 0; i < len(path); i++ {
				for j := i + 2; j < len(path); j++ {
					if id := g.EdgeBetween(int(path[i]), int(path[j])); id >= 0 {
						excluded[id] = true
					}
				}
			}
		}
		// Layers must route (σ_i computes minimum paths between every two
		// routers within the layer, §V-C): if the placed paths leave the
		// layer disconnected, top it up with the least-used edges, chosen
		// by increasing W, until it spans the network.
		if !g.SubsetConnected(mask) {
			type cand struct {
				id int
				w  float64
			}
			cands := make([]cand, 0, g.M())
			for id := 0; id < g.M(); id++ {
				if !mask[id] {
					cands = append(cands, cand{id: id, w: W[id]})
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].w < cands[j].w })
			for _, c := range cands {
				mask[c.id] = true
				edgeCount++
				W[c.id]++ // account for the extra usage
				if g.SubsetConnected(mask) {
					break
				}
			}
		}
		ls.Layers = append(ls.Layers, Layer{Mask: mask, EdgeCount: edgeCount})
	}
	return ls, nil
}

// findPath implements the listing's find_path: the minimum-W-weight path
// from src to dst with hop count in [lmin, lmax], using only edges (a,b)
// with π(a) < π(b) and not excluded. The bounded-depth DFS prunes on the
// best weight found so far; lmax is at most diameter+ExtraHops so the
// enumeration stays shallow.
func findPath(g *graph.Graph, src, dst int, W []float64, excluded []bool, pi []int32, lmin, lmax int) []int32 {
	if lmax < 1 {
		return nil
	}
	var best []int32
	bestW := math.Inf(1)
	onPath := make([]bool, g.N())
	path := make([]int32, 0, lmax+1)
	path = append(path, int32(src))
	onPath[src] = true

	var dfs func(v int, depth int, weight float64)
	dfs = func(v int, depth int, weight float64) {
		if weight >= bestW {
			return
		}
		if v == dst {
			if depth >= lmin {
				best = append(best[:0], path...)
				bestW = weight
			}
			return
		}
		if depth == lmax {
			return
		}
		for _, h := range g.Neighbors(v) {
			if excluded[h.Edge] || onPath[h.To] {
				continue
			}
			if pi[v] >= pi[h.To] {
				continue // respect the layer's π-order (acyclicity)
			}
			path = append(path, h.To)
			onPath[h.To] = true
			dfs(int(h.To), depth+1, weight+W[h.Edge])
			onPath[h.To] = false
			path = path[:len(path)-1]
		}
	}
	dfs(src, 0, 0)
	if best == nil {
		return nil
	}
	return best
}
