package graph

import (
	"testing"
	"testing/quick"
)

// ring returns a cycle graph C_n.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// clique returns a complete graph K_n.
func clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// grid returns an r x c grid graph.
func grid(r, c int) *Graph {
	g := New(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(at(i, j), at(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(at(i, j), at(i+1, j))
			}
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	id := g.AddEdge(0, 1)
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) should be false")
	}
	if g.M() != 1 || g.N() != 4 {
		t.Fatalf("M=%d N=%d, want 1, 4", g.M(), g.N())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("wrong degrees")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Graph)
	}{
		{"self loop", func(g *Graph) { g.AddEdge(1, 1) }},
		{"out of range", func(g *Graph) { g.AddEdge(0, 9) }},
		{"negative", func(g *Graph) { g.AddEdge(-1, 0) }},
		{"duplicate", func(g *Graph) { g.AddEdge(0, 1); g.AddEdge(1, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.f(New(3))
		})
	}
}

func TestTryAddEdge(t *testing.T) {
	g := New(3)
	if !g.TryAddEdge(0, 1) {
		t.Fatal("first insert should succeed")
	}
	if g.TryAddEdge(0, 1) || g.TryAddEdge(1, 0) {
		t.Fatal("duplicate insert should fail")
	}
	if g.TryAddEdge(2, 2) {
		t.Fatal("self loop should fail")
	}
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1", g.M())
	}
}

func TestBFSRing(t *testing.T) {
	g := ring(8)
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for i, d := range dist {
		if d != want[i] {
			t.Fatalf("dist[%d]=%d, want %d", i, d, want[i])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatal("components 2,3 should be unreachable from 0")
	}
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
}

func TestDiameterAndMean(t *testing.T) {
	d, mean := clique(5).DiameterAndMean()
	if d != 1 || mean != 1 {
		t.Fatalf("clique: D=%d mean=%f, want 1, 1", d, mean)
	}
	d, _ = ring(10).DiameterAndMean()
	if d != 5 {
		t.Fatalf("C10 diameter=%d, want 5", d)
	}
	d, _ = grid(3, 4).DiameterAndMean()
	if d != 5 {
		t.Fatalf("3x4 grid diameter=%d, want 5", d)
	}
	g := New(3)
	g.AddEdge(0, 1)
	if d, _ := g.DiameterAndMean(); d != -1 {
		t.Fatalf("disconnected diameter=%d, want -1", d)
	}
}

func TestSubsetConnected(t *testing.T) {
	g := ring(6)
	enabled := make([]bool, g.M())
	for i := range enabled {
		enabled[i] = true
	}
	if !g.SubsetConnected(enabled) {
		t.Fatal("full ring should be connected")
	}
	enabled[0] = false
	if !g.SubsetConnected(enabled) {
		t.Fatal("ring minus one edge is a path, still connected")
	}
	enabled[3] = false
	if g.SubsetConnected(enabled) {
		t.Fatal("ring minus two edges should disconnect")
	}
}

func TestPathTo(t *testing.T) {
	g := grid(3, 3)
	p := g.PathTo(0, 8, nil)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5 vertices (4 hops)", len(p))
	}
	if p[0] != 0 || p[4] != 8 {
		t.Fatalf("path endpoints %d..%d, want 0..8", p[0], p[4])
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(int(p[i]), int(p[i+1])) {
			t.Fatalf("path uses non-edge (%d,%d)", p[i], p[i+1])
		}
	}
	if p := g.PathTo(3, 3, nil); len(p) != 1 || p[0] != 3 {
		t.Fatal("self-path should be single vertex")
	}
}

func TestShortestPathDAGCounts(t *testing.T) {
	// 2x2 grid: two shortest paths between opposite corners.
	g := grid(2, 2)
	_, count := g.ShortestPathDAGCounts(0, 0)
	if count[3] != 2 {
		t.Fatalf("corner-to-corner shortest path count = %d, want 2", count[3])
	}
	// Clique: exactly one shortest path to each neighbor.
	_, count = clique(6).ShortestPathDAGCounts(0, 0)
	for v := 1; v < 6; v++ {
		if count[v] != 1 {
			t.Fatalf("clique count[%d]=%d, want 1", v, count[v])
		}
	}
}

func TestDisjointPathsClique(t *testing.T) {
	g := clique(6)
	// K6: 5 edge-disjoint paths between any pair within 2 hops
	// (1 direct + 4 two-hop).
	got := g.DisjointPathsPair(0, 1, 2)
	if got != 5 {
		t.Fatalf("K6 c_2(0,1)=%d, want 5", got)
	}
	if got := g.DisjointPathsPair(0, 1, 1); got != 1 {
		t.Fatalf("K6 c_1(0,1)=%d, want 1", got)
	}
}

func TestDisjointPathsRing(t *testing.T) {
	g := ring(8)
	// Opposite vertices: two disjoint 4-hop paths.
	if got := g.DisjointPathsPair(0, 4, 4); got != 2 {
		t.Fatalf("C8 c_4(0,4)=%d, want 2", got)
	}
	// Length limit 3 finds none.
	if got := g.DisjointPathsPair(0, 4, 3); got != 0 {
		t.Fatalf("C8 c_3(0,4)=%d, want 0", got)
	}
	// Adjacent vertices: the 1-hop path plus the 7-hop way around.
	if got := g.DisjointPathsPair(0, 1, 0); got != 2 {
		t.Fatalf("C8 unbounded disjoint(0,1)=%d, want 2", got)
	}
}

func TestDisjointPathsMaxCount(t *testing.T) {
	g := clique(8)
	got := g.DisjointPathsBounded([]int{0}, []int{1}, DisjointPathsOpts{MaxLen: 2, MaxCount: 3})
	if got != 3 {
		t.Fatalf("capped count = %d, want 3", got)
	}
}

func TestDisjointPathsSets(t *testing.T) {
	g := grid(3, 3)
	// From left column to right column in a 3x3 grid: 3 disjoint rows.
	got := g.DisjointPathsBounded([]int{0, 3, 6}, []int{2, 5, 8}, DisjointPathsOpts{MaxLen: 2})
	if got != 3 {
		t.Fatalf("grid column-to-column c_2 = %d, want 3", got)
	}
}

func TestEdgeConnectivityPair(t *testing.T) {
	if got := clique(6).EdgeConnectivityPair(0, 3); got != 5 {
		t.Fatalf("K6 edge connectivity = %d, want 5", got)
	}
	if got := ring(9).EdgeConnectivityPair(0, 4); got != 2 {
		t.Fatalf("C9 edge connectivity = %d, want 2", got)
	}
	// Barbell: two triangles joined by a single bridge.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	if got := g.EdgeConnectivityPair(0, 5); got != 1 {
		t.Fatalf("barbell edge connectivity = %d, want 1", got)
	}
}

func TestNeighborhoodWithin(t *testing.T) {
	g := ring(10)
	in := g.NeighborhoodWithin([]int{0}, 2)
	wantIn := map[int]bool{0: true, 1: true, 2: true, 8: true, 9: true}
	for v := 0; v < 10; v++ {
		if in[v] != wantIn[v] {
			t.Fatalf("h_2({0}) membership of %d = %v, want %v", v, in[v], wantIn[v])
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := clique(4)
	enabled := make([]bool, g.M())
	enabled[0] = true // edge (0,1)
	s := g.Subgraph(enabled)
	if s.M() != 1 || !s.HasEdge(0, 1) {
		t.Fatal("subgraph should contain exactly edge (0,1)")
	}
	if s.N() != g.N() {
		t.Fatal("subgraph must preserve vertex set")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := ring(5)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("mutating clone must not affect original")
	}
	if g.M() != 5 || c.M() != 6 {
		t.Fatalf("M: g=%d c=%d, want 5 and 6", g.M(), c.M())
	}
}

func TestIsRegular(t *testing.T) {
	if ok, d := ring(7).IsRegular(); !ok || d != 2 {
		t.Fatalf("ring regular=(%v,%d), want (true,2)", ok, d)
	}
	if ok, _ := grid(2, 3).IsRegular(); ok {
		t.Fatal("grid should not be regular")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	g := grid(4, 5)
	dist := g.BFS(0)
	for t0 := 0; t0 < g.N(); t0++ {
		path, w := g.Dijkstra(0, t0, Unit, nil, nil)
		if int32(w) != dist[t0] {
			t.Fatalf("Dijkstra(0,%d)=%f, BFS=%d", t0, w, dist[t0])
		}
		if len(path) != int(dist[t0])+1 {
			t.Fatalf("path vertex count %d, want %d", len(path), dist[t0]+1)
		}
	}
}

func TestYenKShortestRing(t *testing.T) {
	g := ring(6)
	paths := g.YenKShortest(0, 3, 4, Unit)
	if len(paths) != 2 {
		t.Fatalf("C6 has exactly 2 loop-free 0->3 paths, got %d", len(paths))
	}
	if len(paths[0]) != 4 || len(paths[1]) != 4 {
		t.Fatalf("both paths should have 3 hops, got %d and %d", len(paths[0])-1, len(paths[1])-1)
	}
}

func TestYenKShortestOrderingAndValidity(t *testing.T) {
	g := grid(3, 3)
	paths := g.YenKShortest(0, 8, 6, Unit)
	if len(paths) != 6 {
		t.Fatalf("got %d paths, want 6 (all 4-hop monotone paths)", len(paths))
	}
	prev := 0.0
	for _, p := range paths {
		w := g.PathWeight(p, Unit)
		if w < prev {
			t.Fatal("paths not in increasing weight order")
		}
		prev = w
		seen := map[int32]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatal("path contains a loop")
			}
			seen[v] = true
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(int(p[i]), int(p[i+1])) {
				t.Fatal("path uses a non-edge")
			}
		}
	}
	// All 6 must be distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if pathsEqual(paths[i], paths[j]) {
				t.Fatal("duplicate path returned")
			}
		}
	}
}

func TestPermutationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 1 + int(uint(seed)%64)
		p := Permutation(rng, n)
		q := InversePermutation(p)
		for i := range p {
			if q[p[i]] != int32(i) {
				return false
			}
		}
		seen := make([]bool, n)
		for _, v := range p {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctPair(t *testing.T) {
	rng := NewRand(1)
	for i := 0; i < 1000; i++ {
		a, b := SampleDistinctPair(rng, 5)
		if a == b || a < 0 || b < 0 || a >= 5 || b >= 5 {
			t.Fatalf("bad pair (%d,%d)", a, b)
		}
	}
}

// Property: the greedy bounded disjoint-path count never exceeds the exact
// edge connectivity, and equals it when unbounded on small random graphs.
func TestDisjointBoundedVsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 5 + rng.Intn(8)
		g := New(n)
		// Random connected-ish graph: ring + random chords.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for i := 0; i < n; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		s, t0 := SampleDistinctPair(rng, n)
		exact := g.EdgeConnectivityPair(s, t0)
		for l := 1; l <= n; l++ {
			if got := g.DisjointPathsPair(s, t0, l); got > exact {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances obey the triangle inequality over edges.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 4 + rng.Intn(20)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i)) // random tree keeps it connected
		}
		for i := 0; i < n/2; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := grid(2, 3).DegreeHistogram()
	if h[2] != 4 || h[3] != 2 {
		t.Fatalf("grid 2x3 degree histogram = %v, want 4 corners deg2, 2 mid deg3", h)
	}
}

func TestSampledMeanDistance(t *testing.T) {
	g := clique(10)
	if m := g.SampledMeanDistance(0); m != 1 {
		t.Fatalf("clique mean distance = %f, want 1", m)
	}
	if m := g.SampledMeanDistance(3); m != 1 {
		t.Fatalf("sampled clique mean distance = %f, want 1", m)
	}
}
