package graph

import "math/rand"

// NewRand returns a deterministic PRNG for the given seed. Every randomized
// construction and experiment in this repository threads one of these
// explicitly — there is no package-level randomness — so runs reproduce
// exactly given a seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Permutation returns a random permutation of [0, n).
func Permutation(rng *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// InversePermutation returns q with q[p[i]] = i.
func InversePermutation(p []int32) []int32 {
	q := make([]int32, len(p))
	for i, v := range p {
		q[v] = int32(i)
	}
	return q
}

// SampleDistinctPair draws two distinct integers from [0, n) uniformly.
func SampleDistinctPair(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}
