package graph

import (
	"container/heap"
	"math"
)

// WeightFunc assigns a non-negative traversal cost to an edge; hop-count
// routing uses Unit.
type WeightFunc func(edgeID int) float64

// Unit is the hop-count weight function.
func Unit(int) float64 { return 1 }

type dijkstraItem struct {
	vertex int32
	dist   float64
	index  int
}

type dijkstraHeap []*dijkstraItem

func (h dijkstraHeap) Len() int           { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *dijkstraHeap) Push(x interface{}) {
	it := x.(*dijkstraItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Dijkstra computes a minimum-weight path from s to t under w, honoring the
// optional disabled-edge and disabled-vertex masks (used by Yen's spur
// computation). It returns the vertex path and its total weight, or
// (nil, +Inf) if t is unreachable.
func (g *Graph) Dijkstra(s, t int, w WeightFunc, edgeOff, vertOff []bool) ([]int32, float64) {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	parent := make([]int32, g.n)
	for i := range parent {
		parent[i] = -1
	}
	done := make([]bool, g.n)
	dist[s] = 0
	h := dijkstraHeap{{vertex: int32(s), dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(&h).(*dijkstraItem)
		v := it.vertex
		if done[v] {
			continue
		}
		done[v] = true
		if int(v) == t {
			break
		}
		for _, half := range g.adj[v] {
			if edgeOff != nil && edgeOff[half.Edge] {
				continue
			}
			if vertOff != nil && vertOff[half.To] {
				continue
			}
			nd := dist[v] + w(int(half.Edge))
			if nd < dist[half.To] {
				dist[half.To] = nd
				parent[half.To] = v
				heap.Push(&h, &dijkstraItem{vertex: half.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[t], 1) {
		return nil, math.Inf(1)
	}
	path := []int32{}
	for v := int32(t); v != -1; v = parent[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[t]
}

// EdgeBetween returns the ID of the edge between u and v, or -1.
func (g *Graph) EdgeBetween(u, v int) int {
	for _, h := range g.adj[u] {
		if int(h.To) == v {
			return int(h.Edge)
		}
	}
	return -1
}

// PathWeight sums w over the consecutive edges of a vertex path. It returns
// +Inf if the path uses a non-existent edge.
func (g *Graph) PathWeight(path []int32, w WeightFunc) float64 {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		id := g.EdgeBetween(int(path[i]), int(path[i+1]))
		if id < 0 {
			return math.Inf(1)
		}
		total += w(id)
	}
	return total
}

// YenKShortest computes up to k loop-free minimum-weight paths from s to t
// in increasing weight order using Yen's algorithm with Dijkstra as the
// spur-path oracle (the k-shortest-paths baseline of §VI / Appendix C-D).
func (g *Graph) YenKShortest(s, t, k int, w WeightFunc) [][]int32 {
	if k <= 0 {
		return nil
	}
	first, _ := g.Dijkstra(s, t, w, nil, nil)
	if first == nil {
		return nil
	}
	paths := [][]int32{first}
	var candidates []yenCandidate

	edgeOff := make([]bool, g.M())
	vertOff := make([]bool, g.n)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for spur := 0; spur+1 < len(prev); spur++ {
			root := prev[:spur+1]
			for i := range edgeOff {
				edgeOff[i] = false
			}
			for i := range vertOff {
				vertOff[i] = false
			}
			// Remove edges that would recreate an already-found path
			// sharing this root.
			for _, p := range paths {
				if len(p) > spur+1 && equalPrefix(p, root) {
					if id := g.EdgeBetween(int(p[spur]), int(p[spur+1])); id >= 0 {
						edgeOff[id] = true
					}
				}
			}
			for _, c := range candidates {
				if len(c.path) > spur+1 && equalPrefix(c.path, root) {
					if id := g.EdgeBetween(int(c.path[spur]), int(c.path[spur+1])); id >= 0 {
						edgeOff[id] = true
					}
				}
			}
			// Remove root vertices except the spur node itself.
			for _, v := range root[:len(root)-1] {
				vertOff[v] = true
			}
			spurPath, _ := g.Dijkstra(int(prev[spur]), t, w, edgeOff, vertOff)
			if spurPath == nil {
				continue
			}
			full := append(append([]int32{}, root[:len(root)-1]...), spurPath...)
			if containsPath(paths, full) || containsCandidate(candidates, full) {
				continue
			}
			candidates = append(candidates, yenCandidate{path: full, weight: g.PathWeight(full, w)})
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].weight < candidates[best].weight {
				best = i
			}
		}
		paths = append(paths, candidates[best].path)
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func equalPrefix(p, prefix []int32) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func pathsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps [][]int32, p []int32) bool {
	for _, q := range ps {
		if pathsEqual(p, q) {
			return true
		}
	}
	return false
}

type yenCandidate struct {
	path   []int32
	weight float64
}

func containsCandidate(cs []yenCandidate, p []int32) bool {
	for _, c := range cs {
		if pathsEqual(c.path, p) {
			return true
		}
	}
	return false
}
