package graph

// This file implements the length-limited disjoint-path machinery behind the
// paper's Count of Disjoint Paths (CDP) metric, §IV-B1. The paper derives
// c_l(A,B) — the smallest number of edges whose removal disconnects every
// path of at most l hops from router set A to router set B — with "a variant
// of the Ford-Fulkerson algorithm (with various pruning heuristics) that
// removes edges in paths between designated routers ... and verifies whether
// h_l(A) ∩ B = ∅". We reproduce exactly that scheme: repeatedly find a
// shortest (≤ l hop) path from A to B with BFS, delete its edges, and count
// iterations. Each iteration yields one edge-disjoint path, and when the
// loop ends no ≤l-hop path remains, so the removed-path count is both the
// number of edge-disjoint ≤l-hop paths found and a feasible bounded-length
// cut. (Exact bounded-length min-cut is NP-hard for l ≥ 4; the greedy
// shortest-first strategy is the paper's pruning heuristic.)

// DisjointPathsOpts configures DisjointPathsBounded.
type DisjointPathsOpts struct {
	// MaxLen is the hop bound l. Zero or negative means unbounded.
	MaxLen int
	// MaxCount stops counting once this many disjoint paths were found
	// (0 = unlimited). Useful when only "at least 3" matters.
	MaxCount int
	// Forbidden optionally disables edges before the search (by edge ID).
	Forbidden []bool
}

// DisjointPathsBounded returns the greedy count of pairwise edge-disjoint
// paths of at most opts.MaxLen hops from any vertex in A to any vertex in B,
// i.e. the paper's c_l(A,B). Vertices present in both A and B contribute no
// zero-length paths; A and B are treated as disjoint terminals (the paper
// always uses disjoint router sets).
func (g *Graph) DisjointPathsBounded(A, B []int, opts DisjointPathsOpts) int {
	if len(A) == 0 || len(B) == 0 {
		return 0
	}
	enabled := make([]bool, g.M())
	for i := range enabled {
		enabled[i] = true
	}
	if opts.Forbidden != nil {
		for i, f := range opts.Forbidden {
			if f {
				enabled[i] = false
			}
		}
	}
	inB := make([]bool, g.n)
	for _, b := range B {
		inB[b] = true
	}
	inA := make([]bool, g.n)
	for _, a := range A {
		inA[a] = true
	}

	count := 0
	// Reusable BFS state.
	dist := make([]int32, g.n)
	parentEdge := make([]int32, g.n)
	parentVert := make([]int32, g.n)
	queue := make([]int32, 0, g.n)

	for {
		// Multi-source BFS from A, stopping at the first vertex of B.
		for i := range dist {
			dist[i] = Unreachable
		}
		queue = queue[:0]
		for _, a := range A {
			if dist[a] == Unreachable {
				dist[a] = 0
				parentEdge[a] = -1
				parentVert[a] = -1
				queue = append(queue, int32(a))
			}
		}
		hit := int32(-1)
	search:
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			dv := dist[v]
			if opts.MaxLen > 0 && int(dv) >= opts.MaxLen {
				continue
			}
			for _, h := range g.adj[v] {
				if !enabled[h.Edge] || dist[h.To] != Unreachable {
					continue
				}
				dist[h.To] = dv + 1
				parentEdge[h.To] = h.Edge
				parentVert[h.To] = v
				if inB[h.To] && !inA[h.To] {
					hit = h.To
					break search
				}
				queue = append(queue, h.To)
			}
		}
		if hit < 0 {
			return count
		}
		// Remove the edges of the found path.
		for v := hit; parentEdge[v] >= 0; v = parentVert[v] {
			enabled[parentEdge[v]] = false
		}
		count++
		if opts.MaxCount > 0 && count >= opts.MaxCount {
			return count
		}
	}
}

// DisjointPathsPair is shorthand for c_l({s},{t}).
func (g *Graph) DisjointPathsPair(s, t, maxLen int) int {
	return g.DisjointPathsBounded([]int{s}, []int{t}, DisjointPathsOpts{MaxLen: maxLen})
}

// EdgeConnectivityPair returns the exact (unbounded-length) edge
// connectivity between s and t via Ford–Fulkerson augmentation on the
// unit-capacity bidirected graph. Unlike the greedy bounded variant this is
// exact: augmenting paths may cancel earlier flow. Used to validate the
// greedy estimate in tests and to compute unbounded CDP values.
func (g *Graph) EdgeConnectivityPair(s, t int) int {
	if s == t {
		return 0
	}
	// Residual capacities per directed arc: arc 2*id = U->V, 2*id+1 = V->U.
	capn := make([]int8, 2*g.M())
	for i := range capn {
		capn[i] = 1
	}
	arcOf := func(e Edge, from int32, id int32) int32 {
		if e.U == from {
			return 2 * id
		}
		return 2*id + 1
	}
	parentArc := make([]int32, g.n)
	parentVert := make([]int32, g.n)
	visited := make([]bool, g.n)
	queue := make([]int32, 0, g.n)
	flow := 0
	for {
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		visited[s] = true
		queue = append(queue, int32(s))
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, h := range g.adj[v] {
				arc := arcOf(g.edges[h.Edge], v, h.Edge)
				if capn[arc] == 0 || visited[h.To] {
					continue
				}
				visited[h.To] = true
				parentArc[h.To] = arc
				parentVert[h.To] = v
				if int(h.To) == t {
					found = true
					break bfs
				}
				queue = append(queue, h.To)
			}
		}
		if !found {
			return flow
		}
		for v := int32(t); int(v) != s; v = parentVert[v] {
			arc := parentArc[v]
			capn[arc]--
			capn[arc^1]++
		}
		flow++
	}
}

// NeighborhoodWithin returns the set (as a boolean mask) of vertices within
// l hops of any vertex in A, i.e. the paper's h_l(A) including A itself.
func (g *Graph) NeighborhoodWithin(A []int, l int) []bool {
	in := make([]bool, g.n)
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, g.n)
	for _, a := range A {
		if dist[a] == Unreachable {
			dist[a] = 0
			in[a] = true
			queue = append(queue, int32(a))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if int(dist[v]) >= l {
			continue
		}
		for _, h := range g.adj[v] {
			if dist[h.To] == Unreachable {
				dist[h.To] = dist[v] + 1
				in[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return in
}
