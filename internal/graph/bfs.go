package graph

// Unreachable marks a vertex not reachable from the BFS source.
const Unreachable int32 = -1

// BFS computes hop distances from src to every vertex. Unreachable vertices
// get distance Unreachable (-1).
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(src, dist, nil)
	return dist
}

// bfsInto runs BFS from src writing into dist (which must be pre-filled with
// Unreachable). If enabled is non-nil, only edges with enabled[id]==true are
// traversed.
func (g *Graph) bfsInto(src int, dist []int32, enabled []bool) {
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, h := range g.adj[v] {
			if enabled != nil && !enabled[h.Edge] {
				continue
			}
			if dist[h.To] == Unreachable {
				dist[h.To] = dv + 1
				queue = append(queue, h.To)
			}
		}
	}
}

// BFSEnabled computes hop distances from src using only enabled edges.
func (g *Graph) BFSEnabled(src int, enabled []bool) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(src, dist, enabled)
	return dist
}

// Dist returns the hop distance between s and t, or -1 if disconnected.
func (g *Graph) Dist(s, t int) int {
	if s == t {
		return 0
	}
	return int(g.BFS(s)[t])
}

// Connected reports whether the graph is connected (all vertices reachable
// from vertex 0). An empty graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// SubsetConnected reports whether the subgraph induced by enabled edges
// spans all vertices (every vertex reachable from vertex 0 via enabled
// edges). Layer constructions use it to reject disconnecting samples.
func (g *Graph) SubsetConnected(enabled []bool) bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFSEnabled(0, enabled)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// DiameterAndMean computes the exact diameter D and mean shortest-path
// length d over all ordered vertex pairs via N breadth-first searches.
// It returns (-1, 0) for a disconnected graph.
func (g *Graph) DiameterAndMean() (int, float64) {
	if g.n <= 1 {
		return 0, 0
	}
	diam := 0
	var sum float64
	var pairs float64
	dist := make([]int32, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		g.bfsInto(s, dist, nil)
		for t, d := range dist {
			if t == s {
				continue
			}
			if d == Unreachable {
				return -1, 0
			}
			if int(d) > diam {
				diam = int(d)
			}
			sum += float64(d)
			pairs++
		}
	}
	return diam, sum / pairs
}

// SampledMeanDistance estimates the mean shortest path length using BFS from
// at most samples source vertices (deterministically strided). For
// samples >= N it is exact.
func (g *Graph) SampledMeanDistance(samples int) float64 {
	if g.n <= 1 {
		return 0
	}
	if samples <= 0 || samples > g.n {
		samples = g.n
	}
	stride := g.n / samples
	if stride == 0 {
		stride = 1
	}
	var sum float64
	var cnt float64
	dist := make([]int32, g.n)
	for s := 0; s < g.n; s += stride {
		for i := range dist {
			dist[i] = Unreachable
		}
		g.bfsInto(s, dist, nil)
		for t, d := range dist {
			if t != s && d != Unreachable {
				sum += float64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}

// ShortestPathDAGCounts computes, for a fixed source s, the distance of
// every vertex and the number of distinct shortest paths from s to it
// (counts saturate at the given cap to avoid overflow on dense graphs;
// pass cap<=0 for no saturation up to int64 range).
func (g *Graph) ShortestPathDAGCounts(s int, cap int64) (dist []int32, count []int64) {
	dist = make([]int32, g.n)
	count = make([]int64, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	count[s] = 1
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[v] {
			switch {
			case dist[h.To] == Unreachable:
				dist[h.To] = dist[v] + 1
				count[h.To] = count[v]
				queue = append(queue, h.To)
			case dist[h.To] == dist[v]+1:
				count[h.To] += count[v]
				if cap > 0 && count[h.To] > cap {
					count[h.To] = cap
				}
			}
		}
	}
	return dist, count
}

// PathTo reconstructs one shortest path from s to t (inclusive vertex
// sequence), or nil if t is unreachable. If enabled is non-nil only enabled
// edges are used.
func (g *Graph) PathTo(s, t int, enabled []bool) []int32 {
	if s == t {
		return []int32{int32(s)}
	}
	parent := make([]int32, g.n)
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	dist[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if int(v) == t {
			break
		}
		for _, h := range g.adj[v] {
			if enabled != nil && !enabled[h.Edge] {
				continue
			}
			if dist[h.To] == Unreachable {
				dist[h.To] = dist[v] + 1
				parent[h.To] = v
				queue = append(queue, h.To)
			}
		}
	}
	if dist[t] == Unreachable {
		return nil
	}
	path := make([]int32, 0, dist[t]+1)
	for v := int32(t); v != -1; v = parent[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
