// Package graph provides the undirected-graph substrate used by every other
// package in this repository: compact adjacency storage with stable edge
// identifiers, breadth-first search (optionally length-limited and restricted
// to an enabled edge subset), all-pairs shortest-path statistics, greedy
// length-limited edge-disjoint path counting (the Ford–Fulkerson-style
// variant used by the FatPaths paper for its CDP metric), weighted Dijkstra,
// and Yen's k-shortest loop-free paths.
//
// Vertices are integers in [0, N). Edges are undirected, carry a stable
// integer ID in [0, M), and the graph is simple (no self loops, no parallel
// edges) — topology generators enforce simplicity before insertion.
package graph

import (
	"fmt"
	"sort"
)

// Half is one direction of an undirected edge as seen from a vertex's
// adjacency list: the opposite endpoint and the edge's stable ID.
type Half struct {
	To   int32
	Edge int32
}

// Edge is an undirected edge between vertices U and V (U < V is not
// guaranteed; endpoints are stored in insertion order).
type Edge struct {
	U, V int32
}

// Other returns the endpoint of e opposite to x.
func (e Edge) Other(x int32) int32 {
	if e.U == x {
		return e.V
	}
	return e.U
}

// Graph is an undirected simple graph with stable edge IDs.
// The zero value is an empty graph with no vertices; use New.
type Graph struct {
	n     int
	adj   [][]Half
	edges []Edge
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]Half, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the slice of undirected edges indexed by edge ID.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if int(h.To) == b {
			return true
		}
	}
	return false
}

// AddEdge inserts an undirected edge between u and v and returns its ID.
// It panics on self loops, out-of-range vertices, or duplicate edges:
// topologies in this repository are simple graphs by construction, so a
// duplicate indicates a generator bug that must not be silently absorbed.
func (g *Graph) AddEdge(u, v int) int {
	if u == v {
		panic(fmt.Sprintf("graph: self loop at vertex %d", u))
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	g.adj[u] = append(g.adj[u], Half{To: int32(v), Edge: int32(id)})
	g.adj[v] = append(g.adj[v], Half{To: int32(u), Edge: int32(id)})
	return id
}

// TryAddEdge inserts the edge unless it already exists or is a self loop,
// reporting whether an insertion happened. Random constructions (Jellyfish)
// use it to retry sampling without panicking.
func (g *Graph) TryAddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n || g.HasEdge(u, v) {
		return false
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	g.adj[u] = append(g.adj[u], Half{To: int32(v), Edge: int32(id)})
	g.adj[v] = append(g.adj[v], Half{To: int32(u), Edge: int32(id)})
	return true
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, adj: make([][]Half, g.n), edges: make([]Edge, len(g.edges))}
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = append([]Half(nil), g.adj[v]...)
	}
	return c
}

// Subgraph returns a new graph on the same vertex set containing exactly the
// edges whose IDs are enabled. Edge IDs are NOT preserved in the subgraph.
func (g *Graph) Subgraph(enabled []bool) *Graph {
	if len(enabled) != len(g.edges) {
		panic("graph: enabled mask length mismatch")
	}
	s := New(g.n)
	for id, e := range g.edges {
		if enabled[id] {
			s.AddEdge(int(e.U), int(e.V))
		}
	}
	return s
}

// SubgraphFromEdgeIDs returns a new graph containing exactly the listed edges.
func (g *Graph) SubgraphFromEdgeIDs(ids []int) *Graph {
	s := New(g.n)
	for _, id := range ids {
		e := g.edges[id]
		s.AddEdge(int(e.U), int(e.V))
	}
	return s
}

// MaxDegree returns the maximum vertex degree (0 for an edgeless graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	d := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if len(g.adj[v]) != d {
			return false, 0
		}
	}
	return true, d
}

// SortAdjacency orders every adjacency list by neighbor ID. Generators call
// it once after construction so that iteration order (and therefore every
// seeded random experiment) is independent of insertion order.
func (g *Graph) SortAdjacency() {
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := range g.adj {
		h[len(g.adj[v])]++
	}
	return h
}
