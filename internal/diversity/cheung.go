package diversity

import (
	"math/rand"

	"repro/internal/graph"
)

// This file implements Appendix B-C of the paper: the randomized
// linear-algebraic length-limited connectivity computation adapted from
// Cheung, Lau and Leung. Vertices carry vectors over a finite field F;
// pairwise-orthogonal unit vectors are injected at the source's neighbors
// and propagated through random edge coefficients via the fixed-point
// iteration F = F·K + Ps (Eq. 15). After l iterations the rank of the
// columns selected at the sink's neighbors equals, with high probability,
// the number of disjoint paths of length at most l+1 (Theorem 2).
//
// The field is GF(p) with p = 2³¹ − 1, large enough that random degeneracy
// is negligible at the radixes used here; arithmetic stays within uint64.

const fieldP uint64 = 2147483647 // 2^31 - 1, prime

func fmul(a, b uint64) uint64 { return a * b % fieldP }
func fadd(a, b uint64) uint64 { return (a + b) % fieldP }

func fsub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + fieldP - b
}

// finv computes the multiplicative inverse via Fermat's little theorem.
func finv(a uint64) uint64 {
	// a^(p-2) mod p
	var r uint64 = 1
	e := fieldP - 2
	base := a % fieldP
	for e > 0 {
		if e&1 == 1 {
			r = fmul(r, base)
		}
		base = fmul(base, base)
		e >>= 1
	}
	return r
}

func randNonzero(rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(fieldP-1))) + 1
}

// matRank computes the rank of a dense matrix over GF(p) via Gaussian
// elimination. rows are modified in place.
func matRank(rows [][]uint64) int {
	if len(rows) == 0 {
		return 0
	}
	cols := len(rows[0])
	rank := 0
	for c := 0; c < cols && rank < len(rows); c++ {
		// Find pivot.
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r][c] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		inv := finv(rows[rank][c])
		for j := c; j < cols; j++ {
			rows[rank][j] = fmul(rows[rank][j], inv)
		}
		for r := 0; r < len(rows); r++ {
			if r == rank || rows[r][c] == 0 {
				continue
			}
			f := rows[r][c]
			for j := c; j < cols; j++ {
				rows[r][j] = fsub(rows[r][j], fmul(f, rows[rank][j]))
			}
		}
		rank++
	}
	return rank
}

// VertexConnectivityBounded returns (w.h.p.) the maximum number of
// internally vertex-disjoint s-t paths of length at most maxLen. s and t
// must be distinct and non-adjacent (vertex connectivity is not defined
// for neighbors; Appendix B, footnote 6).
func VertexConnectivityBounded(g *graph.Graph, s, t, maxLen int, rng *rand.Rand) int {
	if s == t || g.HasEdge(s, t) {
		panic("VertexConnectivityBounded: s and t must be distinct non-neighbors")
	}
	if maxLen < 2 {
		return 0
	}
	n := g.N()
	k := g.Degree(s)
	// Random connection matrix K: one coefficient per directed traversal.
	coeff := make([]uint64, 2*g.M())
	for i := range coeff {
		coeff[i] = randNonzero(rng)
	}
	arcOf := func(e graph.Edge, from int32, id int32) int32 {
		if e.U == from {
			return 2 * id
		}
		return 2*id + 1
	}
	// Ps: unit vector index per neighbor of s.
	unit := make(map[int32]int, k)
	for i, h := range g.Neighbors(s) {
		unit[h.To] = i
	}
	// F columns: F[v] is the k-vector at vertex v.
	F := make([][]uint64, n)
	newF := make([][]uint64, n)
	for v := range F {
		F[v] = make([]uint64, k)
		newF[v] = make([]uint64, k)
	}
	// maxLen-hop paths: inject + (maxLen-1) propagation rounds. Each
	// iteration of Eq. 15 both propagates one hop and re-injects at s's
	// neighborhood, so running maxLen-1 iterations admits paths
	// s -> neighbor (1 hop) plus up to maxLen-2 further hops to a neighbor
	// of t, plus the final hop into t.
	iters := maxLen - 1
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			col := newF[v]
			for i := range col {
				col[i] = 0
			}
			for _, h := range g.Neighbors(v) {
				u := int(h.To)
				if u == s || u == t {
					continue // paths are internally disjoint; do not route through endpoints
				}
				c := coeff[arcOf(g.Edge(int(h.Edge)), h.To, h.Edge)]
				src := F[u]
				for i := range col {
					if src[i] != 0 {
						col[i] = fadd(col[i], fmul(c, src[i]))
					}
				}
			}
			if i, ok := unit[int32(v)]; ok {
				col[i] = fadd(col[i], 1)
			}
		}
		F, newF = newF, F
	}
	// Rank of columns at t's neighbors.
	rows := make([][]uint64, 0, g.Degree(t))
	for _, h := range g.Neighbors(t) {
		rows = append(rows, append([]uint64(nil), F[h.To]...))
	}
	return matRank(rows)
}

// EdgeConnectivityBounded returns (w.h.p.) the maximum number of
// edge-disjoint s-t paths of length at most maxLen, using the directed-arc
// transformed graph of Appendix B-C (Eq. 12): vectors live on arcs, unit
// vectors are injected on arcs leaving s, and the rank is taken over arcs
// entering t. Immediate U-turns (i,k)->(k,i) are excluded — simple paths
// never take them.
func EdgeConnectivityBounded(g *graph.Graph, s, t, maxLen int, rng *rand.Rand) int {
	if s == t {
		return 0
	}
	if maxLen < 1 {
		return 0
	}
	m2 := 2 * g.M() // directed arcs: arc 2e = U->V, 2e+1 = V->U
	k := g.Degree(s)
	// Unit index per arc leaving s.
	unit := make(map[int32]int, k)
	for i, h := range g.Neighbors(s) {
		a := int32(2 * h.Edge)
		if g.Edge(int(h.Edge)).U != int32(s) {
			a++
		}
		unit[a] = i
	}
	// Incoming-arc lists per vertex (arcs whose head is v).
	inArcs := make([][]int32, g.N())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		inArcs[ed.V] = append(inArcs[ed.V], int32(2*e))
		inArcs[ed.U] = append(inArcs[ed.U], int32(2*e+1))
	}
	// K′ has one random coefficient per consecutive arc PAIR (i,k),(k,j)
	// (Eq. 12) — a per-arc coefficient would make every vertex broadcast a
	// single mixed vector, collapsing edge-disjoint paths that share a
	// vertex down to vertex-disjoint counts.
	coeff := make(map[int64]uint64)
	pairKey := func(in, out int32) int64 { return int64(in)*int64(m2) + int64(out) }
	for out := int32(0); out < int32(m2); out++ {
		e := g.Edge(int(out / 2))
		tail := e.U
		if out%2 != 0 {
			tail = e.V
		}
		for _, in := range inArcs[tail] {
			if in/2 == out/2 {
				continue
			}
			coeff[pairKey(in, out)] = randNonzero(rng)
		}
	}
	F := make([][]uint64, m2)
	newF := make([][]uint64, m2)
	for a := range F {
		F[a] = make([]uint64, k)
		newF[a] = make([]uint64, k)
	}
	// maxLen-edge paths: inject (1 edge) + maxLen-1 propagations.
	iters := maxLen - 1
	for it := 0; it <= iters; it++ {
		for a := int32(0); a < int32(m2); a++ {
			col := newF[a]
			for i := range col {
				col[i] = 0
			}
			// Tail vertex of arc a.
			var tail int32
			e := g.Edge(int(a / 2))
			if a%2 == 0 {
				tail = e.U
			} else {
				tail = e.V
			}
			// Do not extend paths out of t: they have arrived.
			if int(tail) != t && int(tail) != s {
				for _, in := range inArcs[tail] {
					if in/2 == a/2 {
						continue // U-turn on the same undirected edge
					}
					c := coeff[pairKey(in, a)]
					src := F[in]
					for i := range col {
						if src[i] != 0 {
							col[i] = fadd(col[i], fmul(c, src[i]))
						}
					}
				}
			}
			if i, ok := unit[a]; ok {
				col[i] = fadd(col[i], 1)
			}
		}
		F, newF = newF, F
	}
	rows := make([][]uint64, 0, g.Degree(t))
	for _, in := range inArcs[t] {
		rows = append(rows, append([]uint64(nil), F[in]...))
	}
	return matRank(rows)
}
