package diversity

import (
	"repro/internal/graph"
)

// This file implements Appendix B-A of the paper: path counting via
// adjacency-matrix powers (Theorem 1) and the next-hop-set variant used to
// derive routing tables. These are O(N³) per multiplication and intended
// for the low-diameter graphs the paper targets, where very few iterations
// are needed.

// PathCountMatrix returns Q = A^l where A is the adjacency matrix of g:
// Q[i][j] is the number of (not necessarily simple) i->j walks of exactly
// l steps. Counts saturate at satCap if satCap > 0.
func PathCountMatrix(g *graph.Graph, l int, satCap int64) [][]int64 {
	n := g.N()
	a := adjacencyMatrix(g)
	if l <= 0 {
		// A^0 = I.
		q := makeMat(n)
		for i := 0; i < n; i++ {
			q[i][i] = 1
		}
		return q
	}
	q := a
	for step := 1; step < l; step++ {
		q = matMulSat(q, a, satCap)
	}
	return q
}

// WalkCount returns the number of s->t walks of exactly l steps.
func WalkCount(g *graph.Graph, s, t, l int) int64 {
	return PathCountMatrix(g, l, 0)[s][t]
}

func adjacencyMatrix(g *graph.Graph) [][]int64 {
	n := g.N()
	a := makeMat(n)
	for _, e := range g.Edges() {
		a[e.U][e.V] = 1
		a[e.V][e.U] = 1
	}
	return a
}

func makeMat(n int) [][]int64 {
	backing := make([]int64, n*n)
	m := make([][]int64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

func matMulSat(a, b [][]int64, satCap int64) [][]int64 {
	n := len(a)
	c := makeMat(n)
	for i := 0; i < n; i++ {
		ai := a[i]
		ci := c[i]
		for k := 0; k < n; k++ {
			if ai[k] == 0 {
				continue
			}
			aik := ai[k]
			bk := b[k]
			for j := 0; j < n; j++ {
				ci[j] += aik * bk[j]
			}
		}
		if satCap > 0 {
			for j := range ci {
				if ci[j] > satCap {
					ci[j] = satCap
				}
			}
		}
	}
	return c
}

// NextHopSets computes, per Appendix B-A1, for every (source s, destination
// t) pair the set of first-hop neighbors of s that lie on some walk of at
// most maxLen steps from s to t, shortest-first: the result for (s,t)
// contains exactly the neighbors starting shortest paths (the sets an
// adaptive router would load-balance over). The representation is a bitset
// over s's adjacency-list positions.
func NextHopSets(g *graph.Graph, maxLen int) [][]uint64 {
	n := g.N()
	// dist[t] via BFS per source gives shortest path lengths; a neighbor u
	// of s starts a shortest path to t iff dist_u(t) == dist_s(t) - 1.
	// (maxLen only matters for unreachable-within-bound pairs.)
	dists := make([][]int32, n)
	for v := 0; v < n; v++ {
		dists[v] = g.BFS(v)
	}
	sets := make([][]uint64, n)
	for s := 0; s < n; s++ {
		row := make([]uint64, n)
		for t := 0; t < n; t++ {
			if t == s || dists[s][t] < 0 || int(dists[s][t]) > maxLen {
				continue
			}
			var mask uint64
			for pos, h := range g.Neighbors(s) {
				if pos >= 64 {
					break // bitset width; radix > 64 unused in our configs
				}
				if dists[int(h.To)][t] == dists[s][t]-1 {
					mask |= 1 << uint(pos)
				}
			}
			row[t] = mask
		}
		sets[s] = row
	}
	return sets
}
