package diversity

import (
	"repro/internal/graph"
)

// Gusfield's simplification of the Gomory–Hu construction (Appendix B-B):
// an equivalent-flow tree preserving all-pairs max-flow values (here:
// unbounded edge connectivity) using exactly N−1 max-flow computations on
// the ORIGINAL graph — no contractions — which is why the paper prefers it
// ("the implementation [is] much easier").

// EquivalentFlowTree holds Gusfield's tree: parent links plus the max-flow
// value toward the parent. The all-pairs edge connectivity between u and v
// is the minimum flow label on the tree path between them.
type EquivalentFlowTree struct {
	Parent []int32
	Flow   []int32 // Flow[v] = edge connectivity between v and Parent[v]
}

// BuildEquivalentFlowTree runs Gusfield's algorithm with the exact
// Ford–Fulkerson pair connectivity as the max-flow oracle.
func BuildEquivalentFlowTree(g *graph.Graph) *EquivalentFlowTree {
	n := g.N()
	t := &EquivalentFlowTree{
		Parent: make([]int32, n),
		Flow:   make([]int32, n),
	}
	// Classic initialization: every vertex hangs off vertex 0.
	for v := 1; v < n; v++ {
		t.Parent[v] = 0
	}
	for s := 1; s < n; s++ {
		p := int(t.Parent[s])
		f := g.EdgeConnectivityPair(s, p)
		t.Flow[s] = int32(f)
		// Re-hang siblings whose cut is on this side.
		// Gusfield: for every v > s with Parent[v] == p, if v is on s's
		// side of the minimum cut, re-parent v to s. Determining the side
		// requires the cut; we recompute it from the residual reachability
		// of the final flow, so the oracle returns it too.
		side := minCutSide(g, s, p)
		for v := s + 1; v < n; v++ {
			if int(t.Parent[v]) == p && side[v] {
				t.Parent[v] = int32(s)
			}
		}
		if side[int(t.Parent[p])] && p != 0 {
			// Standard adjustment when the parent's parent falls on s's
			// side: swap roles.
			t.Parent[s] = t.Parent[p]
			t.Parent[p] = int32(s)
			t.Flow[s] = t.Flow[p]
			t.Flow[p] = int32(f)
		}
	}
	return t
}

// Connectivity returns the all-pairs edge connectivity between u and v from
// the tree: the minimum flow label on the tree path.
func (t *EquivalentFlowTree) Connectivity(u, v int) int {
	if u == v {
		return 0
	}
	// Walk both vertices to the root recording path minima. Depths are at
	// most N; this is O(N) per query, ample for analysis use.
	min := int32(1<<31 - 1)
	au, av := int32(u), int32(v)
	seen := make(map[int32]int32) // vertex -> min flow from u down to it
	cur, m := au, min
	for {
		seen[cur] = m
		if cur == 0 && t.Parent[cur] == 0 {
			break
		}
		if t.Flow[cur] < m {
			m = t.Flow[cur]
		}
		next := t.Parent[cur]
		if next == cur {
			break
		}
		cur = next
	}
	cur, m = av, min
	for {
		if mu, ok := seen[cur]; ok {
			if mu < m {
				return int(mu)
			}
			return int(m)
		}
		if t.Flow[cur] < m {
			m = t.Flow[cur]
		}
		next := t.Parent[cur]
		if next == cur {
			break
		}
		cur = next
	}
	if m == 1<<31-1 {
		return 0
	}
	return int(m)
}

// minCutSide returns the source-side vertex set of a minimum s-t edge cut,
// computed as the vertices reachable from s in the residual graph of a
// maximum unit-capacity flow.
func minCutSide(g *graph.Graph, s, t int) []bool {
	// Re-run Ford-Fulkerson, tracking residual capacities.
	capn := make([]int8, 2*g.M())
	for i := range capn {
		capn[i] = 1
	}
	arcOf := func(e graph.Edge, from int32, id int32) int32 {
		if e.U == from {
			return 2 * id
		}
		return 2*id + 1
	}
	parentArc := make([]int32, g.N())
	parentVert := make([]int32, g.N())
	visited := make([]bool, g.N())
	queue := make([]int32, 0, g.N())
	for {
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		visited[s] = true
		queue = append(queue, int32(s))
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, h := range g.Neighbors(int(v)) {
				arc := arcOf(g.Edge(int(h.Edge)), v, h.Edge)
				if capn[arc] == 0 || visited[h.To] {
					continue
				}
				visited[h.To] = true
				parentArc[h.To] = arc
				parentVert[h.To] = v
				if int(h.To) == t {
					found = true
					break bfs
				}
				queue = append(queue, h.To)
			}
		}
		if !found {
			// visited is now the residual-reachable source side.
			return visited
		}
		for v := int32(t); int(v) != s; v = parentVert[v] {
			arc := parentArc[v]
			capn[arc]--
			capn[arc^1]++
		}
	}
}

// AllPairsConnectivitySample validates the tree against direct max-flow on
// sampled pairs, returning the number of mismatches (0 for a correct tree).
func AllPairsConnectivitySample(g *graph.Graph, t *EquivalentFlowTree, pairs [][2]int) int {
	bad := 0
	for _, pr := range pairs {
		if t.Connectivity(pr[0], pr[1]) != g.EdgeConnectivityPair(pr[0], pr[1]) {
			bad++
		}
	}
	return bad
}
