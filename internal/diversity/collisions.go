package diversity

import (
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Collisions computes the Fig 4 histogram: for every ordered router pair
// (r_s, r_t) used by at least one flow of the pattern, the number of flows
// whose source endpoint sits on r_s and destination endpoint on r_t. Two
// flows with the same router pair "collide" — with single-shortest-path
// routing they are forced onto an identical path (§IV-A).
//
// The returned histogram maps collision multiplicity -> number of router
// pairs with that multiplicity.
func Collisions(t *topo.Topology, p traffic.Pattern) *stats.IntHistogram {
	counts := make(map[int64]int)
	for _, f := range p.Flows {
		rs := t.RouterOf(int(f.Src))
		rt := t.RouterOf(int(f.Dst))
		if rs == rt {
			continue // same-router flows never enter the network
		}
		counts[int64(rs)*int64(t.Nr())+int64(rt)]++
	}
	hist := stats.NewIntHistogram()
	for _, c := range counts {
		hist.Add(c)
	}
	return hist
}

// CollisionTakeaway reports the paper's §IV-A takeaway quantities: the
// fraction of router pairs with >= 4 collisions (the "<1%" claim for D>=2)
// and the maximum observed multiplicity.
func CollisionTakeaway(h *stats.IntHistogram) (fracAtLeast4 float64, max int) {
	fracAtLeast4 = h.FractionAtLeast(4)
	keys := h.Keys()
	if len(keys) > 0 {
		max = keys[len(keys)-1]
	}
	return fracAtLeast4, max
}

// OverlapCount computes, for a pattern routed over single shortest paths,
// how many flows traverse each router-router link (a direct measure of path
// overlap, the second flow-conflict type of §IV-A). It returns a histogram
// of link load in flows.
func OverlapCount(t *topo.Topology, p traffic.Pattern) *stats.IntHistogram {
	load := make([]int, t.G.M())
	// One BFS parent-edge tree per source router, cached across flows.
	type tree struct{ parentVert, parentEdge []int32 }
	cache := make(map[int]tree)
	buildTree := func(src int) tree {
		pv := make([]int32, t.G.N())
		pe := make([]int32, t.G.N())
		dist := make([]int32, t.G.N())
		for i := range dist {
			dist[i] = -1
			pv[i] = -1
			pe[i] = -1
		}
		dist[src] = 0
		queue := []int32{int32(src)}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, h := range t.G.Neighbors(int(v)) {
				if dist[h.To] == -1 {
					dist[h.To] = dist[v] + 1
					pv[h.To] = v
					pe[h.To] = h.Edge
					queue = append(queue, h.To)
				}
			}
		}
		return tree{parentVert: pv, parentEdge: pe}
	}
	for _, f := range p.Flows {
		rs := t.RouterOf(int(f.Src))
		rt := t.RouterOf(int(f.Dst))
		if rs == rt {
			continue
		}
		tr, ok := cache[rs]
		if !ok {
			tr = buildTree(rs)
			cache[rs] = tr
		}
		for v := int32(rt); tr.parentEdge[v] >= 0; v = tr.parentVert[v] {
			load[tr.parentEdge[v]]++
		}
	}
	hist := stats.NewIntHistogram()
	for _, l := range load {
		hist.Add(l)
	}
	return hist
}
