// Package diversity implements the path-diversity analysis of §IV of the
// FatPaths paper: minimal-path length/count distributions (Fig 6), counts
// of disjoint non-minimal paths CDP (Fig 7, Table IV), Path Interference PI
// (Fig 8, Table IV), Total Network Load (§IV-B3), per-pattern collision
// histograms (Fig 4), and the matrix- and rank-based path counting
// machinery of Appendix B.
package diversity

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topo"
)

// MinimalPathStats summarizes the distributions of Fig 6: lengths lmin(s,t)
// of minimal paths and diversities cmin(s,t) (numbers of edge-disjoint
// minimal paths) over router pairs.
type MinimalPathStats struct {
	// LenHist[l] is the number of router pairs with lmin == l.
	LenHist *stats.IntHistogram
	// CountHist[c] is the number of router pairs with cmin == c
	// (values > 3 are grouped under key 4, matching the ">3" bucket).
	CountHist *stats.IntHistogram
	// SingleMinimalFrac is the fraction of pairs with exactly one minimal
	// path — the paper's "shortest paths fall short" headline quantity.
	SingleMinimalFrac float64
}

// MinimalPaths computes lmin/cmin distributions over all router pairs if
// samples <= 0, or over that many uniformly sampled pairs otherwise.
func MinimalPaths(g *graph.Graph, samples int, rng *rand.Rand) MinimalPathStats {
	res := MinimalPathStats{
		LenHist:   stats.NewIntHistogram(),
		CountHist: stats.NewIntHistogram(),
	}
	single := int64(0)
	consider := func(s, t int, dist []int32) {
		l := int(dist[t])
		if l <= 0 {
			return
		}
		res.LenHist.Add(l)
		c := g.DisjointPathsBounded([]int{s}, []int{t}, graph.DisjointPathsOpts{MaxLen: l, MaxCount: 64})
		if c == 1 {
			single++
		}
		if c > 3 {
			c = 4
		}
		res.CountHist.Add(c)
	}
	if samples <= 0 {
		for s := 0; s < g.N(); s++ {
			dist := g.BFS(s)
			for t := s + 1; t < g.N(); t++ {
				consider(s, t, dist)
			}
		}
	} else {
		for i := 0; i < samples; i++ {
			s, t := graph.SampleDistinctPair(rng, g.N())
			dist := g.BFS(s)
			consider(s, t, dist)
		}
	}
	if res.CountHist.Total > 0 {
		res.SingleMinimalFrac = float64(single) / float64(res.CountHist.Total)
	}
	return res
}

// CDPSummary holds the radix-normalized disjoint-path statistics of
// Table IV: counts are reported as fractions of the network radix k′.
type CDPSummary struct {
	L        int          // the hop bound l
	Raw      stats.Sample // raw counts c_l per sampled pair
	Mean     float64      // mean of c_l / k'
	Tail1Pct float64      // 1% tail of c_l / k'
}

// CDP samples router pairs u.a.r. and computes c_l({s},{t}) for the given
// hop bound, returning paper-style radix-normalized summaries.
func CDP(g *graph.Graph, kPrime, l, samples int, rng *rand.Rand) CDPSummary {
	return CDPAmong(g, nil, kPrime, l, samples, rng)
}

// CDPAmong is CDP restricted to a vertex pool (e.g. only endpoint-hosting
// routers of a fat tree — traffic never originates at aggregation or core
// switches, and Table IV's FT3 row measures edge-to-edge diversity).
// A nil pool means all vertices.
func CDPAmong(g *graph.Graph, pool []int, kPrime, l, samples int, rng *rand.Rand) CDPSummary {
	var sample stats.Sample
	for i := 0; i < samples; i++ {
		s, t := samplePoolPair(rng, g.N(), pool)
		c := g.DisjointPathsBounded([]int{s}, []int{t}, graph.DisjointPathsOpts{MaxLen: l})
		sample.Add(float64(c))
	}
	sum := CDPSummary{L: l, Raw: sample}
	if kPrime > 0 {
		sum.Mean = sample.Mean() / float64(kPrime)
		sum.Tail1Pct = sample.Percentile(0.01) / float64(kPrime)
	}
	return sum
}

// CDPDistribution returns the raw distribution of c_l(A,B) over sampled
// pairs for several hop bounds (Fig 7's panels).
func CDPDistribution(g *graph.Graph, ls []int, samples int, rng *rand.Rand) map[int]*stats.IntHistogram {
	out := make(map[int]*stats.IntHistogram, len(ls))
	for _, l := range ls {
		out[l] = stats.NewIntHistogram()
	}
	for i := 0; i < samples; i++ {
		s, t := graph.SampleDistinctPair(rng, g.N())
		for _, l := range ls {
			c := g.DisjointPathsBounded([]int{s}, []int{t}, graph.DisjointPathsOpts{MaxLen: l})
			out[l].Add(c)
		}
	}
	return out
}

// PISummary holds radix-normalized path-interference statistics.
type PISummary struct {
	L          int
	Raw        stats.Sample
	Mean       float64
	Tail999Pct float64
}

// PathInterference samples router quadruples (a,b),(c,d) u.a.r. and
// computes I^l_{ac,bd} = c_l({a,c},{b}) + c_l({a,c},{d}) − c_l({a,c},{b,d})
// (§IV-B2), returning radix-normalized summaries as in Table IV.
func PathInterference(g *graph.Graph, kPrime, l, samples int, rng *rand.Rand) PISummary {
	return PathInterferenceAmong(g, nil, kPrime, l, samples, rng)
}

// PathInterferenceAmong restricts the sampled communicating quadruples to a
// vertex pool (nil = all vertices); see CDPAmong.
func PathInterferenceAmong(g *graph.Graph, pool []int, kPrime, l, samples int, rng *rand.Rand) PISummary {
	var sample stats.Sample
	for i := 0; i < samples; i++ {
		a, b, c, d := sampleQuadruplePool(rng, g.N(), pool)
		i1 := g.DisjointPathsBounded([]int{a, c}, []int{b}, graph.DisjointPathsOpts{MaxLen: l})
		i2 := g.DisjointPathsBounded([]int{a, c}, []int{d}, graph.DisjointPathsOpts{MaxLen: l})
		i3 := g.DisjointPathsBounded([]int{a, c}, []int{b, d}, graph.DisjointPathsOpts{MaxLen: l})
		pi := i1 + i2 - i3
		if pi < 0 {
			pi = 0 // greedy counting noise; interference is non-negative
		}
		sample.Add(float64(pi))
	}
	sum := PISummary{L: l, Raw: sample}
	if kPrime > 0 {
		sum.Mean = sample.Mean() / float64(kPrime)
		sum.Tail999Pct = sample.Percentile(0.999) / float64(kPrime)
	}
	return sum
}

func sampleQuadruplePool(rng *rand.Rand, n int, pool []int) (a, b, c, d int) {
	vals := make(map[int]bool, 4)
	out := [4]int{}
	for i := 0; i < 4; {
		v := poolDraw(rng, n, pool)
		if !vals[v] {
			vals[v] = true
			out[i] = v
			i++
		}
	}
	return out[0], out[1], out[2], out[3]
}

func poolDraw(rng *rand.Rand, n int, pool []int) int {
	if pool == nil {
		return rng.Intn(n)
	}
	return pool[rng.Intn(len(pool))]
}

func samplePoolPair(rng *rand.Rand, n int, pool []int) (int, int) {
	if pool == nil {
		return graph.SampleDistinctPair(rng, n)
	}
	for {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if a != b {
			return a, b
		}
	}
}

// TNL returns the Total Network Load bound of §IV-B3: the maximum number of
// concurrent flows a topology can carry without congestion, k′·N_r / d,
// where d is the average (routing) path length.
func TNL(kPrime, nr int, avgPathLen float64) float64 {
	if avgPathLen <= 0 {
		return 0
	}
	return float64(kPrime*nr) / avgPathLen
}

// TNLOf computes TNL using the topology's exact mean shortest-path length
// (minimal routing assumption, d <= D).
func TNLOf(t *topo.Topology) float64 {
	_, d := t.G.DiameterAndMean()
	return TNL(t.NominalRadix, t.Nr(), d)
}

// HostRouters returns the routers that host at least one endpoint — the
// sampling pool Table IV uses for heterogeneous topologies (fat trees).
func HostRouters(t *topo.Topology) []int {
	var out []int
	for r := 0; r < t.Nr(); r++ {
		if lo, hi := t.Endpoints(r); hi > lo {
			out = append(out, r)
		}
	}
	return out
}
