package diversity

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestMinimalPathsClique(t *testing.T) {
	c, _ := topo.Complete(9, 0)
	mp := MinimalPaths(c.G, 0, nil)
	// All pairs at distance 1 with exactly one minimal path.
	if mp.LenHist.Fraction(1) != 1.0 {
		t.Fatalf("clique lmin distribution %v, want all at 1", mp.LenHist)
	}
	if mp.SingleMinimalFrac != 1.0 {
		t.Fatalf("clique single-minimal fraction %f, want 1", mp.SingleMinimalFrac)
	}
}

func TestMinimalPathsSlimFlyFallsShort(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	mp := MinimalPaths(sf.G, 0, nil)
	// §IV-C1: in SF most router pairs are connected by ONE minimal path.
	if mp.SingleMinimalFrac < 0.5 {
		t.Fatalf("SF single-minimal fraction %f, want > 0.5 (shortest paths fall short)", mp.SingleMinimalFrac)
	}
	// Diameter 2: lengths are 1 or 2 only.
	for _, l := range mp.LenHist.Keys() {
		if l < 1 || l > 2 {
			t.Fatalf("unexpected lmin %d on diameter-2 SF", l)
		}
	}
}

func TestMinimalPathsHyperXDiverse(t *testing.T) {
	hx, _ := topo.HyperX(2, 5, 0)
	mp := MinimalPaths(hx.G, 0, nil)
	// Fig 6: HX has the highest minimal diversity — most pairs (those
	// differing in both coordinates) have two disjoint minimal paths.
	if mp.CountHist.Fraction(2) < 0.5 {
		t.Fatalf("HX(2,5) fraction with cmin=2 is %f, want > 0.5", mp.CountHist.Fraction(2))
	}
}

func TestMinimalPathsSampled(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(11)
	mp := MinimalPaths(sf.G, 200, rng)
	if mp.LenHist.Total != 200 {
		t.Fatalf("sampled total %d, want 200", mp.LenHist.Total)
	}
}

func TestCDPCliqueSaturatesAtRadix(t *testing.T) {
	c, _ := topo.Complete(20, 0)
	rng := graph.NewRand(1)
	sum := CDP(c.G, 20, 2, 100, rng)
	// Table IV row "clique": CDP mean = 100% of k'.
	if sum.Mean < 0.99 || sum.Mean > 1.01 {
		t.Fatalf("clique CDP mean %f, want 1.0 (100%% of radix)", sum.Mean)
	}
}

func TestCDPSlimFlyHasNonMinimalDiversity(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(2)
	// Almost-minimal paths (l = D+1 = 3) give >= 3 disjoint paths for
	// virtually all pairs (§IV-C2 takeaway).
	sum := CDP(sf.G, sf.NominalRadix, 3, 300, rng)
	if sum.Raw.Percentile(0.02) < 3 {
		t.Fatalf("SF c_3 2%%-tail = %f, want >= 3 disjoint almost-minimal paths", sum.Raw.Percentile(0.02))
	}
	// And strictly more diversity than at l = 2.
	sum2 := CDP(sf.G, sf.NominalRadix, 2, 300, graph.NewRand(2))
	if sum.Mean <= sum2.Mean {
		t.Fatalf("c_3 mean (%f) should exceed c_2 mean (%f)", sum.Mean, sum2.Mean)
	}
}

func TestCDPDistributionMonotoneInL(t *testing.T) {
	df, _ := topo.Dragonfly(3)
	rng := graph.NewRand(3)
	hists := CDPDistribution(df.G, []int{2, 3, 4}, 100, rng)
	if hists[2].Mean() > hists[3].Mean() || hists[3].Mean() > hists[4].Mean() {
		t.Fatalf("CDP must grow with l: %f, %f, %f", hists[2].Mean(), hists[3].Mean(), hists[4].Mean())
	}
}

func TestPathInterferenceNonNegativeAndBounded(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	rng := graph.NewRand(4)
	pi := PathInterference(sf.G, sf.NominalRadix, 3, 200, rng)
	if pi.Raw.Min() < 0 {
		t.Fatal("PI must be non-negative")
	}
	if pi.Mean < 0 || pi.Mean > 2 {
		t.Fatalf("PI mean %f out of sane range", pi.Mean)
	}
}

func TestPathInterferenceCliqueSmall(t *testing.T) {
	c, _ := topo.Complete(30, 0)
	rng := graph.NewRand(5)
	pi := PathInterference(c.G, 30, 2, 200, rng)
	// Table IV: clique PI ≈ 2% — two pairs only interfere on the two
	// 2-hop paths through each other's endpoints.
	if pi.Mean > 0.12 {
		t.Fatalf("clique PI mean %f, want small (paper: 2%%)", pi.Mean)
	}
}

func TestTNL(t *testing.T) {
	if got := TNL(10, 100, 2.0); got != 500 {
		t.Fatalf("TNL = %f, want 500", got)
	}
	if got := TNL(10, 100, 0); got != 0 {
		t.Fatal("TNL with zero path length must be 0")
	}
	sf, _ := topo.SlimFly(5, 0)
	tnl := TNLOf(sf)
	// SF(5): k'=7, Nr=50, d < 2 => TNL > 175.
	if tnl < 175 || tnl > 350 {
		t.Fatalf("SF(5) TNL = %f out of expected range", tnl)
	}
}

func TestCollisionsControlledOffDiagonal(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0) // p=4, N=200, Nr=50
	// Offset exactly one concentration: every router's 4 endpoints all
	// target the next router -> 50 router pairs with multiplicity 4.
	pat := traffic.OffDiagonal(sf.N(), 4)
	hist := Collisions(sf, pat)
	if hist.Counts[4] != 50 || hist.Total != 50 {
		t.Fatalf("collision histogram %v, want {4:50}", hist)
	}
	frac4, max := CollisionTakeaway(hist)
	if frac4 != 1.0 || max != 4 {
		t.Fatalf("takeaway (%f,%d), want (1,4)", frac4, max)
	}
}

func TestCollisionsPermutationMostlySingle(t *testing.T) {
	sf, _ := topo.SlimFly(7, 0)
	rng := graph.NewRand(6)
	pat := traffic.RandomPermutation(rng, sf.N())
	hist := Collisions(sf, pat)
	// §IV-A: for D>=2 with p=k'/D, fewer than ~1% of router pairs see 4+
	// collisions under a random permutation (small scale is noisier; allow 3%).
	frac4, _ := CollisionTakeaway(hist)
	if frac4 > 0.03 {
		t.Fatalf("fraction with >=4 collisions = %f, want < 0.03", frac4)
	}
}

func TestCollisionsCliqueWorse(t *testing.T) {
	// §IV-A: D=1 cliques see systematically more collisions than D=2 SF at
	// comparable size because p is much larger.
	cl, _ := topo.Complete(31, 31) // Nr=32, N=992
	sf, _ := topo.SlimFly(7, 0)    // N=588
	rng := graph.NewRand(7)
	hc := Collisions(cl, traffic.KRandomPermutations(rng, cl.N(), 4))
	hs := Collisions(sf, traffic.KRandomPermutations(rng, sf.N(), 4))
	fc, _ := CollisionTakeaway(hc)
	fs, _ := CollisionTakeaway(hs)
	if fc <= fs {
		t.Fatalf("clique >=4-collision fraction (%f) should exceed SF's (%f)", fc, fs)
	}
}

func TestOverlapCount(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	pat := traffic.OffDiagonal(sf.N(), 4)
	hist := OverlapCount(sf, pat)
	if hist.Total != int64(sf.G.M()) {
		t.Fatalf("overlap histogram covers %d links, want %d", hist.Total, sf.G.M())
	}
	// Total load = sum(load * links) must equal total hops of all flows.
	var hops int64
	for v, n := range hist.Counts {
		hops += int64(v) * n
	}
	if hops <= 0 {
		t.Fatal("routed flows must traverse links")
	}
}

func TestWalkCountRing(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	// C4: two 2-step walks from 0 to 2 (via 1 and via 3).
	if got := WalkCount(g, 0, 2, 2); got != 2 {
		t.Fatalf("C4 2-step walks 0->2 = %d, want 2", got)
	}
	// Walks 0->0 of length 2: via each neighbor = 2.
	if got := WalkCount(g, 0, 0, 2); got != 2 {
		t.Fatalf("C4 2-step closed walks = %d, want 2", got)
	}
	// A^0 = identity.
	if got := WalkCount(g, 1, 1, 0); got != 1 {
		t.Fatalf("A^0 diagonal = %d, want 1", got)
	}
}

func TestWalkCountSaturation(t *testing.T) {
	c, _ := topo.Complete(10, 0)
	q := PathCountMatrix(c.G, 4, 5)
	for i := range q {
		for j := range q[i] {
			if q[i][j] > 5 {
				t.Fatal("saturation cap violated")
			}
		}
	}
}

func TestNextHopSets(t *testing.T) {
	// 2x2 grid (C4): opposite corners have two shortest next hops.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0)
	sets := NextHopSets(g, 4)
	// From 0 to 3: both neighbors (1 and 2) are valid first hops.
	if popcount(sets[0][3]) != 2 {
		t.Fatalf("next hops 0->3 = %d, want 2", popcount(sets[0][3]))
	}
	// From 0 to 1 (adjacent): exactly one next hop.
	if popcount(sets[0][1]) != 1 {
		t.Fatalf("next hops 0->1 = %d, want 1", popcount(sets[0][1]))
	}
	if sets[0][0] != 0 {
		t.Fatal("self destination must have empty next-hop set")
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestVertexConnectivityBoundedCycle(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	rng := graph.NewRand(8)
	// 0 and 3 are opposite: two vertex-disjoint 3-hop paths.
	if got := VertexConnectivityBounded(g, 0, 3, 3, rng); got != 2 {
		t.Fatalf("C6 bounded vertex connectivity (l=3) = %d, want 2", got)
	}
	// No path of length <= 2 exists.
	if got := VertexConnectivityBounded(g, 0, 3, 2, rng); got != 0 {
		t.Fatalf("C6 bounded vertex connectivity (l=2) = %d, want 0", got)
	}
}

func TestVertexConnectivityBoundedBipartite(t *testing.T) {
	// K_{3,3}: two vertices on the same side have 3 disjoint 2-hop paths.
	g := graph.New(6)
	for a := 0; a < 3; a++ {
		for b := 3; b < 6; b++ {
			g.AddEdge(a, b)
		}
	}
	rng := graph.NewRand(9)
	if got := VertexConnectivityBounded(g, 0, 1, 2, rng); got != 3 {
		t.Fatalf("K33 bounded vertex connectivity = %d, want 3", got)
	}
}

func TestVertexConnectivityPanicsOnNeighbors(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for adjacent s,t")
		}
	}()
	VertexConnectivityBounded(g, 0, 1, 3, graph.NewRand(1))
}

func TestEdgeConnectivityBoundedMatchesExact(t *testing.T) {
	// On small random graphs, the rank-based bounded edge connectivity with
	// a generous length bound equals exact Ford-Fulkerson connectivity.
	for seed := int64(0); seed < 10; seed++ {
		rng := graph.NewRand(seed)
		n := 6 + rng.Intn(5)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for i := 0; i < n; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		s, t0 := graph.SampleDistinctPair(rng, n)
		exact := g.EdgeConnectivityPair(s, t0)
		got := EdgeConnectivityBounded(g, s, t0, n, rng)
		if got != exact {
			t.Fatalf("seed %d: bounded rank connectivity %d != exact %d", seed, got, exact)
		}
	}
}

func TestEdgeConnectivityBoundedLengthLimit(t *testing.T) {
	// C8: opposite vertices have 2 edge-disjoint 4-hop paths; with
	// maxLen=3 none; with maxLen=4 both (each direction is 4 hops).
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+1)%8)
	}
	rng := graph.NewRand(10)
	if got := EdgeConnectivityBounded(g, 0, 4, 3, rng); got != 0 {
		t.Fatalf("C8 l=3: %d, want 0", got)
	}
	if got := EdgeConnectivityBounded(g, 0, 4, 4, rng); got != 2 {
		t.Fatalf("C8 l=4: %d, want 2", got)
	}
	// Adjacent vertices: direct edge plus the 7-hop way around.
	if got := EdgeConnectivityBounded(g, 0, 1, 1, rng); got != 1 {
		t.Fatalf("C8 l=1: %d, want 1", got)
	}
	if got := EdgeConnectivityBounded(g, 0, 1, 7, rng); got != 2 {
		t.Fatalf("C8 l=7: %d, want 2", got)
	}
}

func TestFieldOps(t *testing.T) {
	for _, a := range []uint64{1, 2, 12345, fieldP - 1} {
		if got := fmul(a, finv(a)); got != 1 {
			t.Fatalf("a * a^-1 = %d, want 1", got)
		}
	}
	if fadd(fieldP-1, 1) != 0 {
		t.Fatal("addition must wrap at p")
	}
	if fsub(0, 1) != fieldP-1 {
		t.Fatal("subtraction must wrap at p")
	}
}

func TestMatRank(t *testing.T) {
	id := [][]uint64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if matRank(id) != 3 {
		t.Fatal("identity rank must be 3")
	}
	dep := [][]uint64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}
	if matRank(dep) != 2 {
		t.Fatal("rank of dependent rows must be 2")
	}
	if matRank(nil) != 0 {
		t.Fatal("empty rank must be 0")
	}
	zero := [][]uint64{{0, 0}, {0, 0}}
	if matRank(zero) != 0 {
		t.Fatal("zero matrix rank must be 0")
	}
}

func TestGusfieldTreeMatchesDirectMaxFlow(t *testing.T) {
	// Equivalent-flow tree must reproduce all-pairs edge connectivity.
	for seed := int64(0); seed < 8; seed++ {
		rng := graph.NewRand(seed)
		n := 6 + rng.Intn(8)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for i := 0; i < n; i++ {
			g.TryAddEdge(rng.Intn(n), rng.Intn(n))
		}
		tree := BuildEquivalentFlowTree(g)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				got := tree.Connectivity(u, v)
				want := g.EdgeConnectivityPair(u, v)
				if got != want {
					t.Fatalf("seed %d: tree connectivity(%d,%d)=%d, direct=%d", seed, u, v, got, want)
				}
			}
		}
	}
}

func TestGusfieldTreeOnSlimFly(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	tree := BuildEquivalentFlowTree(sf.G)
	rng := graph.NewRand(9)
	pairs := make([][2]int, 50)
	for i := range pairs {
		a, b := graph.SampleDistinctPair(rng, sf.Nr())
		pairs[i] = [2]int{a, b}
	}
	if bad := AllPairsConnectivitySample(sf.G, tree, pairs); bad != 0 {
		t.Fatalf("%d mismatches between tree and direct max-flow", bad)
	}
	// A k'-regular SF has edge connectivity k' between all pairs.
	if got := tree.Connectivity(0, sf.Nr()-1); got != sf.NominalRadix {
		t.Fatalf("SF edge connectivity %d, want k'=%d", got, sf.NominalRadix)
	}
}

func TestGusfieldSelfConnectivity(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tree := BuildEquivalentFlowTree(g)
	if tree.Connectivity(1, 1) != 0 {
		t.Fatal("self connectivity must be 0")
	}
	if tree.Connectivity(0, 2) != 1 {
		t.Fatal("path graph connectivity must be 1")
	}
}
