package core

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/traffic"
)

// MPTCP-style subflow striping (§VIII-A2): FatPaths can use Multipath TCP
// as its congestion-control substrate, with each subflow owning one layer.
// We model the data plane exactly — k TCP subflows per message, each pinned
// to a distinct layer carrying 1/k of the bytes — and approximate MPTCP's
// coupled congestion control by the subflows' independent windows (the
// LIA coupling mainly matters on shared bottlenecks, where independent
// windows are slightly more aggressive; the routing behaviour under study
// is unaffected). The message completes when its slowest subflow does.

// MPTCPResult reports one striped message.
type MPTCPResult struct {
	Src, Dst int32
	Bytes    int64
	Done     bool
	FCT      netsim.Time
	Subflows int
}

// RunWorkloadMPTCP simulates a pattern where every message is striped over
// up to k subflows on distinct layers. Layers that cannot reach the
// destination's router are skipped; a message with no usable layer falls
// back to a single layer-0 subflow.
func (f *Fabric) RunWorkloadMPTCP(simCfg netsim.Config, pat traffic.Pattern, bytes int64, k int, horizon netsim.Time, seed int64) ([]MPTCPResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d subflows", k)
	}
	if simCfg.Transport == netsim.TransportNDP {
		return nil, fmt.Errorf("core: MPTCP striping models TCP-family transports")
	}
	simCfg.Seed = seed
	sim := f.NewSimulation(simCfg)
	type msg struct {
		src, dst int32
		subs     []int // flow result indices
	}
	var msgs []msg
	flowCount := 0
	for _, fl := range pat.Flows {
		rs := f.Topo.RouterOf(int(fl.Src))
		rt := f.Topo.RouterOf(int(fl.Dst))
		var usable []int8
		for l := 0; l < f.Fwd.NumLayers() && len(usable) < k; l++ {
			if rs == rt || f.Fwd.Reachable(l, rs, rt) {
				usable = append(usable, int8(l))
			}
		}
		if len(usable) == 0 {
			usable = []int8{0}
		}
		per := bytes / int64(len(usable))
		if per < 1 {
			per = 1
		}
		m := msg{src: fl.Src, dst: fl.Dst}
		for i, layer := range usable {
			b := per
			if i == len(usable)-1 {
				b = bytes - per*int64(len(usable)-1)
			}
			sim.AddFlow(netsim.FlowSpec{
				Src: fl.Src, Dst: fl.Dst, Bytes: b,
				Pinned: true, PinLayer: layer,
			})
			m.subs = append(m.subs, flowCount)
			flowCount++
		}
		msgs = append(msgs, m)
	}
	res := sim.Run(horizon)
	out := make([]MPTCPResult, 0, len(msgs))
	for _, m := range msgs {
		r := MPTCPResult{Src: m.src, Dst: m.dst, Bytes: bytes, Done: true, Subflows: len(m.subs)}
		for _, idx := range m.subs {
			sub := res[idx]
			if !sub.Done {
				r.Done = false
				break
			}
			if sub.FCT() > r.FCT {
				r.FCT = sub.FCT()
			}
		}
		out = append(out, r)
	}
	return out, nil
}
