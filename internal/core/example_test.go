package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// Example builds the smallest Slim Fly, equips it with FatPaths layered
// routing, and routes one message across the fabric — the shortest possible
// end-to-end tour of the public API.
func Example() {
	sf, err := topo.SlimFly(5, 0) // 50 routers, 200 endpoints, diameter 2
	if err != nil {
		log.Fatal(err)
	}
	fab, err := core.Build(sf, core.Config{NumLayers: 4, Rho: 0.7, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sim := fab.NewSimulation(netsim.NDPDefaults())
	sim.AddFlow(netsim.FlowSpec{Src: 0, Dst: 199, Bytes: 64 << 10})
	res := sim.Run(netsim.Second)
	fmt.Printf("layers=%d done=%v\n", fab.Layers.N(), res[0].Done)
	// Output: layers=4 done=true
}

// ExampleFabric_RouterRoute shows the per-layer routes FatPaths exposes
// for one endpoint pair: layer 0 is minimal, sparsified layers are often
// one hop longer — the "almost" shortest paths of the paper.
func ExampleFabric_RouterRoute() {
	sf, _ := topo.SlimFly(5, 0)
	fab, _ := core.Build(sf, core.Config{NumLayers: 3, Rho: 0.6, Seed: 1})
	for layer := 0; layer < fab.Fwd.NumLayers(); layer++ {
		if route := fab.RouterRoute(0, 199, layer); route != nil {
			fmt.Printf("layer %d: %d hops\n", layer, len(route)-1)
		}
	}
	// Output:
	// layer 0: 2 hops
	// layer 1: 3 hops
	// layer 2: 3 hops
}
