package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func buildSF(t *testing.T, q int, cfg Config) *Fabric {
	t.Helper()
	sf, err := topo.SlimFly(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := Build(sf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

func TestBuildDefault(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	cfg := DefaultConfig(sf)
	fab, err := Build(sf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fab.Layers.N() != cfg.NumLayers {
		t.Fatalf("layers=%d, want %d", fab.Layers.N(), cfg.NumLayers)
	}
	if fab.Fwd.NumLayers() != cfg.NumLayers {
		t.Fatal("forwarding table count mismatch")
	}
}

func TestDefaultConfigPerKind(t *testing.T) {
	hx, _ := topo.HyperX(2, 4, 0)
	if c := DefaultConfig(hx); c.Rho != 0.9 {
		t.Fatalf("HX rho=%f, want 0.9", c.Rho)
	}
	cl, _ := topo.Complete(10, 0)
	if c := DefaultConfig(cl); c.NumLayers != 17 {
		t.Fatalf("clique layers=%d, want 17", c.NumLayers)
	}
}

func TestBuildAllSchemes(t *testing.T) {
	sf, _ := topo.SlimFly(5, 0)
	for _, scheme := range []LayerScheme{RandomSampling, MinInterference, SPAINScheme, PASTScheme} {
		fab, err := Build(sf, Config{NumLayers: 3, Rho: 0.7, Scheme: scheme, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if fab.Layers.N() < 2 {
			t.Fatalf("%v: expected at least 2 layers", scheme)
		}
		if scheme.String() == "unknown" {
			t.Fatalf("scheme %d has no name", scheme)
		}
	}
	if _, err := Build(sf, Config{NumLayers: 0}); err == nil {
		t.Fatal("NumLayers=0 must fail")
	}
	if _, err := Build(sf, Config{NumLayers: 2, Rho: 0.5, Scheme: LayerScheme(99)}); err == nil {
		t.Fatal("unknown scheme must fail")
	}
}

func TestRouterRoute(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 4, Rho: 0.7, Scheme: RandomSampling, Seed: 2})
	src, dst := 0, fab.Topo.N()-1
	p0 := fab.RouterRoute(src, dst, 0)
	if p0 == nil {
		t.Fatal("layer 0 must route everything")
	}
	if int(p0[0]) != fab.Topo.RouterOf(src) || int(p0[len(p0)-1]) != fab.Topo.RouterOf(dst) {
		t.Fatal("route endpoints wrong")
	}
	// Layer 0 route is minimal: on a diameter-2 SF at most 2 hops.
	if len(p0)-1 > 2 {
		t.Fatalf("minimal route has %d hops on a diameter-2 network", len(p0)-1)
	}
	// Same-router endpoints route trivially.
	if p := fab.RouterRoute(0, 1, 0); len(p) != 1 {
		t.Fatal("same-router route should be a single router")
	}
	// Out-of-range layer.
	if p := fab.RouterRoute(src, dst, 99); p != nil {
		t.Fatal("invalid layer should return nil")
	}
}

func TestDiversityGrowsWithLayers(t *testing.T) {
	fab2 := buildSF(t, 7, Config{NumLayers: 2, Rho: 0.6, Scheme: RandomSampling, Seed: 3})
	fab9 := buildSF(t, 7, Config{NumLayers: 9, Rho: 0.6, Scheme: RandomSampling, Seed: 3})
	d2 := fab2.Diversity(200, 4)
	d9 := fab9.Diversity(200, 4)
	if d9.MeanDistinctPaths <= d2.MeanDistinctPaths {
		t.Fatalf("9 layers should give more distinct paths than 2 (%f vs %f)",
			d9.MeanDistinctPaths, d2.MeanDistinctPaths)
	}
}

func TestMATPositiveAndLayersHelp(t *testing.T) {
	fab1 := buildSF(t, 5, Config{NumLayers: 1, Rho: 1, Scheme: RandomSampling, Seed: 5})
	fab6 := buildSF(t, 5, Config{NumLayers: 6, Rho: 0.6, Scheme: RandomSampling, Seed: 5})
	rng := graph.NewRand(6)
	pat := traffic.WorstCase(fab1.Topo, 0.55, rng)
	t1, err := fab1.MAT(pat, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	t6, err := fab6.MAT(pat, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 || t6 <= 0 {
		t.Fatalf("MAT must be positive: %f, %f", t1, t6)
	}
	if t6 < 0.9*t1 {
		t.Fatalf("layered MAT %f much worse than single-layer %f", t6, t1)
	}
}

func TestMATEmptyPattern(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 2, Rho: 0.8, Scheme: RandomSampling, Seed: 7})
	if _, err := fab.MAT(traffic.Pattern{Name: "empty", N: fab.Topo.N()}, 0.1); err == nil {
		t.Fatal("empty pattern must error")
	}
}

func TestRunWorkload(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 4, Rho: 0.7, Scheme: RandomSampling, Seed: 8})
	rng := graph.NewRand(9)
	wl := Workload{
		Pattern:  traffic.RandomPermutation(rng, fab.Topo.N()),
		FlowSize: traffic.FixedSize(64 << 10),
		Lambda:   0,
	}
	res := fab.RunWorkload(netsim.NDPDefaults(), wl, 2*netsim.Second, 10)
	if len(res) != len(wl.Pattern.Flows) {
		t.Fatalf("results=%d, want %d", len(res), len(wl.Pattern.Flows))
	}
	if netsim.CompletedFraction(res) < 0.99 {
		t.Fatalf("only %.2f of flows completed", netsim.CompletedFraction(res))
	}
}

func TestRunWorkloadPoisson(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 4, Rho: 0.7, Scheme: RandomSampling, Seed: 11})
	rng := graph.NewRand(12)
	wl := Workload{
		Pattern:  traffic.RandomPermutation(rng, fab.Topo.N()),
		FlowSize: traffic.PFabricFlowSize,
		Lambda:   200,
	}
	res := fab.RunWorkload(netsim.NDPDefaults(), wl, 5*netsim.Second, 13)
	if netsim.CompletedFraction(res) < 0.95 {
		t.Fatalf("only %.2f of Poisson flows completed", netsim.CompletedFraction(res))
	}
	// Starts must be spread out, not all at zero.
	later := 0
	for _, r := range res {
		if r.Start > 0 {
			later++
		}
	}
	if later < len(res)/2 {
		t.Fatal("Poisson arrivals should spread start times")
	}
}

func TestRunStencilRounds(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 4, Rho: 0.7, Scheme: RandomSampling, Seed: 14})
	pat := traffic.Stencil2D(fab.Topo.N(), []int{1, 17})
	total, ok := fab.RunStencilRounds(netsim.NDPDefaults(), pat, 32<<10, 3, 2*netsim.Second, 15)
	if !ok {
		t.Fatal("stencil rounds did not complete")
	}
	if total <= 0 {
		t.Fatal("total time must be positive")
	}
}

func TestRunWorkloadMPTCP(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 4, Rho: 0.7, Scheme: RandomSampling, Seed: 21})
	pat := traffic.RandomPermutation(graph.NewRand(22), fab.Topo.N())
	cfg := netsim.TCPDefaults(netsim.TransportTCP)
	res, err := fab.RunWorkloadMPTCP(cfg, pat, 256<<10, 3, 5*netsim.Second, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pat.Flows) {
		t.Fatalf("%d results, want %d", len(res), len(pat.Flows))
	}
	done := 0
	for _, r := range res {
		if r.Done {
			done++
			if r.FCT <= 0 {
				t.Fatal("done message with non-positive FCT")
			}
		}
		if r.Subflows < 1 || r.Subflows > 3 {
			t.Fatalf("subflows=%d, want 1..3", r.Subflows)
		}
	}
	if float64(done)/float64(len(res)) < 0.95 {
		t.Fatalf("only %d/%d striped messages completed", done, len(res))
	}
}

func TestRunWorkloadMPTCPRejectsNDP(t *testing.T) {
	fab := buildSF(t, 5, Config{NumLayers: 2, Rho: 0.8, Scheme: RandomSampling, Seed: 24})
	pat := traffic.RandomPermutation(graph.NewRand(25), fab.Topo.N())
	if _, err := fab.RunWorkloadMPTCP(netsim.NDPDefaults(), pat, 1<<20, 2, netsim.Second, 26); err == nil {
		t.Fatal("NDP transport must be rejected")
	}
	if _, err := fab.RunWorkloadMPTCP(netsim.TCPDefaults(netsim.TransportTCP), pat, 1<<20, 0, netsim.Second, 26); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}
