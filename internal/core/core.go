// Package core is the FatPaths routing architecture — the paper's primary
// contribution — assembled from its substrates: it builds routing layers
// over a topology (§V), populates per-layer forwarding functions, and wires
// them to flowlet load balancing and the purified transport (§III) for
// simulation, plus analytic entry points (layered throughput, §VI; deployed
// path diversity).
//
// A downstream user programs against Fabric:
//
//	sf, _ := topo.SlimFly(19, 0)
//	fab, _ := core.Build(sf, core.DefaultConfig(sf))
//	sim := fab.NewSimulation(netsim.NDPDefaults())
//	... add flows, sim.Run(horizon) ...
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/mcf"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// LayerScheme selects the layer-construction algorithm.
type LayerScheme int

// Layer construction schemes.
const (
	// RandomSampling is Listing 1 (random uniform edge sampling).
	RandomSampling LayerScheme = iota
	// MinInterference is Listing 2 (path-overlap minimization).
	MinInterference
	// SPAINScheme uses SPAIN's colored path forests as layers (baseline).
	SPAINScheme
	// PASTScheme uses per-address spanning trees as layers (baseline).
	PASTScheme
)

func (s LayerScheme) String() string {
	switch s {
	case RandomSampling:
		return "random"
	case MinInterference:
		return "min-interference"
	case SPAINScheme:
		return "spain"
	case PASTScheme:
		return "past"
	}
	return "unknown"
}

// Config selects the layer configuration (ρ, n) and construction scheme.
type Config struct {
	NumLayers int
	Rho       float64
	Scheme    LayerScheme
	Seed      int64
	// Shards is the default event-loop shard count for simulations created
	// via NewSimulation (netsim.Config.Shards): the engine partitions
	// routers into this many worker goroutines under conservative-lookahead
	// synchronization. Execution knob only — results are byte-identical at
	// every value. 0 leaves simulations serial.
	Shards int
	// Obs, when non-nil, instruments the fabric: the routing engine reports
	// table builds and lock contention into it, and simulations created via
	// NewSimulation default their metrics bundle from it. Purely
	// observational — results are byte-identical with or without it.
	Obs *obs.Registry
	// Tracer, when non-nil, is offered to simulations created via
	// NewSimulation; the first simulation to claim it records its event
	// loop (see obs.Tracer). Observational only, like Obs.
	Tracer *obs.Tracer
}

// DefaultConfig returns the layer configuration recommended for a topology
// (§V-B: the project repository ships (ρ, n) per network; these values
// follow the paper's findings — nine layers with ρ≈0.6 resolve collisions
// on diameter-2/3 networks, Fig 12; topologies with high minimal-path
// diversity keep ρ high).
func DefaultConfig(t *topo.Topology) Config {
	cfg := Config{NumLayers: 9, Rho: 0.6, Scheme: RandomSampling}
	switch t.Kind {
	case "HX", "FT3":
		// High minimal-path diversity: dense layers suffice (§VII-C).
		cfg.Rho = 0.9
	case "Clique":
		// D=1 collisions need many 2-hop alternatives (§VII-B3).
		cfg.NumLayers = 17
		cfg.Rho = 0.5
	}
	return cfg
}

// Fabric is a topology equipped with FatPaths layered routing. Fwd is a
// view over the shared routing engine (internal/routing): tables
// materialize lazily per destination and are reused by every simulation
// and analysis of this fabric, including simulations running concurrently
// on different worker goroutines.
type Fabric struct {
	Topo   *topo.Topology
	Cfg    Config
	Layers *layers.LayerSet
	Fwd    *layers.Forwarding

	// obsSim is the simulation metrics bundle derived from Cfg.Obs (nil
	// when the fabric is uninstrumented); NewSimulation installs it as the
	// default for simulations that do not bring their own.
	obsSim *obs.SimMetrics
}

// Build constructs layers and forwarding tables for a topology.
func Build(t *topo.Topology, cfg Config) (*Fabric, error) {
	if cfg.NumLayers < 1 {
		return nil, fmt.Errorf("core: NumLayers=%d must be >= 1", cfg.NumLayers)
	}
	rng := graph.NewRand(cfg.Seed)
	var ls *layers.LayerSet
	var err error
	switch cfg.Scheme {
	case RandomSampling:
		ls, err = layers.Random(t.G, cfg.NumLayers, cfg.Rho, rng)
	case MinInterference:
		// Unbounded path budget but a ρ edge budget: pairs keep receiving
		// deliberately chosen +1-hop paths until the layer is as dense as
		// its random-sampling counterpart, so the two constructions differ
		// only in WHICH edges a layer carries (the §VI-C comparison).
		ls, err = layers.MinInterference(t.G, layers.MinInterferenceConfig{
			N:                cfg.NumLayers,
			ExtraHops:        1,
			MaxPathsPerLayer: t.G.N() * t.G.N(),
			Rho:              cfg.Rho,
		}, rng)
	case SPAINScheme:
		ls, err = layers.SPAIN(t.G, layers.SPAINConfig{K: 2, MaxLayers: cfg.NumLayers - 1}, rng)
	case PASTScheme:
		ls, err = layers.PAST(t.G, cfg.NumLayers, layers.PASTNonMinimal, rng)
	default:
		return nil, fmt.Errorf("core: unknown layer scheme %v", cfg.Scheme)
	}
	if err != nil {
		return nil, err
	}
	fab := &Fabric{
		Topo:   t,
		Cfg:    cfg,
		Layers: ls,
		Fwd:    layers.NewForwarding(ls, cfg.Seed),
	}
	if cfg.Obs != nil {
		fab.Fwd.SetMetrics(obs.NewRoutingMetrics(cfg.Obs))
		fab.obsSim = obs.NewSimMetrics(cfg.Obs)
	}
	return fab, nil
}

// NewSimulation wires the fabric into a packet-level simulation. Replicate
// simulations of one fabric share its routing engine, so per-(layer,
// destination) multi-next-hop tables are computed once per fabric rather
// than once per replicate. Simulations are independent and may run
// concurrently.
func (f *Fabric) NewSimulation(cfg netsim.Config) *netsim.Sim {
	if cfg.Metrics == nil {
		cfg.Metrics = f.obsSim
	}
	if cfg.Tracer == nil {
		cfg.Tracer = f.Cfg.Tracer
	}
	if cfg.Shards == 0 {
		cfg.Shards = f.Cfg.Shards
	}
	return netsim.NewSim(f.Topo, f.Fwd, cfg)
}

// RouterRoute returns the router-level path from the router of endpoint
// srcEp to the router of endpoint dstEp within the given layer, or nil if
// the layer does not connect them.
func (f *Fabric) RouterRoute(srcEp, dstEp, layer int) []int32 {
	rs := f.Topo.RouterOf(srcEp)
	rt := f.Topo.RouterOf(dstEp)
	if rs == rt {
		return []int32{int32(rs)}
	}
	if layer < 0 || layer >= f.Fwd.NumLayers() || !f.Fwd.Reachable(layer, rs, rt) {
		return nil
	}
	path := []int32{int32(rs)}
	v := rs
	for v != rt {
		nxt := f.Fwd.Next(layer, v, rt)
		if nxt < 0 || len(path) > f.Topo.Nr() {
			return nil
		}
		path = append(path, nxt)
		v = int(nxt)
	}
	return path
}

// Diversity summarizes the deployed path diversity of the layer set.
func (f *Fabric) Diversity(samples int, seed int64) layers.Stats {
	return layers.Summarize(f.Layers, f.Fwd, samples, graph.NewRand(seed))
}

// MAT computes the maximum achievable throughput of the fabric for a
// traffic pattern (the layered LP of §VI, approximated at accuracy eps for
// scalability; pass eps <= 0 for the exact simplex solution, feasible on
// small instances).
func (f *Fabric) MAT(p traffic.Pattern, eps float64) (float64, error) {
	comms := mcf.CommoditiesFromPattern(f.Topo, p)
	if len(comms) == 0 {
		return 0, fmt.Errorf("core: pattern has no inter-router flows")
	}
	ps := mcf.FromForwarding(f.Topo.G, f.Fwd, comms)
	if eps <= 0 {
		return mcf.PathMAT(ps, 1)
	}
	return mcf.PathMATApprox(ps, 1, eps)
}

// Workload describes a simulated workload: a traffic pattern, a flow-size
// sampler, and a Poisson arrival rate.
type Workload struct {
	Pattern  traffic.Pattern
	FlowSize func(*rand.Rand) int64
	// Lambda is the per-endpoint flow arrival rate in flows/s (§VII-A4);
	// each flow of the pattern starts after an exponential delay drawn at
	// this rate. 0 starts everything at t=0.
	Lambda float64
	// Repeat replays the pattern this many times (default 1).
	Repeat int
}

// RunWorkload simulates the workload and returns per-flow results.
func (f *Fabric) RunWorkload(simCfg netsim.Config, wl Workload, horizon netsim.Time, seed int64) []netsim.FlowResult {
	rng := graph.NewRand(seed)
	sim := f.NewSimulation(simCfg)
	repeat := wl.Repeat
	if repeat < 1 {
		repeat = 1
	}
	for rep := 0; rep < repeat; rep++ {
		for _, fl := range wl.Pattern.Flows {
			var start netsim.Time
			if wl.Lambda > 0 {
				start = netsim.Time(traffic.ExpInterarrival(rng, wl.Lambda) * 1e9)
			}
			size := int64(1 << 20)
			if wl.FlowSize != nil {
				size = wl.FlowSize(rng)
			}
			sim.AddFlow(netsim.FlowSpec{Src: fl.Src, Dst: fl.Dst, Bytes: size, Start: start})
		}
	}
	return sim.Run(horizon)
}

// RunStencilRounds simulates a bulk-synchronous stencil: each round all
// pattern flows execute and a barrier waits for the slowest (Fig 17's
// "stencil + barrier" workload). Rounds run in separate simulations (the
// barrier drains the network between rounds); the returned total is the
// sum over rounds of the slowest flow's completion time. The bool reports
// whether every flow of every round completed within the per-round horizon.
func (f *Fabric) RunStencilRounds(simCfg netsim.Config, p traffic.Pattern, flowBytes int64, rounds int, horizon netsim.Time, seed int64) (netsim.Time, bool) {
	var total netsim.Time
	ok := true
	for r := 0; r < rounds; r++ {
		sim := f.NewSimulation(simCfg)
		for _, fl := range p.Flows {
			sim.AddFlow(netsim.FlowSpec{Src: fl.Src, Dst: fl.Dst, Bytes: flowBytes, Start: 0})
		}
		res := sim.Run(horizon)
		var worst netsim.Time
		for _, fr := range res {
			if !fr.Done {
				ok = false
				worst = horizon
				break
			}
			if fr.FCT() > worst {
				worst = fr.FCT()
			}
		}
		total += worst
	}
	return total, ok
}
