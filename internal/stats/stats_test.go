package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMeanAndPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if m := s.Mean(); m != 50.5 {
		t.Fatalf("mean=%f, want 50.5", m)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0=%f, want 1", p)
	}
	if p := s.Percentile(1); p != 100 {
		t.Fatalf("p100=%f, want 100", p)
	}
	if p := s.Percentile(0.5); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("median=%f, want 50.5", p)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatal("min/max wrong")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	if !math.IsNaN(s.Percentile(0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if sd := s.Stddev(); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev=%f, want ≈2.138", sd)
	}
	var one Sample
	one.Add(5)
	if one.Stddev() != 0 {
		t.Fatal("single observation stddev should be 0")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 {
		t.Fatal("wrong N")
	}
	if sum.P99 < 980 || sum.P99 > 995 {
		t.Fatalf("p99=%f", sum.P99)
	}
	if !strings.Contains(sum.String(), "n=1000") {
		t.Fatal("String should include count")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(5, 2)
	if h.Total != 5 {
		t.Fatalf("total=%d", h.Total)
	}
	if h.Fraction(1) != 0.4 {
		t.Fatalf("fraction(1)=%f", h.Fraction(1))
	}
	if h.FractionAtLeast(3) != 0.6 {
		t.Fatalf("fracAtLeast(3)=%f", h.FractionAtLeast(3))
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 5 {
		t.Fatalf("keys=%v", keys)
	}
	if m := h.Mean(); math.Abs(m-3.0) > 1e-9 {
		t.Fatalf("mean=%f, want 3", m)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if h.Fraction(0) != 0 || h.FractionAtLeast(0) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}
