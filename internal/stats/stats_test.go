package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMeanAndPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if m := s.Mean(); m != 50.5 {
		t.Fatalf("mean=%f, want 50.5", m)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0=%f, want 1", p)
	}
	if p := s.Percentile(1); p != 100 {
		t.Fatalf("p100=%f, want 100", p)
	}
	if p := s.Percentile(0.5); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("median=%f, want 50.5", p)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatal("min/max wrong")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	if !math.IsNaN(s.Percentile(0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if sd := s.Stddev(); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev=%f, want ≈2.138", sd)
	}
	var one Sample
	one.Add(5)
	if one.Stddev() != 0 {
		t.Fatal("single observation stddev should be 0")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 {
		t.Fatal("wrong N")
	}
	if sum.P99 < 980 || sum.P99 > 995 {
		t.Fatalf("p99=%f", sum.P99)
	}
	if !strings.Contains(sum.String(), "n=1000") {
		t.Fatal("String should include count")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(5, 2)
	if h.Total != 5 {
		t.Fatalf("total=%d", h.Total)
	}
	if h.Fraction(1) != 0.4 {
		t.Fatalf("fraction(1)=%f", h.Fraction(1))
	}
	if h.FractionAtLeast(3) != 0.6 {
		t.Fatalf("fracAtLeast(3)=%f", h.FractionAtLeast(3))
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 5 {
		t.Fatalf("keys=%v", keys)
	}
	if m := h.Mean(); math.Abs(m-3.0) > 1e-9 {
		t.Fatalf("mean=%f, want 3", m)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if h.Fraction(0) != 0 || h.FractionAtLeast(0) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

// TestSummaryJSONRoundTrip: Summary survives JSON both for ordinary
// finite digests and for empty-sample digests whose percentiles are NaN
// (and any ±Inf) — encoding/json rejects non-finite numbers, so the
// scenario result cache and run journal depend on this round trip.
func TestSummaryJSONRoundTrip(t *testing.T) {
	cases := []Summary{
		{N: 3, Mean: 1.5, P01: 0.1, P10: 0.25, P50: 1.75, P90: 2.5, P99: 2.75, P999: 2.875},
		{N: 0, Mean: 0, P01: math.NaN(), P10: math.NaN(), P50: math.NaN(), P90: math.NaN(), P99: math.NaN(), P999: math.NaN()},
		{N: 1, Mean: math.Inf(1), P01: math.Inf(-1), P50: 0.3},
	}
	same := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for i, in := range cases {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var out Summary
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, b, err)
		}
		if out.N != in.N || !same(out.Mean, in.Mean) || !same(out.P01, in.P01) ||
			!same(out.P10, in.P10) || !same(out.P50, in.P50) || !same(out.P90, in.P90) ||
			!same(out.P99, in.P99) || !same(out.P999, in.P999) {
			t.Fatalf("case %d: round trip changed the digest:\nin:  %+v\nout: %+v\nwire: %s", i, in, out, b)
		}
	}
}

// TestSummaryJSONFiniteValuesExact: finite values marshal as plain JSON
// numbers with shortest-round-trip formatting — bit-exact across the
// trip, and readable by any JSON consumer.
func TestSummaryJSONFiniteValuesExact(t *testing.T) {
	in := Summary{N: 2, Mean: 0.1 + 0.2, P50: 1e-17}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"Mean":"`) {
		t.Fatalf("finite value marshaled as a string: %s", b)
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mean != in.Mean || out.P50 != in.P50 {
		t.Fatalf("finite round trip inexact: %v -> %v", in, out)
	}
}
