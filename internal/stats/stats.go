// Package stats provides the summary statistics used throughout the
// evaluation harness: means, percentiles, histograms, and distribution
// summaries matching how the paper reports results (mean, 1% / 10% / 99% /
// 99.9% tails, fraction-of-pairs histograms).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation (+Inf for empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.Inf(1)
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation (-Inf for empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.Inf(-1)
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank with
// linear interpolation. Percentile(0.5) is the median.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := p * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Summary is the (mean, selected percentiles) digest the paper reports.
type Summary struct {
	N                                   int
	Mean, P01, P10, P50, P90, P99, P999 float64
}

// summaryJSON is Summary's JSON shape. The float fields use jsonFloat so
// empty-sample digests (NaN percentiles, ±Inf extremes) survive the trip:
// encoding/json rejects non-finite numbers outright, which would make any
// zero-completion cell unserializable (CLI -json output, the scenario
// result cache, run journals). The wire type keeps the exported struct
// free of JSON-only field types.
type summaryJSON struct {
	N    int       `json:"N"`
	Mean jsonFloat `json:"Mean"`
	P01  jsonFloat `json:"P01"`
	P10  jsonFloat `json:"P10"`
	P50  jsonFloat `json:"P50"`
	P90  jsonFloat `json:"P90"`
	P99  jsonFloat `json:"P99"`
	P999 jsonFloat `json:"P999"`
}

// jsonFloat marshals finite values as plain JSON numbers and non-finite
// values ("NaN", "+Inf", "-Inf") as quoted strings, round-tripping
// bit-exactly either way (shortest-round-trip formatting for finite
// values is exact by construction).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte(`"` + strconv.FormatFloat(v, 'g', -1, 64) + `"`), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		var err error
		if s, err = strconv.Unquote(s); err != nil {
			return err
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("stats: parsing summary float %q: %w", s, err)
	}
	*f = jsonFloat(v)
	return nil
}

// MarshalJSON implements NaN/Inf-safe encoding (see jsonFloat).
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		N: s.N, Mean: jsonFloat(s.Mean), P01: jsonFloat(s.P01),
		P10: jsonFloat(s.P10), P50: jsonFloat(s.P50), P90: jsonFloat(s.P90),
		P99: jsonFloat(s.P99), P999: jsonFloat(s.P999),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Summary{
		N: w.N, Mean: float64(w.Mean), P01: float64(w.P01),
		P10: float64(w.P10), P50: float64(w.P50), P90: float64(w.P90),
		P99: float64(w.P99), P999: float64(w.P999),
	}
	return nil
}

// Summarize produces the digest.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    len(s.xs),
		Mean: s.Mean(),
		P01:  s.Percentile(0.01),
		P10:  s.Percentile(0.10),
		P50:  s.Percentile(0.50),
		P90:  s.Percentile(0.90),
		P99:  s.Percentile(0.99),
		P999: s.Percentile(0.999),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p1=%.4g p10=%.4g p50=%.4g p90=%.4g p99=%.4g p99.9=%.4g",
		s.N, s.Mean, s.P01, s.P10, s.P50, s.P90, s.P99, s.P999)
}

// IntHistogram counts integer-valued observations.
type IntHistogram struct {
	Counts map[int]int64
	Total  int64
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{Counts: make(map[int]int64)}
}

// Add counts one observation of value v.
func (h *IntHistogram) Add(v int) { h.AddN(v, 1) }

// AddN counts n observations of value v.
func (h *IntHistogram) AddN(v int, n int64) {
	h.Counts[v] += n
	h.Total += n
}

// Fraction returns the share of observations with value v.
func (h *IntHistogram) Fraction(v int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// FractionAtLeast returns the share of observations with value >= v.
func (h *IntHistogram) FractionAtLeast(v int) float64 {
	if h.Total == 0 {
		return 0
	}
	var c int64
	for val, n := range h.Counts {
		if val >= v {
			c += n
		}
	}
	return float64(c) / float64(h.Total)
}

// Keys returns the observed values in increasing order.
func (h *IntHistogram) Keys() []int {
	keys := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the mean observed value.
func (h *IntHistogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	// Sum in key order: float accumulation in map-iteration order would
	// leave the mean's low bits nondeterministic across runs.
	var sum float64
	for _, v := range h.Keys() {
		sum += float64(v) * float64(h.Counts[v])
	}
	return sum / float64(h.Total)
}

func (h *IntHistogram) String() string {
	var b strings.Builder
	for _, k := range h.Keys() {
		fmt.Fprintf(&b, "%d:%d ", k, h.Counts[k])
	}
	return strings.TrimSpace(b.String())
}

// Table is a simple aligned text table used by the experiment harness to
// print the same rows/series the paper's figures plot.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v (floats with %.4g).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
