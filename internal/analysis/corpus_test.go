package analysis

// corpus_test implements the analysistest-style corpus runner: each
// corpus package under testdata/src declares its expected diagnostics
// in `// want "regex"` comments (double- or backtick-quoted, several
// per line allowed), and runCorpus fails the test on any mismatch in
// either direction. Corpus packages pose as the targeted real packages
// via import-path suffix (e.g. maprange/internal/routing).

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantQuoted matches one double- or backtick-quoted regex in a want
// comment.
var wantQuoted = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// lineKey addresses one source line of the corpus.
type lineKey struct {
	file string
	line int
}

// parseWants extracts the `// want` expectations of every corpus file.
func parseWants(t *testing.T, pkg *Package) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				spec := c.Text[idx+len("// want "):]
				quoted := wantQuoted.FindAllString(spec, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment with no quoted regex: %s", pos, c.Text)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", pos, s, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// runCorpus loads one corpus package, runs the given analyzers through
// RunPackage (so det:allow suppression and malformed-annotation
// reporting both apply, exactly as in production), and reconciles the
// diagnostics with the corpus's want comments.
func runCorpus(t *testing.T, path string, analyzers ...*Analyzer) {
	t.Helper()
	loader := NewCorpusLoader("testdata/src")
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", path, err)
	}
	diags := RunPackage(pkg, analyzers)
	wants := parseWants(t, pkg)

	matched := map[lineKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		k := lineKey{pos.Filename, pos.Line}
		text := fmt.Sprintf("%s: %s", d.Rule, d.Message)
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(text) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", pos, text)
		}
	}
	for k, res := range wants {
		for i, ok := range matched[k] {
			if !ok {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, res[i].String())
			}
		}
	}
}

func TestMapRangeCorpus(t *testing.T) {
	runCorpus(t, "maprange/internal/routing", MapRangeAnalyzer)
}

func TestGlobalRandCorpus(t *testing.T) {
	runCorpus(t, "globalrand/internal/netsim", GlobalRandAnalyzer)
}

func TestSeedFoldCorpus(t *testing.T) {
	runCorpus(t, "seedfold/internal/scenario", SeedFoldAnalyzer)
}

func TestCacheKeyCorpus(t *testing.T) {
	runCorpus(t, "cachekey/internal/scenario", CacheKeyAnalyzer)
}

func TestSyncPoolCorpus(t *testing.T) {
	runCorpus(t, "syncpool/internal/netsim", SyncPoolAnalyzer)
	// Outside internal/netsim the same code is unrestricted.
	runCorpus(t, "syncpool/internal/arena", SyncPoolAnalyzer)
}

func TestObsGuardCorpus(t *testing.T) {
	// Producer side: the corpus obs package itself.
	runCorpus(t, "obsguard/internal/obs", ObsGuardAnalyzer)
	// Consumer side: a hot-path package reading obs bundles.
	runCorpus(t, "obsguard/internal/netsim", ObsGuardAnalyzer)
}

func TestDetAllowCorpus(t *testing.T) {
	// Malformed det:allow annotations are reported by RunPackage itself,
	// under the unsuppressible pseudo-rule "detallow".
	runCorpus(t, "detallow/internal/routing", Analyzers()...)
}
