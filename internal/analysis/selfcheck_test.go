package analysis

// selfcheck_test proves the suite against the repository itself, in
// both directions:
//
//   - TestModuleClean: the full suite over the real module reports
//     nothing — every violation is fixed or carries a det:allow.
//   - TestScratchViolationFlagged: deliberately adding an unsorted
//     map-range to a scratch copy of internal/routing is flagged, so a
//     green TestModuleClean is evidence of enforcement, not of a suite
//     that never fires.

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot returns the repository root (two levels above this
// package).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// runSuite loads and analyzes every package of the module rooted at
// root, returning all formatted diagnostics.
func runSuite(t *testing.T, root string) []string {
	t.Helper()
	loader, err := NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		for _, d := range RunPackage(pkg, Analyzers()) {
			out = append(out, d.Format(pkg.Fset))
		}
	}
	return out
}

func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	for _, d := range runSuite(t, moduleRoot(t)) {
		t.Errorf("detlint: %s", d)
	}
}

// copyModuleSources copies go.mod and every non-test .go file of the
// module into dst, preserving layout and skipping testdata trees.
func copyModuleSources(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != src && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScratchViolationFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	scratch := t.TempDir()
	copyModuleSources(t, moduleRoot(t), scratch)

	// Plant an unsorted map-range in the scratch internal/routing.
	planted := filepath.Join(scratch, "internal", "routing", "zz_scratch_violation.go")
	src := `package routing

// scratchFirstKey leaks map iteration order (planted by
// TestScratchViolationFlagged; never committed to the real tree).
func scratchFirstKey(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`
	if err := os.WriteFile(planted, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	flagged := false
	for _, d := range runSuite(t, scratch) {
		if strings.Contains(d, "zz_scratch_violation.go") && strings.Contains(d, "maprange") {
			flagged = true
		} else {
			t.Errorf("unexpected diagnostic in scratch copy: %s", d)
		}
	}
	if !flagged {
		t.Error("planted unsorted map-range in internal/routing was not flagged")
	}
}
