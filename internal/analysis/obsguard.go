package analysis

// obsguard enforces both sides of internal/obs's zero-cost-when-
// disabled contract:
//
//   - Producer side (internal/obs): every exported pointer-receiver
//     method must be nil-safe — either it opens with an
//     `if recv == nil` guard, or it touches the receiver only through
//     nil comparisons and calls to other nil-safe methods of the same
//     type (computed to fixpoint, so delegating helpers like
//     Histogram.Observe → ObserveN qualify).
//
//   - Consumer side (internal/netsim, internal/routing — the sim hot
//     paths): reading a FIELD of a nil-able obs bundle
//     (*obs.SimMetrics, *obs.RoutingMetrics, ...) dereferences the
//     pointer, so every such access must sit under a dominating nil
//     check of the same expression (`if m == nil { return }` /
//     `if m != nil { ... }`). Method calls need no guard — that is the
//     point of the contract: the disabled path costs one nil check at
//     the bundle boundary and nothing per call.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var obsConsumerPackages = []string{
	"internal/netsim",
	"internal/routing",
}

var ObsGuardAnalyzer = &Analyzer{
	Name: "obsguard",
	Doc:  "obs hooks on sim hot paths must be nil-safe per internal/obs's zero-cost contract",
	Run:  runObsGuard,
}

func runObsGuard(pass *Pass) {
	if inPackages(pass, "internal/obs") {
		runObsProducer(pass)
	}
	if inPackages(pass, obsConsumerPackages...) {
		runObsConsumer(pass)
	}
}

// --- producer side -------------------------------------------------

func runObsProducer(pass *Pass) {
	info := pass.TypesInfo

	// Collect pointer-receiver methods grouped by receiver named type.
	type method struct {
		decl *ast.FuncDecl
		recv types.Object // the receiver variable
	}
	methods := map[*types.TypeName]map[string]method{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			field := fd.Recv.List[0]
			star, ok := field.Type.(*ast.StarExpr)
			if !ok {
				continue // value receivers cannot be nil
			}
			base := ast.Unparen(star.X)
			if ix, ok := base.(*ast.IndexExpr); ok { // generic receiver
				base = ast.Unparen(ix.X)
			}
			id, ok := base.(*ast.Ident)
			if !ok {
				continue
			}
			tn, ok := info.Uses[id].(*types.TypeName)
			if !ok {
				continue
			}
			var recvObj types.Object
			if len(field.Names) == 1 {
				recvObj = info.Defs[field.Names[0]]
			}
			if methods[tn] == nil {
				methods[tn] = map[string]method{}
			}
			methods[tn][fd.Name.Name] = method{decl: fd, recv: recvObj}
		}
	}

	for tn, ms := range methods {
		// Fixpoint over this type's methods: guarded methods seed the safe
		// set; delegation closes over it.
		safe := map[string]bool{}
		for name, m := range ms {
			if m.recv == nil || firstStmtNilGuard(info, m.recv, m.decl.Body) {
				safe[name] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for name, m := range ms {
				if safe[name] {
					continue
				}
				if recvUsesAreSafe(pass, m.recv, m.decl.Body, safe) {
					safe[name] = true
					changed = true
				}
			}
		}
		for name, m := range ms {
			if !ast.IsExported(name) || safe[name] {
				continue
			}
			rn := "recv"
			if m.recv != nil {
				rn = m.recv.Name()
			}
			pass.Reportf(m.decl.Name.Pos(), "exported method (*%s).%s is not nil-safe: start with `if %s == nil { return }` or touch the receiver only via nil-safe methods", tn.Name(), name, rn)
		}
	}
}

// firstStmtNilGuard reports whether body opens with
// `if recv == nil [|| ...] { <terminating> }`.
func firstStmtNilGuard(info *types.Info, recv types.Object, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	ifst, ok := body.List[0].(*ast.IfStmt)
	if !ok || !terminates(ifst.Body) {
		return false
	}
	return condHasNilEq(info, ifst.Cond, recv)
}

// condHasNilEq reports whether cond contains `recv == nil` as a
// top-level disjunct (x == nil, x == nil || ..., ... || x == nil).
func condHasNilEq(info *types.Info, cond ast.Expr, recv types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condHasNilEq(info, e.X, recv) || condHasNilEq(info, e.Y, recv)
		case token.EQL:
			return isObjIdent(info, e.X, recv) && isNilIdent(info, e.Y) ||
				isObjIdent(info, e.Y, recv) && isNilIdent(info, e.X)
		}
	}
	return false
}

func isObjIdent(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// recvUsesAreSafe reports whether every use of recv in body is a nil
// comparison or a call to a method in the safe set.
func recvUsesAreSafe(pass *Pass, recv types.Object, body *ast.BlockStmt, safe map[string]bool) bool {
	if recv == nil {
		return true // receiver unnamed: body cannot touch it
	}
	info := pass.TypesInfo
	ok := true
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			// Permit `recv == nil` / `recv != nil` comparisons wholesale.
			if (e.Op == token.EQL || e.Op == token.NEQ) &&
				(isObjIdent(info, e.X, recv) && isNilIdent(info, e.Y) ||
					isObjIdent(info, e.Y, recv) && isNilIdent(info, e.X)) {
				return false
			}
		case *ast.CallExpr:
			// Permit recv.M(args...) when M is safe; args still walked.
			if sel, okSel := ast.Unparen(e.Fun).(*ast.SelectorExpr); okSel &&
				isObjIdent(info, sel.X, recv) && safe[sel.Sel.Name] {
				for _, a := range e.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
		case *ast.Ident:
			if info.Uses[e] == recv {
				ok = false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return ok
}

// --- consumer side -------------------------------------------------

// runObsConsumer flags unguarded field reads of nil-able obs pointers
// in the hot-path packages.
func runObsConsumer(pass *Pass) {
	info := pass.TypesInfo
	funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
		guards := collectNilGuards(pass, body)
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if !isObsPointer(info.Types[sel.X].Type) {
				return true
			}
			base := exprString(pass.Fset, sel.X)
			if guards.covers(base, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s of nil-able obs bundle %s is read without a dominating nil check; guard with `if %s == nil { return }` or `if %s != nil { ... }`", sel.Sel.Name, base, base, base)
			return true
		})
	})
}

// isObsPointer reports whether t is a pointer to a named type declared
// in the module's obs package.
func isObsPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return pathMatches(named.Obj().Pkg().Path(), "internal/obs")
}

// nilGuards maps a guarded expression's source text to the position
// ranges where it is known non-nil.
type nilGuards struct {
	regions map[string][]posRange
}

type posRange struct{ lo, hi token.Pos }

func (g *nilGuards) add(expr string, lo, hi token.Pos) {
	if g.regions == nil {
		g.regions = map[string][]posRange{}
	}
	g.regions[expr] = append(g.regions[expr], posRange{lo, hi})
}

func (g *nilGuards) covers(expr string, pos token.Pos) bool {
	for _, r := range g.regions[expr] {
		if r.lo <= pos && pos <= r.hi {
			return true
		}
	}
	return false
}

// collectNilGuards scans a function body for the nil-check shapes the
// contract sanctions and records the regions they dominate:
//
//	if x == nil { return/continue/break/panic } → rest of the body
//	if x != nil { ... }                         → the if body
//	if x == nil { ... } else { ... }            → the else block
//
// Guards on ANDed conditions (`if x != nil && y`) guard their body too.
func collectNilGuards(pass *Pass, body *ast.BlockStmt) *nilGuards {
	g := &nilGuards{}
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, expr := range nilCheckedExprs(info, ifst.Cond, token.NEQ) {
			s := exprString(pass.Fset, expr)
			g.add(s, ifst.Body.Pos(), ifst.Body.End())
		}
		for _, expr := range nilCheckedExprs(info, ifst.Cond, token.EQL) {
			s := exprString(pass.Fset, expr)
			if terminates(ifst.Body) {
				g.add(s, ifst.End(), body.End())
			}
			if ifst.Else != nil {
				g.add(s, ifst.Else.Pos(), ifst.Else.End())
			}
		}
		return true
	})
	return g
}

// nilCheckedExprs returns the expressions compared to nil with op
// (token.NEQ within &&-chains, token.EQL within ||-chains).
func nilCheckedExprs(info *types.Info, cond ast.Expr, op token.Token) []ast.Expr {
	var out []ast.Expr
	chain := token.LAND
	if op == token.EQL {
		chain = token.LOR
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		if bin.Op == chain {
			walk(bin.X)
			walk(bin.Y)
			return
		}
		if bin.Op != op {
			return
		}
		if isNilIdent(info, bin.Y) {
			out = append(out, bin.X)
		} else if isNilIdent(info, bin.X) {
			out = append(out, bin.Y)
		}
	}
	walk(cond)
	return out
}
