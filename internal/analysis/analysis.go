// Package analysis is detlint: a suite of static analyzers that enforce
// the repository's determinism contract — the invariant, inherited from
// the FatPaths reproduction's golden harness, that every table is
// byte-identical at any worker count, shard count, and build order.
//
// The analyzers encode the rules the tree already follows dynamically:
//
//   - maprange: map iteration in ordering-sensitive packages must flow
//     into a sort or an order-insensitive sink.
//   - globalrand: no math/rand global state, time.Now, or os.Getpid in
//     sim/output paths; randomness derives from exec.FoldSeed streams.
//   - seedfold: exec.FoldSeed keys come from canonical resource keys,
//     never from loop/cell indices.
//   - cachekey: the durable sweep runtime's cache/journal keys derive
//     from canonical cell identity, never loop indices or wall-clock
//     time.
//   - syncpool: no sync.Pool in internal/netsim (per-shard arenas
//     replaced it; a pool would reintroduce cross-shard sharing).
//   - obsguard: obs hooks on simulator/routing hot paths stay nil-safe
//     per internal/obs's zero-cost-when-disabled contract.
//
// The suite is intentionally self-contained: it reimplements the small
// slice of golang.org/x/tools/go/analysis it needs (Analyzer, Pass,
// diagnostics, an analysistest-style corpus runner) on top of the
// standard library's go/ast and go/types, so the module keeps its
// zero-dependency build. cmd/detlint compiles the suite into a
// multichecker runnable standalone (`go run ./cmd/detlint ./...`) or as
// a `go vet -vettool` backend.
//
// # Suppressions
//
// A diagnostic is suppressed by an explicit annotation on the flagged
// line or the line directly above it:
//
//	//det:allow <rule>[,<rule>...] -- <reason>
//
// The reason is mandatory; a det:allow without one (or naming an unknown
// rule) is itself a diagnostic. Suppressions are deliberate, documented
// exceptions — the golden harness still re-proves the contract
// dynamically behind every one of them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named determinism rule.
type Analyzer struct {
	// Name is the rule name used in diagnostics and det:allow comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Run reports the rule's diagnostics for one package via pass.Report.
	Run func(*Pass)
}

// A Pass holds one type-checked package being analyzed by one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a det:allow annotation for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Position resolves the diagnostic's file position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// String renders "file:line:col: rule: message" against fset.
func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Rule, d.Message)
}

// Analyzers returns the full detlint suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		GlobalRandAnalyzer,
		SeedFoldAnalyzer,
		CacheKeyAnalyzer,
		SyncPoolAnalyzer,
		ObsGuardAnalyzer,
	}
}

// ruleNames returns the set of valid rule names for det:allow validation.
func ruleNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// allowRe matches the head of a det:allow annotation; the rest of the
// comment is validated by parseAllow.
var allowRe = regexp.MustCompile(`^//det:allow\b`)

// allowKey identifies one (file, line, rule) suppression.
type allowKey struct {
	file string
	line int
	rule string
}

// suppressions is the per-package det:allow index plus any diagnostics
// about malformed annotations (reported under the pseudo-rule
// "detallow", which cannot itself be suppressed).
type suppressions struct {
	allow     map[allowKey]bool
	malformed []Diagnostic
}

// parseAllow validates one det:allow comment and returns the rules it
// names. Valid form: //det:allow rule[,rule...] -- reason
func parseAllow(text string) (rules []string, err error) {
	body := strings.TrimPrefix(text, "//det:allow")
	ruleSpec, reason, found := strings.Cut(body, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, fmt.Errorf("det:allow needs a reason: //det:allow <rule> -- <reason>")
	}
	known := ruleNames()
	for _, r := range strings.Split(ruleSpec, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !known[r] {
			return nil, fmt.Errorf("det:allow names unknown rule %q", r)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("det:allow names no rule: //det:allow <rule> -- <reason>")
	}
	return rules, nil
}

// indexSuppressions scans a package's comments for det:allow
// annotations. An annotation suppresses matching diagnostics on its own
// line and on the line below it (comment-above style).
func indexSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{allow: map[allowKey]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowRe.MatchString(c.Text) {
					continue
				}
				pos := fset.Position(c.Pos())
				rules, err := parseAllow(c.Text)
				if err != nil {
					s.malformed = append(s.malformed, Diagnostic{
						Pos: c.Pos(), Rule: "detallow", Message: err.Error(),
					})
					continue
				}
				for _, r := range rules {
					s.allow[allowKey{pos.Filename, pos.Line, r}] = true
					s.allow[allowKey{pos.Filename, pos.Line + 1, r}] = true
				}
			}
		}
	}
	return s
}

func (s *suppressions) covers(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s.allow[allowKey{pos.Filename, pos.Line, d.Rule}]
}

// RunPackage applies the analyzers to one loaded package and returns
// the surviving diagnostics (suppressed ones dropped, malformed
// det:allow annotations added) sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &raw,
		}
		a.Run(pass)
	}
	sup := indexSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range raw {
		if !sup.covers(pkg.Fset, d) {
			out = append(out, d)
		}
	}
	out = append(out, sup.malformed...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// pathMatches reports whether a package import path ends with the given
// slash-separated suffix on a segment boundary — the rule-targeting
// predicate. Matching by suffix (not exact path) lets the analysistest
// corpora pose as ordering-sensitive packages.
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// inPackages reports whether the pass's package matches any of the
// given path suffixes.
func inPackages(pass *Pass, suffixes ...string) bool {
	for _, s := range suffixes {
		if pathMatches(pass.Pkg.Path(), s) {
			return true
		}
	}
	return false
}
