package analysis

// syncpool: PR 7 replaced internal/netsim's process-global packet
// sync.Pool with per-shard arenas — a pool shares buffers across
// shards, which both serializes the shard workers on the pool's
// internals and (worse) makes allocation reuse depend on scheduling,
// the exact cross-shard coupling the sharded event loop's determinism
// contract forbids. Any reappearance of sync.Pool in netsim is a
// regression; other packages are free to use it.

import (
	"go/ast"
	"go/types"
)

var SyncPoolAnalyzer = &Analyzer{
	Name: "syncpool",
	Doc:  "no sync.Pool in internal/netsim; per-shard arenas own packet recycling",
	Run:  runSyncPool,
}

func runSyncPool(pass *Pass) {
	if !inPackages(pass, "internal/netsim") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
				pass.Reportf(id.Pos(), "sync.Pool in internal/netsim shares buffers across shards; use the per-shard arena (see Shard.freePacket)")
			}
			return true
		})
	}
}
