package analysis

// seedfold: exec.FoldSeed keys must be canonical resource keys (hashes
// of topology/routing/transport descriptors, flow identifiers, layer
// indices...), never the index of whatever loop happens to surround the
// call. Folding on a loop index re-introduces the pre-PR4 bug class:
// two cells that share a workload-defining key get different seeds (or
// two different resources share one) as soon as the enumeration order
// or cell count changes, silently breaking replay-equals-rerun.
//
// The analyzer flags FoldSeed calls whose arguments read an enclosing
// for-loop induction variable or a slice/array/string range index.
// Ranging over a map key is not an index (the key IS the resource), and
// range *values* are fine — `for _, key := range keys` yields canonical
// keys. The check is syntactic per function: deriving an index into a
// local first and folding on that is not caught, and genuinely
// index-keyed derivations (exec's own documented cellIndex contract)
// carry //det:allow seedfold annotations.

import (
	"go/ast"
	"go/types"
)

var SeedFoldAnalyzer = &Analyzer{
	Name: "seedfold",
	Doc:  "exec.FoldSeed keys must be canonical resource keys, never loop/cell indices",
	Run:  runSeedFold,
}

func runSeedFold(pass *Pass) {
	info := pass.TypesInfo
	funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
		walkIndexVars(info, body, map[types.Object]bool{}, func(call *ast.CallExpr, indexVars map[types.Object]bool) {
			if !isFoldSeedCall(info, call) {
				return
			}
			for _, arg := range call.Args {
				eachUse(info, arg, func(id *ast.Ident, obj types.Object) {
					if indexVars[obj] {
						pass.Reportf(id.Pos(), "exec.FoldSeed folds on loop index %q; fold on a canonical resource key instead (see internal/exec)", id.Name)
					}
				})
			}
		})
	})
}

// walkIndexVars walks n keeping the set of live induction-variable
// objects (for-loop init variables and positional range keys), and hands
// every call expression to onCall with the set in scope at that point.
// Shared by seedfold and cachekey: both rules forbid deriving a
// determinism-bearing key from whatever loop happens to surround the call.
func walkIndexVars(info *types.Info, n ast.Node, indexVars map[types.Object]bool, onCall func(call *ast.CallExpr, indexVars map[types.Object]bool)) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch st := c.(type) {
		case *ast.ForStmt:
			inner := cloneObjSet(indexVars)
			// Variables declared in the init clause and mutated by the post
			// clause are induction variables.
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							inner[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							inner[obj] = true
						}
					}
				}
			}
			if st.Init != nil {
				walkIndexVars(info, st.Init, indexVars, onCall)
			}
			if st.Cond != nil {
				walkIndexVars(info, st.Cond, inner, onCall)
			}
			if st.Post != nil {
				walkIndexVars(info, st.Post, inner, onCall)
			}
			walkIndexVars(info, st.Body, inner, onCall)
			return false
		case *ast.RangeStmt:
			inner := cloneObjSet(indexVars)
			// The key var is a positional index when ranging over a
			// slice/array/string or an integer; over a map or channel the key
			// is the element itself, and over an iterator function we cannot
			// tell, so we stay quiet.
			if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" && rangeKeyIsIndex(info, st) {
				if obj := info.Defs[id]; obj != nil {
					inner[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					inner[obj] = true
				}
			}
			walkIndexVars(info, st.X, indexVars, onCall)
			walkIndexVars(info, st.Body, inner, onCall)
			return false
		case *ast.CallExpr:
			onCall(st, indexVars)
		}
		return true
	})
}

// rangeKeyIsIndex reports whether the range key variable is a
// positional index for the ranged operand.
func rangeKeyIsIndex(info *types.Info, st *ast.RangeStmt) bool {
	tv, ok := info.Types[st.X]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		return true
	case *types.Basic:
		// range over string (byte offsets) or integer (range-over-int).
		return t.Info()&(types.IsString|types.IsInteger) != 0
	}
	return false
}

// isFoldSeedCall reports whether call invokes FoldSeed from the
// module's exec package.
func isFoldSeedCall(info *types.Info, call *ast.CallExpr) bool {
	fn := pkgFunc(info, call)
	return fn != nil && fn.Name() == "FoldSeed" && pathMatches(fn.Pkg().Path(), "internal/exec")
}

func cloneObjSet(s map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(s)+2)
	for k := range s {
		out[k] = true
	}
	return out
}
