package analysis

// Small shared AST/type helpers for the analyzers.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// pkgFunc returns the *types.Func behind a call expression when the
// callee is a package-level function (not a method, not a builtin),
// else nil. Works through parens and through selector or bare-ident
// call syntax, so import aliasing cannot hide a callee.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// usedObjects collects the objects of every identifier used below n.
func eachUse(info *types.Info, n ast.Node, fn func(id *ast.Ident, obj types.Object)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				fn(id, obj)
			}
		}
		return true
	})
}

// usesAny reports whether any identifier below n resolves to one of the
// given objects.
func usesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	eachUse(info, n, func(_ *ast.Ident, obj types.Object) {
		if objs[obj] {
			found = true
		}
	})
	return found
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi]
// — used to distinguish per-iteration locals from loop-external state.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj.Pos() != token.NoPos && lo <= obj.Pos() && obj.Pos() <= hi
}

// exprString renders a (small) expression to canonical source text, for
// structural comparison of guard conditions against guarded accesses.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// terminates reports whether a block's execution cannot fall through to
// the statement after the enclosing if — the shapes a nil-guard body
// takes: return, continue, break, panic, or os.Exit / t.Fatal-style
// calls are approximated by return/continue/break/goto/panic only.
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// funcBodies walks every function body in the pass's files, handing the
// enclosing declaration node (FuncDecl or FuncLit) and its body to fn.
func funcBodies(files []*ast.File, fn func(decl ast.Node, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}
