package analysis

// cimeta_test keeps the CI workflow honest about the tests it names:
// every Test/Benchmark identifier appearing in ci.yml — in step
// comments ("TestShardBarrierHammer drives ...") or -run/-bench
// patterns — must match a function actually declared in the module, as
// an exact name or a prefix (the `go test -run` matching convention).
// Renaming a test without updating the workflow fails here, not months
// later as a silently-skipped CI step.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var ciTestIdent = regexp.MustCompile(`\b(Test|Benchmark)[A-Z][A-Za-z0-9_]*`)

// declaredTestFuncs parses every _test.go file in the module and
// returns the declared Test*/Benchmark* function names.
func declaredTestFuncs(t *testing.T, root string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if name := fd.Name.Name; strings.HasPrefix(name, "Test") || strings.HasPrefix(name, "Benchmark") {
				names[name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestCIReferencedTestsExist(t *testing.T) {
	root := moduleRoot(t)
	data, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatalf("reading ci.yml: %v", err)
	}
	referenced := map[string]bool{}
	for _, m := range ciTestIdent.FindAllString(string(data), -1) {
		referenced[m] = true
	}
	if len(referenced) == 0 {
		t.Fatal("ci.yml references no Test/Benchmark identifiers; the meta-test is miswired")
	}

	declared := declaredTestFuncs(t, root)
	if len(declared) == 0 {
		t.Fatal("no test functions found in the module; the meta-test is miswired")
	}
	for name := range referenced {
		found := false
		for d := range declared {
			if strings.HasPrefix(d, name) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ci.yml references %s, but no test function with that prefix is declared", name)
		}
	}
}
