package analysis

// cachekey: the durable sweep runtime's content addresses must be built
// from canonical resource coordinates only. internal/scenario's cache
// and journal key every persisted result on Spec.CacheIdentity — the
// rendering of every result-affecting field plus the effective seed —
// precisely so that a cell addresses the same entry from any matrix,
// any enumeration order, and any day. Passing a loop/cell index into a
// key-forming call re-introduces enumeration-order coupling (an edited
// matrix would hit the wrong entries), and passing wall-clock time makes
// every run a universal miss while looking like a working cache.
//
// The analyzer flags arguments of the scenario package's key-forming
// entry points — CacheKey, SpecHash, Spec.CacheIdentity, Cache.Get/
// Put/Has, Journal.Record — that read an enclosing loop induction
// variable (same walker as seedfold) or call time.Now/Since/Until.
// Like seedfold, the check is syntactic per function: deriving an index
// into a local first is not caught, and a deliberate exception would
// carry a //det:allow cachekey annotation.

import (
	"go/ast"
	"go/types"
)

var CacheKeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc:  "scenario cache/journal keys derive from canonical cell identity, never loop indices or wall-clock time",
	Run:  runCacheKey,
}

// cacheKeyFuncs are internal/scenario's package-level key-forming
// functions; cacheKeyMethods the key-forming methods by (receiver type,
// method name). Every argument of these calls feeds a content address.
var (
	cacheKeyFuncs   = map[string]bool{"CacheKey": true, "SpecHash": true}
	cacheKeyMethods = map[[2]string]bool{
		{"Spec", "CacheIdentity"}: true,
		{"Cache", "Get"}:          true,
		{"Cache", "Put"}:          true,
		{"Cache", "Has"}:          true,
		{"Journal", "Record"}:     true,
	}
)

func runCacheKey(pass *Pass) {
	info := pass.TypesInfo
	funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
		walkIndexVars(info, body, map[types.Object]bool{}, func(call *ast.CallExpr, indexVars map[types.Object]bool) {
			callee, ok := cacheKeyCallee(info, call)
			if !ok {
				return
			}
			reported := map[types.Object]bool{}
			for _, arg := range call.Args {
				eachKeyUse(info, arg, func(id *ast.Ident, obj types.Object) {
					switch {
					case indexVars[obj] && !reported[obj]:
						reported[obj] = true
						pass.Reportf(id.Pos(), "scenario.%s keys on loop index %q; cache keys derive from canonical resource coordinates, never enumeration order (see internal/scenario/cache.go)", callee, id.Name)
					case isWallClockFunc(obj) && !reported[obj]:
						reported[obj] = true
						pass.Reportf(id.Pos(), "scenario.%s keys on wall-clock time (time.%s); cache keys must address the same entry from any run", callee, obj.Name())
					}
				})
			}
		})
	})
}

// cacheKeyCallee resolves a call to one of the scenario package's
// key-forming entry points, returning its display name. Matching is by
// type information (not source text), so import aliasing or a renamed
// receiver cannot hide a callee; the import-path suffix match lets the
// analysistest corpus pose as internal/scenario.
func cacheKeyCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), "internal/scenario") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		return fn.Name(), cacheKeyFuncs[fn.Name()]
	}
	recv := recvTypeName(sig.Recv().Type())
	return recv + "." + fn.Name(), cacheKeyMethods[[2]string{recv, fn.Name()}]
}

// eachKeyUse visits identifier uses below n, skipping index positions:
// cells[i] passes the element — a canonical cell — into the key, so only
// the index itself flowing into the key material is the bug. (seedfold
// keeps the stricter eachUse: FoldSeed takes scalar keys, not cells.)
func eachKeyUse(info *types.Info, n ast.Node, fn func(id *ast.Ident, obj types.Object)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if ix, ok := c.(*ast.IndexExpr); ok {
			eachKeyUse(info, ix.X, fn)
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				fn(id, obj)
			}
		}
		return true
	})
}

// recvTypeName names a method receiver's base type ("" for non-named
// receivers).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isWallClockFunc reports whether obj is time.Now, time.Since, or
// time.Until — the wall-clock sources a reproducible key can never read.
func isWallClockFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}
