package analysis

// globalrand: the sim/output packages must draw every random number
// from an explicitly seeded *rand.Rand (ultimately derived from
// exec.FoldSeed) and must not read ambient process state. The global
// math/rand functions share process-wide state seeded per-process,
// time.Now/Since/Until and os.Getpid inject wall-clock and process
// identity — any of them silently breaks replay-equals-rerun.
//
// Methods on *rand.Rand values are fine (the receiver carries the
// seed); only the package-level global-state functions are flagged.
// Telemetry wall-times are legitimate uses of time.Now — those sites
// carry //det:allow globalrand annotations, because they may never leak
// into table output.

import (
	"go/ast"
	"go/types"
)

// globalRandPackages are the packages whose outputs feed goldens: every
// sim/output path. internal/obs is deliberately absent — telemetry
// timestamps are wall-clock by design and never feed tables.
var globalRandPackages = []string{
	"internal/routing",
	"internal/layers",
	"internal/netsim",
	"internal/experiments",
	"internal/scenario",
	"internal/stats",
	"internal/topo",
	"internal/graph",
	"internal/traffic",
	"internal/diversity",
	"internal/core",
	"internal/exec",
	"internal/lp",
	"internal/mcf",
}

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global Source. Constructors (New, NewSource, NewZipf) are
// fine: they produce explicitly seeded generators.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "no math/rand global state, time.Now/Since/Until, or os.Getpid in sim/output paths",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	if !inPackages(pass, globalRandPackages...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "%s.%s uses process-global RNG state; derive randomness from an exec.FoldSeed-seeded rand.New instead", fn.Pkg().Path(), fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(id.Pos(), "time.%s reads the wall clock in a sim/output path; simulations must be a pure function of their seed", fn.Name())
				}
			case "os":
				if fn.Name() == "Getpid" {
					pass.Reportf(id.Pos(), "os.Getpid injects process identity into a sim/output path")
				}
			}
			return true
		})
	}
}
