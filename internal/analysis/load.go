package analysis

// This file is detlint's package loader: it parses and type-checks the
// packages of this module (or of a GOPATH-style analysistest corpus)
// using only the standard library. Module-internal imports resolve
// through the loader itself; everything else falls back to the
// toolchain's source importer, which type-checks the standard library
// from $GOROOT/src and therefore works fully offline — the module keeps
// its zero-dependency go.mod.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

var (
	stdOnce     sync.Once
	stdImporter types.ImporterFrom
)

// stdlibImporter returns the shared source importer for non-module
// imports. It is process-global so the (expensive, cached) stdlib
// type-checking is paid once per process, not once per Loader. Cgo is
// disabled so packages like net select their pure-Go fallbacks, which
// the source importer can check.
func stdlibImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	})
	return stdImporter
}

// A Loader parses and type-checks packages on demand, memoizing by
// import path. One Loader serves one module root or one corpus root.
type Loader struct {
	Fset *token.FileSet

	// moduleRoot/modulePath describe module mode: import paths under
	// modulePath resolve to directories under moduleRoot.
	moduleRoot string
	modulePath string

	// corpusRoot describes GOPATH-style corpus mode: import path P
	// resolves to corpusRoot/P when that directory exists. Corpus
	// packages can thereby pose as e.g. repro/internal/netsim.
	corpusRoot string

	pkgs    map[string]*Package
	loading map[string]bool
}

// NewModuleLoader returns a loader for the Go module rooted at root
// (the directory containing go.mod).
func NewModuleLoader(root string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// NewCorpusLoader returns a loader for an analysistest corpus rooted at
// srcRoot, where package path P lives in srcRoot/P.
func NewCorpusLoader(srcRoot string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		corpusRoot: srcRoot,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// resolveDir maps an import path to a source directory served by this
// loader, or ok=false when the path belongs to the outside world (the
// standard library, in this dependency-free module).
func (l *Loader) resolveDir(path string) (string, bool) {
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleRoot, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), true
		}
	}
	if l.corpusRoot != "" {
		dir := filepath.Join(l.corpusRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer for the module/corpus packages;
// everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if resolved, ok := l.resolveDir(path); ok {
		pkg, err := l.load(path, resolved)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdlibImporter().ImportFrom(path, dir, 0)
}

// Load returns the type-checked package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("detlint: %s is not served by this loader", path)
	}
	return l.load(path, dir)
}

// load parses and type-checks one directory, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("detlint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("detlint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("detlint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Dir: dir, Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir that match the default
// build constraints (tags: none — so e.g. race_on.go is excluded, as in
// a plain `go build`).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ExpandPatterns resolves go-tool-style package patterns ("./...",
// "./internal/...", "./cmd/detlint") against the module root into
// import paths, in sorted order. Only module mode supports patterns.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if l.modulePath == "" {
		return nil, fmt.Errorf("detlint: patterns need a module loader")
	}
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	all, err := l.modulePackages()
	if err != nil {
		return nil, err
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := l.modulePath
			if rel := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/..."); rel != "" && rel != "." {
				prefix = l.modulePath + "/" + path_Clean(rel)
			}
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("detlint: pattern %q matched no packages", pat)
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			p := l.modulePath
			if rel != "" && rel != "." {
				p = l.modulePath + "/" + path_Clean(rel)
			}
			dir, ok := l.resolveDir(p)
			if !ok {
				return nil, fmt.Errorf("detlint: package %q outside module", pat)
			}
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("detlint: no such package %q", pat)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// path_Clean normalizes a slash-separated relative pattern.
func path_Clean(p string) string {
	return strings.Trim(filepath.ToSlash(filepath.Clean(filepath.FromSlash(p))), "/")
}

// modulePackages walks the module tree for directories containing
// buildable non-test Go files, skipping testdata, hidden, and
// underscore directories.
func (l *Loader) modulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.moduleRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.modulePath)
				} else {
					out = append(out, l.modulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
