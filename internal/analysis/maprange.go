package analysis

// maprange: map iteration order is randomized by the runtime, so in the
// ordering-sensitive packages every `range` over a map must flow into a
// sort or an order-insensitive sink before it can influence tables,
// telemetry, routing state, or simulation schedules.
//
// The analyzer classifies each statement of the loop body:
//
//   - commutative accumulation into loop-external variables is allowed:
//     integer `+= -= *= |= &= ^=`, `++/--`, `x = max/min(x, e)`, and the
//     `if e > x { x = e }` high-water idiom (float accumulation is NOT
//     allowed — float addition rounds differently per order);
//   - keyed stores `m2[k] = v` indexed by the iteration variables (or
//     per-iteration locals) are allowed unless the value reads the
//     destination map (e.g. append-to-map-slot, which is order-sensitive);
//   - `delete`, `panic`, constant assignments, branch statements, and
//     returns of loop-independent values are allowed;
//   - `s = append(s, ...)` is allowed only when s is later passed to a
//     sort/slices sorting call in the same function (collect-then-sort);
//   - everything else — writes of loop-dependent values to loop-external
//     state, bare calls with side effects, string concatenation, defer,
//     go — is reported.
//
// Ranging over maps.Keys/maps.Values/maps.All iterators is treated
// exactly like ranging over the map itself.
//
// The classification is a heuristic: it cannot prove injectivity of
// computed keys or purity of callees. Genuinely order-insensitive loops
// it cannot see through carry an explicit
// `//det:allow maprange -- <reason>` annotation instead.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapRangePackages are the ordering-sensitive packages whose map
// iterations feed table output, routing state, or event schedules.
var mapRangePackages = []string{
	"internal/routing",
	"internal/layers",
	"internal/netsim",
	"internal/experiments",
	"internal/scenario",
	"internal/stats",
}

var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration in ordering-sensitive packages must flow into a sort or an order-insensitive sink",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	if !inPackages(pass, mapRangePackages...) {
		return
	}
	funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.TypesInfo, rng) {
				return true
			}
			checkMapRange(pass, body, rng)
			return true
		})
	})
}

// isMapRange reports whether rng iterates a map or a maps.Keys /
// maps.Values / maps.All iterator.
func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if call, ok := ast.Unparen(rng.X).(*ast.CallExpr); ok {
		if fn := pkgFunc(info, call); fn != nil && fn.Pkg().Path() == "maps" {
			switch fn.Name() {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	return false
}

// checkMapRange classifies one map-range loop inside its enclosing
// function body and reports it when an order-sensitive sink survives.
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo

	// Assign-form range (`for k = range m`) writes iteration elements
	// straight into loop-external variables.
	if rng.Tok == token.ASSIGN {
		pass.Reportf(rng.Pos(), "map iteration assigns elements to outer variables; order is nondeterministic")
		return
	}

	c := &mapRangeChecker{
		pass:     pass,
		loop:     rng,
		loopVars: map[types.Object]bool{},
	}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}

	c.block(rng.Body, types.Object(nil))

	// Collected slices must reach a sort in this function after the loop.
	for obj, pos := range c.needsSort {
		if !sortedAfter(pass, funcBody, rng.End(), obj) {
			pass.Reportf(pos, "map iteration collects into %q, which is never sorted in this function; sort it or annotate //det:allow maprange -- <reason>", obj.Name())
		}
	}
}

// mapRangeChecker walks a loop body accumulating diagnostics and
// slices that require a downstream sort.
type mapRangeChecker struct {
	pass     *Pass
	loop     *ast.RangeStmt
	loopVars map[types.Object]bool
	// needsSort maps a loop-external slice object appended to inside the
	// loop to the position of its first append.
	needsSort map[types.Object]token.Pos
}

func (c *mapRangeChecker) info() *types.Info { return c.pass.TypesInfo }

// bodyLocal reports whether obj is declared inside the loop body (a
// per-iteration local, including nested-loop variables).
func (c *mapRangeChecker) bodyLocal(obj types.Object) bool {
	return declaredWithin(obj, c.loop.Body.Pos(), c.loop.Body.End())
}

// loopDerived reports whether expr reads any iteration variable or
// per-iteration local — i.e. whether its value can vary across
// iterations of the map range.
func (c *mapRangeChecker) loopDerived(e ast.Node) bool {
	derived := false
	eachUse(c.info(), e, func(_ *ast.Ident, obj types.Object) {
		if c.loopVars[obj] || (isVar(obj) && c.bodyLocal(obj)) {
			derived = true
		}
	})
	return derived
}

func isVar(obj types.Object) bool {
	_, ok := obj.(*types.Var)
	return ok
}

// report anchors every order-sensitivity diagnostic at the range
// statement itself (citing the offending line), so one //det:allow on
// the loop covers the whole body.
func (c *mapRangeChecker) report(n ast.Node, why string) {
	line := c.pass.Fset.Position(n.Pos()).Line
	c.pass.Reportf(c.loop.Pos(), "map iteration is order-sensitive: %s (line %d); sort the keys first or annotate //det:allow maprange -- <reason>", why, line)
}

// block classifies every statement of a block. maxVar, when non-nil, is
// the variable a surrounding high-water `if` compares, whose plain
// reassignment is therefore order-insensitive.
func (c *mapRangeChecker) block(b *ast.BlockStmt, maxVar types.Object) {
	for _, s := range b.List {
		c.stmt(s, maxVar)
	}
}

func (c *mapRangeChecker) stmt(s ast.Stmt, maxVar types.Object) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st, maxVar)
	case *ast.IncDecStmt:
		c.incDec(st)
	case *ast.ExprStmt:
		c.exprStmt(st)
	case *ast.IfStmt:
		inner := maxVar
		if v := c.highWaterVar(st); v != nil {
			inner = v
		}
		if st.Init != nil {
			c.stmt(st.Init, nil)
		}
		c.block(st.Body, inner)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			c.block(e, inner)
		case *ast.IfStmt:
			c.stmt(e, inner)
		}
	case *ast.BlockStmt:
		c.block(st, maxVar)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, nil)
		}
		if st.Post != nil {
			c.stmt(st.Post, nil)
		}
		c.block(st.Body, nil)
	case *ast.RangeStmt:
		// Nested map ranges are visited and judged on their own; here we
		// only classify the nested body's effects on loop-external state.
		c.block(st.Body, nil)
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			for _, bs := range cc.(*ast.CaseClause).Body {
				c.stmt(bs, maxVar)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			for _, bs := range cc.(*ast.CaseClause).Body {
				c.stmt(bs, maxVar)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(st.Stmt, maxVar)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if c.loopDerived(r) {
				c.report(st, "returns a value derived from the iteration element; which element returns first depends on map order")
				return
			}
		}
	case *ast.BranchStmt, *ast.DeclStmt, *ast.EmptyStmt:
		// Local declarations, break/continue/goto: order-neutral.
	case *ast.DeferStmt:
		c.report(st, "defer inside a map range runs in iteration order")
	case *ast.GoStmt:
		c.report(st, "goroutines launched from a map range start in iteration order")
	default:
		c.report(s, "statement form not recognized as order-insensitive")
	}
}

// highWaterVar recognizes `if e OP x { ... }` where OP is an ordered
// comparison against a loop-external variable x; inside such an if,
// `x = e` is the commutative max/min idiom.
func (c *mapRangeChecker) highWaterVar(st *ast.IfStmt) types.Object {
	bin, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch bin.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok {
			if obj := c.info().Uses[id]; obj != nil && isVar(obj) && !c.bodyLocal(obj) && !c.loopVars[obj] {
				return obj
			}
		}
	}
	return nil
}

func (c *mapRangeChecker) assign(st *ast.AssignStmt, maxVar types.Object) {
	if st.Tok == token.DEFINE {
		return // fresh per-iteration locals
	}
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else {
			rhs = st.Rhs[0]
		}
		c.assignTarget(st, lhs, rhs, st.Tok, maxVar)
	}
}

func (c *mapRangeChecker) assignTarget(st *ast.AssignStmt, lhs, rhs ast.Expr, tok token.Token, maxVar types.Object) {
	info := c.info()
	switch target := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if target.Name == "_" {
			return
		}
		obj := info.Uses[target]
		if obj == nil || c.bodyLocal(obj) {
			return
		}
		// s = append(s, ...): collect-then-sort, resolved after the loop.
		if tok == token.ASSIGN && c.isSelfAppend(obj, rhs) {
			if c.needsSort == nil {
				c.needsSort = map[types.Object]token.Pos{}
			}
			if _, ok := c.needsSort[obj]; !ok {
				c.needsSort[obj] = st.Pos()
			}
			return
		}
		if tok != token.ASSIGN {
			c.opAssign(st, target, obj, tok)
			return
		}
		if c.isCommutativeReassign(obj, rhs, maxVar) {
			return
		}
		if !c.loopDerived(rhs) {
			return // same value every iteration
		}
		c.report(st, "assigns a value derived from the iteration element to "+target.Name)
	case *ast.IndexExpr:
		c.keyedStore(st, target, rhs, tok)
	case *ast.SelectorExpr:
		base := target.X
		if id, ok := ast.Unparen(base).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && c.bodyLocal(obj) {
				return
			}
		}
		if tok != token.ASSIGN {
			c.opAssignType(st, info.Types[target].Type, tok)
			return
		}
		if !c.loopDerived(rhs) {
			return
		}
		c.report(st, "assigns a value derived from the iteration element to a field of loop-external state")
	case *ast.StarExpr:
		if !c.loopDerived(rhs) {
			return
		}
		c.report(st, "writes a value derived from the iteration element through a pointer")
	default:
		c.report(st, "assignment target not recognized as order-insensitive")
	}
}

// opAssign judges `x op= e` on a loop-external variable.
func (c *mapRangeChecker) opAssign(st *ast.AssignStmt, id *ast.Ident, obj types.Object, tok token.Token) {
	c.opAssignType(st, obj.Type(), tok)
}

func (c *mapRangeChecker) opAssignType(st ast.Node, t types.Type, tok token.Token) {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
	default:
		c.report(st, "compound assignment "+tok.String()+" on loop-external state is not commutative")
		return
	}
	if t == nil {
		c.report(st, "compound assignment on loop-external state of unknown type")
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		c.report(st, "compound assignment on loop-external non-basic state")
		return
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		// Exact and commutative-accumulative: fine.
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
		c.report(st, "floating-point accumulation rounds differently per iteration order")
	case b.Info()&types.IsString != 0:
		c.report(st, "string concatenation depends on iteration order")
	default:
		c.report(st, "compound assignment on loop-external state")
	}
}

// keyedStore judges `m2[idx] = v` / `m2[idx] op= v` on loop-external
// collections.
func (c *mapRangeChecker) keyedStore(st *ast.AssignStmt, target *ast.IndexExpr, rhs ast.Expr, tok token.Token) {
	info := c.info()
	if id, ok := ast.Unparen(target.X).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && c.bodyLocal(obj) {
			return
		}
	}
	if tok != token.ASSIGN {
		c.opAssignType(st, info.Types[target].Type, tok)
		return
	}
	if !c.loopDerived(target.Index) {
		// A fixed cell overwritten each iteration: harmless only when the
		// stored value is iteration-independent too.
		if c.loopDerived(rhs) {
			c.report(st, "stores a value derived from the iteration element into a fixed slot")
		}
		return
	}
	// Keyed by the iteration: order-insensitive unless the value reads
	// the destination collection (append-to-slot and friends).
	if c.readsCollection(target.X, rhs) {
		c.report(st, "updates a collection slot from its own previous value (e.g. append); slot contents depend on iteration order")
	}
}

// readsCollection reports whether rhs mentions the same collection
// expression being stored into.
func (c *mapRangeChecker) readsCollection(coll ast.Expr, rhs ast.Expr) bool {
	want := exprString(c.pass.Fset, coll)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && exprString(c.pass.Fset, e) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *mapRangeChecker) incDec(st *ast.IncDecStmt) {
	switch target := ast.Unparen(st.X).(type) {
	case *ast.Ident:
		if obj := c.info().Uses[target]; obj != nil && !c.bodyLocal(obj) {
			c.opAssignType(st, obj.Type(), token.ADD_ASSIGN)
		}
	case *ast.IndexExpr:
		c.opAssignType(st, c.info().Types[target].Type, token.ADD_ASSIGN)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(target.X).(*ast.Ident); ok {
			if obj := c.info().Uses[id]; obj != nil && c.bodyLocal(obj) {
				return // field of a per-iteration local
			}
		}
		c.opAssignType(st, c.info().Types[target].Type, token.ADD_ASSIGN)
	default:
		c.report(st, "increment of unrecognized target")
	}
}

func (c *mapRangeChecker) exprStmt(st *ast.ExprStmt) {
	call, ok := ast.Unparen(st.X).(*ast.CallExpr)
	if !ok {
		c.report(st, "expression statement inside a map range")
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch c.info().Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "delete", "clear", "panic", "print", "println":
				// delete/clear commute; panic/print are crash paths, not output.
				return
			}
		}
		if id.Name == "panic" {
			return
		}
	}
	c.report(st, "bare call may have order-dependent side effects")
}

// isSelfAppend recognizes `append(s, ...)` growing the same slice s.
func (c *mapRangeChecker) isSelfAppend(obj types.Object, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, ok := c.info().Uses[id].(*types.Builtin); !ok {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && c.info().Uses[first] == obj
}

// isCommutativeReassign recognizes the two sanctioned plain-assignment
// accumulators on loop-external variables: the body of a high-water
// `if e > x { x = e }` (x is maxVar), and `x = max(x, e)` / `x = min(x, e)`
// with the builtins — both exact and commutative.
func (c *mapRangeChecker) isCommutativeReassign(obj types.Object, rhs ast.Expr, maxVar types.Object) bool {
	if obj == maxVar {
		return true
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "max" && id.Name != "min") {
		return false
	}
	if _, ok := c.info().Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, a := range call.Args {
		if aid, ok := ast.Unparen(a).(*ast.Ident); ok && c.info().Uses[aid] == obj {
			return true
		}
	}
	return false
}

// sortNames are the sort / slices package functions accepted as
// ordering sinks.
var sortNames = map[string]bool{
	"Sort": true, "Stable": true, "Strings": true, "Ints": true,
	"Float64s": true, "Slice": true, "SliceStable": true, "SliceIsSorted": false,
	"SortFunc": true, "SortStableFunc": true, "Sorted": true, "SortedFunc": true,
	"SortedStableFunc": true, "Compact": false,
}

// sortedAfter reports whether the slice object appears in the argument
// tree of a sort/slices sorting call positioned after `after` within
// the function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, after token.Pos, slice types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := pkgFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if !sortNames[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if usesAny(pass.TypesInfo, arg, map[types.Object]bool{slice: true}) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
