// Corpus for the maprange analyzer. The package poses as a real
// ordering-sensitive package via its import-path suffix.
package routing

import "sort"

// Float accumulation in map order rounds nondeterministically.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `floating-point accumulation`
		sum += v
	}
	return sum
}

// Collected keys that never reach a sort stay in map order.
func keysUnsorted(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `never sorted in this function`
	}
	return keys
}

// Collect-then-sort is the sanctioned pattern.
func keysSorted(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Integer counting commutes exactly.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// The high-water `if v > best { best = v }` idiom commutes.
func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// So does the max builtin.
func maxBuiltin(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

// Keyed stores indexed by the iteration element are order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// ...unless the stored value reads the destination slot (append-to-slot
// builds slices whose element order is the iteration order).
func adjacency(edges map[[2]int]bool) map[int][]int {
	adj := map[int][]int{}
	for e := range edges { // want `own previous value`
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return adj
}

// Assign-form range leaks the last-iterated element.
func assignForm(m map[string]int) string {
	var last string
	for last = range m { // want `assigns elements to outer variables`
	}
	return last
}

// A bare call may observe iteration order through side effects.
func emit(m map[string]int, f func(string)) {
	for k := range m { // want `order-dependent side effects`
		f(k)
	}
}

// An annotated loop is a documented exception.
func emitAllowed(m map[string]int, f func(string)) {
	//det:allow maprange -- corpus: callback is order-insensitive by contract
	for k := range m {
		f(k)
	}
}

// String concatenation depends on iteration order.
func join(m map[string]bool) string {
	var s string
	for k := range m { // want `string concatenation`
		s += k
	}
	return s
}

// Deferred calls run in (reverse) iteration order.
func deferring(m map[string]func()) {
	for _, f := range m { // want `defer inside a map range`
		defer f()
	}
}
