// Corpus for the obsguard analyzer's consumer side: reading a field of
// a nil-able obs bundle on a sim hot path needs a dominating nil check;
// method calls need none (the methods are nil-safe by the producer
// rule).
package netsim

import "obsguard/internal/obs"

// An unguarded field read dereferences the possibly-nil bundle.
func unguardedField(c *obs.Counter) int64 {
	return c.N // want `read without a dominating nil check`
}

// An early-return nil guard dominates the rest of the body.
func guardedEarlyReturn(c *obs.Counter) int64 {
	if c == nil {
		return 0
	}
	return c.N
}

// A non-nil branch guards its own body.
func guardedBranch(c *obs.Counter) int64 {
	if c != nil {
		return c.N
	}
	return 0
}

// Method calls are the contract's whole point: no guard needed.
func methodCall(c *obs.Counter) {
	c.Add(1)
}

type engine struct {
	m *obs.Counter
}

// Guards match on the full selector expression, not just identifiers.
func (e *engine) tick() {
	if e.m == nil {
		return
	}
	e.m.N++
}

// A guard on a different expression does not cover this one.
func (e *engine) wrongGuard(other *obs.Counter) {
	if other == nil {
		return
	}
	e.m.N++ // want `read without a dominating nil check`
}

// Annotated sites are documented exceptions.
func (e *engine) allowed() int64 {
	//det:allow obsguard -- corpus: caller constructs e.m unconditionally
	return e.m.N
}
