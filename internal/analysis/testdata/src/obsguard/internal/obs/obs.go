// Corpus for the obsguard analyzer's producer side: every exported
// pointer-receiver method of the obs package must be nil-safe.
package obs

// Counter is a minimal nil-safe metric.
type Counter struct {
	N int64
}

// Add opens with the canonical nil guard.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.N += d
}

// Inc only touches the receiver through a nil-safe method, so the
// fixpoint marks it safe without its own guard.
func (c *Counter) Inc() {
	c.Add(1)
}

// Value guards with a disjunction; the nil arm still terminates.
func (c *Counter) Value() int64 {
	if c == nil || c.N < 0 {
		return 0
	}
	return c.N
}

// Get dereferences an unguarded receiver.
func (c *Counter) Get() int64 { // want `not nil-safe`
	return c.N
}

// bump is unsafe but unexported: callers inside the package own the
// invariant, so it is not reported.
func (c *Counter) bump() {
	c.N++
}

// Gauge has a value receiver, which can never be nil.
type Gauge struct {
	V float64
}

// Value on a value receiver needs no guard.
func (g Gauge) Value() float64 {
	return g.V
}
