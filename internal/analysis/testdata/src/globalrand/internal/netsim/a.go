// Corpus for the globalrand analyzer: no process-global randomness,
// wall clock, or process identity in sim/output packages.
package netsim

import (
	"math/rand"
	"os"
	"time"
)

// Package-level math/rand functions share process-global state.
func drawGlobal() float64 {
	return rand.Float64() // want `process-global RNG state`
}

// Explicitly seeded generators are the sanctioned source.
func drawSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Wall clock reads break replay-equals-rerun.
func stamp() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

// Process identity is ambient state.
func pid() int {
	return os.Getpid() // want `process identity`
}

// Telemetry wall-times are legitimate when annotated.
func allowedStamp() time.Time {
	//det:allow globalrand -- corpus: wall-clock telemetry never feeds tables
	return time.Now()
}
