// Corpus for the syncpool analyzer: sync.Pool is banned in
// internal/netsim (per-shard arenas own packet recycling).
package netsim

import "sync"

var packetPool sync.Pool // want `sync.Pool in internal/netsim`

func get() any {
	return packetPool.Get()
}

// Other sync primitives are unrestricted.
var mu sync.Mutex

// A documented exception parses like any other suppression.
//
//det:allow syncpool -- corpus: demonstrating a sanctioned exception
var legacyPool sync.Pool
