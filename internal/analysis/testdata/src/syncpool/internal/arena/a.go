// Corpus: sync.Pool outside internal/netsim is unrestricted.
package arena

import "sync"

var pool sync.Pool

func get() any {
	return pool.Get()
}
