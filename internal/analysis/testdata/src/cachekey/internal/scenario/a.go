// Corpus for the cachekey analyzer: the durable sweep runtime's cache
// and journal keys derive from canonical cell identity, never loop
// indices or wall-clock time. The package poses as internal/scenario
// (import-path suffix match) and stubs its key-forming entry points.
package scenario

import "time"

// Spec, CellResult, Cache, and Journal mirror the real scenario
// package's key-forming surface.
type Spec struct{ Name string }

func (s Spec) CacheIdentity(runSeed int64) string { return s.Name }

type CellResult struct{ V int }

type Cache struct{}

func (c *Cache) Get(s Spec, runSeed int64) (CellResult, int, bool) { return CellResult{}, 0, false }
func (c *Cache) Put(s Spec, runSeed int64, r CellResult) (int, error) {
	return 0, nil
}
func (c *Cache) Has(s Spec, runSeed int64) bool { return false }

type Journal struct{}

func (j *Journal) Record(s Spec, runSeed int64, r CellResult) error { return nil }

func CacheKey(s Spec, runSeed int64) string { return s.CacheIdentity(runSeed) }

func SpecHash(cells []Spec, runSeed int64) string {
	out := ""
	for _, s := range cells {
		out += s.CacheIdentity(runSeed)
	}
	return out
}

// Keying a cell on its loop position couples the cache to enumeration
// order: an edited or reordered matrix addresses the wrong entries.
func badForIndex(cells []Spec, seed int64) []string {
	var out []string
	for i := 0; i < len(cells); i++ {
		out = append(out, CacheKey(cells[i], seed+int64(i))) // want `cachekey: scenario.CacheKey keys on loop index "i"`
	}
	return out
}

// A slice range key is a positional index too.
func badRangeIndex(j *Journal, cells []Spec, seed int64) {
	for i, c := range cells {
		_ = j.Record(c, int64(i), CellResult{}) // want `scenario.Journal.Record keys on loop index "i"`
	}
}

// The identity itself must not absorb the index either.
func badIdentityIndex(cells []Spec, seed int64) []string {
	var out []string
	for i := range cells {
		out = append(out, cells[i].CacheIdentity(seed^int64(i))) // want `scenario.Spec.CacheIdentity keys on loop index "i"`
	}
	return out
}

// Wall-clock time in key material makes every run a universal miss
// while looking like a working cache.
func badWallClock(c *Cache, s Spec) bool {
	return c.Has(s, time.Now().UnixNano()) // want `scenario.Cache.Has keys on wall-clock time \(time.Now\)`
}

func badWallClockPut(c *Cache, s Spec, start time.Time) (int, error) {
	return c.Put(s, int64(time.Since(start)), CellResult{}) // want `scenario.Cache.Put keys on wall-clock time \(time.Since\)`
}

// Range values are the canonical cells themselves: fine.
func goodRangeValue(c *Cache, cells []Spec, seed int64) int {
	n := 0
	for _, s := range cells {
		if c.Has(s, seed) {
			n++
		}
	}
	return n
}

// Indexing by the loop variable passes the element, not the index — the
// index never enters the key material.
func goodElementIndex(c *Cache, cells []Spec, seed int64) int {
	n := 0
	for i := range cells {
		if c.Has(cells[i], seed) {
			n++
		}
	}
	return n
}

// A map key is the resource, not an index: fine.
func goodMapKey(c *Cache, cells map[Spec]bool, seed int64) int {
	n := 0
	for s := range cells {
		if c.Has(s, seed) {
			n++
		}
	}
	return n
}

// Hashing the whole expanded list is order-sensitive by design and
// involves no index.
func goodSpecHash(cells []Spec, seed int64) string { return SpecHash(cells, seed) }

// Deliberate, documented exceptions carry an annotation.
func allowedIndex(cells []Spec, seed int64) []string {
	var out []string
	for i := range cells {
		//det:allow cachekey -- corpus: deliberately index-keyed to exercise suppression
		out = append(out, CacheKey(cells[i], int64(i)))
	}
	return out
}
