// Corpus stub for repro/internal/exec: the seedfold analyzer matches
// FoldSeed by name and import-path suffix, so this stub stands in for
// the real package.
package exec

// FoldSeed derives a child seed for cell from seed (stub).
func FoldSeed(seed int64, cell uint64) int64 {
	return seed ^ int64(cell)
}
