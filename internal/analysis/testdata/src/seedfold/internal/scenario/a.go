// Corpus for the seedfold analyzer: FoldSeed keys must be canonical
// resource keys, never loop indices.
package scenario

import "seedfold/internal/exec"

// Folding on a classic for-loop induction variable ties seeds to
// enumeration order.
func badForLoop(seed int64, n int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		out = append(out, exec.FoldSeed(seed, uint64(i))) // want `folds on loop index "i"`
	}
	return out
}

// A slice range key is a positional index too.
func badRangeIndex(seed int64, keys []uint64) []int64 {
	var out []int64
	for i := range keys {
		out = append(out, exec.FoldSeed(seed, uint64(i))) // want `folds on loop index "i"`
	}
	return out
}

// Range values are the resources themselves: fine.
func goodRangeValue(seed int64, keys []uint64) []int64 {
	var out []int64
	for _, k := range keys {
		out = append(out, exec.FoldSeed(seed, k))
	}
	return out
}

// A map key is the resource, not an index: fine.
func goodMapKey(seed int64, keys map[uint64]bool) map[uint64]int64 {
	out := make(map[uint64]int64, len(keys))
	for k := range keys {
		out[k] = exec.FoldSeed(seed, k)
	}
	return out
}

// Documented index-keyed derivations carry an annotation.
func allowedIndex(seed int64, n int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		//det:allow seedfold -- corpus: replicate number is the resource key here by design
		out = append(out, exec.FoldSeed(seed, uint64(i)))
	}
	return out
}
