// Corpus for det:allow annotation validation: malformed annotations
// are reported under the unsuppressible pseudo-rule "detallow".
package routing

//det:allow maprange // want `det:allow needs a reason`
func noReason() {}

//det:allow bogusrule -- misspelled rule // want `unknown rule "bogusrule"`
func unknownRule() {}

//det:allow -- a reason without any rule // want `names no rule`
func noRule() {}

// A well-formed annotation parses quietly even when nothing on the next
// line needs suppressing.
//
//det:allow maprange -- corpus: valid annotation, nothing to suppress
func valid() {}
