// Command scenarios runs declarative scenario matrices (internal/scenario)
// from JSON spec files. A spec file holds one Matrix: a base Spec plus
// per-axis value lists and optional skip constraints; the engine expands
// the cross product, folds deterministic seeds per cell, and fans the cells
// out over the parallel experiment runtime.
//
// Usage:
//
//	go run ./cmd/scenarios -spec examples/scenarios/failure_ladder.json
//	go run ./cmd/scenarios -spec examples/scenarios/*.json         # several files
//	go run ./cmd/scenarios -cells -spec sweep.json                 # expansion only
//	go run ./cmd/scenarios -json -seed 7 -spec sweep.json > out.json
//	go run ./cmd/scenarios -metrics -telemetry run.jsonl -spec sweep.json
//	go run ./cmd/scenarios -trace trace.json -spec sweep.json      # Perfetto
//
// The durable sweep runtime (README "Durable sweeps") adds a
// content-addressed result cache and crash-resume via a run journal:
//
//	go run ./cmd/scenarios -cache-dir ~/.fatpaths-cache -spec sweep.json
//	go run ./cmd/scenarios -cache-dir ~/.fatpaths-cache -cells -spec sweep.json  # hit/miss per cell
//	go run ./cmd/scenarios -journal run.journal -spec sweep.json   # crash-safe
//	go run ./cmd/scenarios -resume run.journal -spec sweep.json    # after a crash
//
// Output is byte-identical for every -parallel value at a fixed -seed —
// including with -metrics/-telemetry/-trace on, which only observe (tables
// go to stdout, diagnostics to stderr or files), and including cells
// satisfied from the cache or a resumed journal (replay equals rerun, by
// the determinism contract).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// fileResult is the machine-readable form of one spec file's run (-json).
type fileResult struct {
	File    string                `json:"file"`
	Name    string                `json:"name"`
	Cells   int                   `json:"cells"`
	Skipped int                   `json:"skipped"`
	Results []scenario.CellResult `json:"results,omitempty"`
	Seconds float64               `json:"seconds,omitempty"`
}

func main() {
	var (
		spec       = flag.String("spec", "", "scenario matrix spec file (further files may follow as positional arguments)")
		seed       = flag.Int64("seed", 42, "random seed")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = all cores)")
		shards     = flag.Int("shards", 0, "event-loop shards per simulation unless the cell sets its own (0 = serial); results are byte-identical at every value")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of text tables")
		cells      = flag.Bool("cells", false, "only expand and list the matrix cells, don't simulate")
		quiet      = flag.Bool("quiet", false, "suppress the per-cell progress line on stderr")
		metrics    = flag.Bool("metrics", false, "dump the metrics registry to stderr when done")
		telemetry  = flag.String("telemetry", "", "append run/cell telemetry as JSONL to this file")
		trace      = flag.String("trace", "", "write a Chrome trace_event JSON of one traced simulation window to this file")
		traceMs    = flag.Float64("trace-ms", 50, "trace window length in simulated milliseconds")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory (reused across runs; see README \"Durable sweeps\")")
		noCache    = flag.Bool("no-cache", false, "ignore -cache-dir: simulate every cell and write nothing to the cache")
		journalPth = flag.String("journal", "", "record completed cells to this run-journal file (crash-safe JSONL)")
		resumePth  = flag.String("resume", "", "resume an interrupted run from this journal: skip recorded cells, append new ones")
	)
	flag.Parse()

	files := flag.Args()
	if *spec != "" {
		files = append([]string{*spec}, files...)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: scenarios -spec <matrix.json> [more.json ...] (see examples/scenarios/)")
		os.Exit(2)
	}
	if *noCache {
		*cacheDir = ""
	}
	if err := validateJournalFlags(*journalPth, *resumePth); err != nil {
		fail(err)
	}
	if (*resumePth != "" || *journalPth != "") && len(files) != 1 {
		fail(fmt.Errorf("scenarios: -journal/-resume record exactly one run; got %d spec files", len(files)))
	}
	failAfter := 0
	if v := os.Getenv("FATPATHS_FAIL_AFTER"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			fail(fmt.Errorf("scenarios: FATPATHS_FAIL_AFTER must be a positive integer, got %q", v))
		}
		failAfter = n
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tel *obs.Telemetry
	if *telemetry != "" {
		if tel, err = obs.OpenTelemetry(*telemetry); err != nil {
			fail(err)
		}
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer(0, int64(*traceMs*1e6), 0)
	}
	var prog *obs.Progress
	if !*quiet {
		prog = obs.NewProgress(os.Stderr, "")
	}

	var out []fileResult
	for _, file := range files {
		m, err := loadMatrix(file)
		if err != nil {
			fail(err)
		}
		cs, skipped, err := m.Expand()
		if err != nil {
			fail(fmt.Errorf("%s: %w", file, err))
		}
		fr := fileResult{File: file, Name: m.Name, Cells: len(cs), Skipped: skipped}
		if *cells {
			if !*jsonOut {
				status, err := cellStatuses(cs, *seed, *cacheDir, *resumePth)
				if err != nil {
					fail(err)
				}
				fmt.Printf("# %s — %s: %d cells (%d skipped by constraints)\n", file, m.Name, len(cs), skipped)
				for i, c := range cs {
					if status == nil {
						fmt.Printf("  [%3d] %s\n", i, c.Key())
					} else {
						fmt.Printf("  [%3d] %-4s %s\n", i, status[i], c.Key())
					}
				}
			}
			out = append(out, fr)
			continue
		}
		prog.SetLabel(m.Name)
		var (
			journal *scenario.Journal
			resume  map[string]scenario.CellResult
		)
		if *resumePth != "" {
			var warnings []string
			var torn bool
			resume, warnings, torn, err = resumeState(*resumePth, cs, *seed)
			if err != nil {
				fail(err)
			}
			for _, w := range warnings {
				fmt.Fprintln(os.Stderr, "scenarios: "+w)
			}
			if torn {
				fmt.Fprintln(os.Stderr, "scenarios: journal has a torn final line (crash mid-append); ignoring and repairing it")
			}
			if journal, err = scenario.AppendJournal(*resumePth); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "scenarios: resuming %s — %d/%d cells already recorded\n", *resumePth, len(resume), len(cs))
		} else if *journalPth != "" {
			if err := guardJournalOverwrite(*journalPth, cs, *seed); err != nil {
				fail(err)
			}
			if journal, err = scenario.CreateJournal(*journalPth, scenario.JournalHeader{
				Name: m.Name, Seed: *seed, SpecHash: scenario.SpecHash(cs, *seed), Cells: len(cs),
			}); err != nil {
				fail(err)
			}
		}
		hook := prog.Hook()
		if failAfter > 0 {
			hook = injectCrash(hook, journal, failAfter)
		}
		opts := scenario.RunOptions{
			Seed: *seed, Parallelism: *parallel, Shards: *shards,
			Progress: hook,
			Name:     m.Name, Obs: reg, Telemetry: tel, Tracer: tracer,
			CacheDir: *cacheDir, Journal: journal, Resume: resume,
		}
		start := time.Now()
		results, err := scenario.RunSpecs(cs, opts)
		prog.Clear()
		if cerr := journal.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fail(fmt.Errorf("%s: %w", file, err))
		}
		fr.Seconds = time.Since(start).Seconds()
		fr.Results = results
		out = append(out, fr)
		if !*jsonOut {
			title := m.Name
			if title == "" {
				title = file
			}
			fmt.Printf("# %s — %d cells, %d skipped (%.1fs)\n%s\n",
				title, len(cs), skipped, fr.Seconds, scenario.Table(title, results))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "# metrics")
		reg.Dump(os.Stderr)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*trace); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n", tracer.Len(), *trace)
	}
	if err := tel.Close(); err != nil {
		fail(err)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// loadMatrix reads one Matrix spec file. Unknown fields are rejected so
// typos in spec files fail loudly instead of silently selecting defaults.
func loadMatrix(file string) (*scenario.Matrix, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var m scenario.Matrix
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return &m, nil
}

// validateJournalFlags rejects -journal together with -resume, in either
// flag order: -resume already keeps appending to the resumed journal, and
// letting -journal name the same (or any) file alongside it invites the
// truncation guardJournalOverwrite exists to prevent.
func validateJournalFlags(journalPth, resumePth string) error {
	if resumePth != "" && journalPth != "" {
		return fmt.Errorf("scenarios: pass -resume or -journal, not both (-resume keeps appending to the resumed journal)")
	}
	return nil
}

// guardJournalOverwrite refuses to let -journal truncate an existing
// resumable journal of this same run. CreateJournal opens with O_TRUNC,
// so re-running a crashed `-journal run.journal` sweep with the same flag
// — the natural retry — would silently destroy the very progress -resume
// exists to keep. Only a journal whose header matches this run (seed,
// spec hash, engine fingerprint) and which records at least one cell is
// protected; absent files, foreign files, and other runs' journals stay
// overwritable as before.
func guardJournalOverwrite(path string, cs []scenario.Spec, seed int64) error {
	st, err := scenario.ReadJournal(path)
	if err != nil {
		return nil // absent or not a journal: nothing to protect
	}
	resume, _, err := st.Match(cs, seed)
	if err != nil || len(resume) == 0 {
		return nil // a different run's journal, or no progress recorded yet
	}
	return fmt.Errorf("scenarios: %s already records %d/%d cells of this run; -journal would truncate that progress — use -resume %s to continue, or delete the file to restart",
		path, len(resume), len(cs), path)
}

// resumeState reads a resume journal and validates it against the freshly
// expanded cells: a journal recorded at a different seed, from a different
// spec, or under a different engine fingerprint is an error (those journals
// describe a different run). It returns the recorded results to skip, the
// sorted warnings for records no expanded cell matches, and whether the
// final line was torn by a crash mid-append. Read-only — repairing the torn
// line is AppendJournal's job.
func resumeState(path string, cs []scenario.Spec, seed int64) (map[string]scenario.CellResult, []string, bool, error) {
	st, err := scenario.ReadJournal(path)
	if err != nil {
		return nil, nil, false, err
	}
	resume, warnings, err := st.Match(cs, seed)
	if err != nil {
		return nil, nil, false, err
	}
	return resume, warnings, st.Torn, nil
}

// cellStatuses builds the -cells dry-run status column: "done" when the
// resume journal records the cell, else "hit"/"miss" against the result
// cache. Nil (no column) when neither -cache-dir nor -resume is set.
func cellStatuses(cs []scenario.Spec, seed int64, cacheDir, resumePath string) ([]string, error) {
	if cacheDir == "" && resumePath == "" {
		return nil, nil
	}
	var resume map[string]scenario.CellResult
	if resumePath != "" {
		var err error
		if resume, _, _, err = resumeState(resumePath, cs, seed); err != nil {
			return nil, err
		}
	}
	var cache *scenario.Cache
	if cacheDir != "" {
		var err error
		if cache, err = scenario.OpenCache(cacheDir); err != nil {
			return nil, err
		}
	}
	status := make([]string, len(cs))
	for i, c := range cs {
		switch {
		case resume != nil && hasIdentity(resume, c, seed):
			status[i] = "done"
		case cache.Has(c, seed):
			status[i] = "hit"
		default:
			status[i] = "miss"
		}
	}
	return status, nil
}

func hasIdentity(resume map[string]scenario.CellResult, c scenario.Spec, seed int64) bool {
	_, ok := resume[c.CacheIdentity(seed)]
	return ok
}

// injectCrash wraps the progress hook with the CI fault injector: once n
// cells have completed (and work remains) the process syncs the journal and
// exits with status 3, simulating a crash or Ctrl-C mid-sweep. The CI
// resume-smoke step uses this to pin kill-then-resume == uninterrupted.
func injectCrash(inner func(done, total int), j *scenario.Journal, n int) func(done, total int) {
	return func(done, total int) {
		if inner != nil {
			inner(done, total)
		}
		if done >= n && done < total {
			j.Sync()
			fmt.Fprintf(os.Stderr, "\nscenarios: FATPATHS_FAIL_AFTER=%d: injected crash after %d/%d cells\n", n, done, total)
			os.Exit(3)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
