// Command scenarios runs declarative scenario matrices (internal/scenario)
// from JSON spec files. A spec file holds one Matrix: a base Spec plus
// per-axis value lists and optional skip constraints; the engine expands
// the cross product, folds deterministic seeds per cell, and fans the cells
// out over the parallel experiment runtime.
//
// Usage:
//
//	go run ./cmd/scenarios -spec examples/scenarios/failure_ladder.json
//	go run ./cmd/scenarios -spec examples/scenarios/*.json         # several files
//	go run ./cmd/scenarios -cells -spec sweep.json                 # expansion only
//	go run ./cmd/scenarios -json -seed 7 -spec sweep.json > out.json
//	go run ./cmd/scenarios -metrics -telemetry run.jsonl -spec sweep.json
//	go run ./cmd/scenarios -trace trace.json -spec sweep.json      # Perfetto
//
// Output is byte-identical for every -parallel value at a fixed -seed —
// including with -metrics/-telemetry/-trace on, which only observe (tables
// go to stdout, diagnostics to stderr or files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// fileResult is the machine-readable form of one spec file's run (-json).
type fileResult struct {
	File    string                `json:"file"`
	Name    string                `json:"name"`
	Cells   int                   `json:"cells"`
	Skipped int                   `json:"skipped"`
	Results []scenario.CellResult `json:"results,omitempty"`
	Seconds float64               `json:"seconds,omitempty"`
}

func main() {
	var (
		spec       = flag.String("spec", "", "scenario matrix spec file (further files may follow as positional arguments)")
		seed       = flag.Int64("seed", 42, "random seed")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = all cores)")
		shards     = flag.Int("shards", 0, "event-loop shards per simulation unless the cell sets its own (0 = serial); results are byte-identical at every value")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of text tables")
		cells      = flag.Bool("cells", false, "only expand and list the matrix cells, don't simulate")
		quiet      = flag.Bool("quiet", false, "suppress the per-cell progress line on stderr")
		metrics    = flag.Bool("metrics", false, "dump the metrics registry to stderr when done")
		telemetry  = flag.String("telemetry", "", "append run/cell telemetry as JSONL to this file")
		trace      = flag.String("trace", "", "write a Chrome trace_event JSON of one traced simulation window to this file")
		traceMs    = flag.Float64("trace-ms", 50, "trace window length in simulated milliseconds")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	files := flag.Args()
	if *spec != "" {
		files = append([]string{*spec}, files...)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: scenarios -spec <matrix.json> [more.json ...] (see examples/scenarios/)")
		os.Exit(2)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tel *obs.Telemetry
	if *telemetry != "" {
		if tel, err = obs.OpenTelemetry(*telemetry); err != nil {
			fail(err)
		}
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer(0, int64(*traceMs*1e6), 0)
	}
	var prog *obs.Progress
	if !*quiet {
		prog = obs.NewProgress(os.Stderr, "")
	}

	var out []fileResult
	for _, file := range files {
		m, err := loadMatrix(file)
		if err != nil {
			fail(err)
		}
		cs, skipped, err := m.Expand()
		if err != nil {
			fail(fmt.Errorf("%s: %w", file, err))
		}
		fr := fileResult{File: file, Name: m.Name, Cells: len(cs), Skipped: skipped}
		if *cells {
			if !*jsonOut {
				fmt.Printf("# %s — %s: %d cells (%d skipped by constraints)\n", file, m.Name, len(cs), skipped)
				for i, c := range cs {
					fmt.Printf("  [%3d] %s\n", i, c.Key())
				}
			}
			out = append(out, fr)
			continue
		}
		prog.SetLabel(m.Name)
		opts := scenario.RunOptions{
			Seed: *seed, Parallelism: *parallel, Shards: *shards,
			Progress: prog.Hook(),
			Name:     m.Name, Obs: reg, Telemetry: tel, Tracer: tracer,
		}
		start := time.Now()
		results, err := scenario.RunSpecs(cs, opts)
		prog.Clear()
		if err != nil {
			fail(fmt.Errorf("%s: %w", file, err))
		}
		fr.Seconds = time.Since(start).Seconds()
		fr.Results = results
		out = append(out, fr)
		if !*jsonOut {
			title := m.Name
			if title == "" {
				title = file
			}
			fmt.Printf("# %s — %d cells, %d skipped (%.1fs)\n%s\n",
				title, len(cs), skipped, fr.Seconds, scenario.Table(title, results))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "# metrics")
		reg.Dump(os.Stderr)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*trace); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n", tracer.Len(), *trace)
	}
	if err := tel.Close(); err != nil {
		fail(err)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// loadMatrix reads one Matrix spec file. Unknown fields are rejected so
// typos in spec files fail loudly instead of silently selecting defaults.
func loadMatrix(file string) (*scenario.Matrix, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var m scenario.Matrix
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return &m, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
