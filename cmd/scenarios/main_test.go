package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// testCells expands a tiny matrix for CLI-level resume tests.
func testCells(t *testing.T) []scenario.Spec {
	t.Helper()
	m := &scenario.Matrix{
		Name: "cli-test",
		Base: scenario.Spec{
			Topology:  scenario.Topology{Kind: "SF", Param: 3},
			Pattern:   scenario.Pattern{Kind: "uniform"},
			FlowSize:  scenario.FlowSize{Bytes: 32 << 10},
			HorizonMs: 1000,
		},
		Axes: scenario.Axes{Routings: []string{"fatpaths", "minimal"}},
	}
	cells, _, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// writeJournal creates a journal for cells at seed, recording the first
// done cells, and returns its path.
func writeJournal(t *testing.T, cells []scenario.Spec, seed int64, done int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := scenario.CreateJournal(path, scenario.JournalHeader{
		Name: "cli-test", Seed: seed, SpecHash: scenario.SpecHash(cells, seed), Cells: len(cells),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < done; i++ {
		if err := j.Record(cells[i], seed, scenario.CellResult{Spec: cells[i], Flows: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestJournalResumeFlagConflict: -journal plus -resume is rejected in
// both command-line orderings — the conflict must not depend on which
// flag the shell saw first.
func TestJournalResumeFlagConflict(t *testing.T) {
	for _, argv := range [][]string{
		{"-journal", "run.journal", "-resume", "run.journal"},
		{"-resume", "run.journal", "-journal", "run.journal"},
	} {
		fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
		journal := fs.String("journal", "", "")
		resume := fs.String("resume", "", "")
		if err := fs.Parse(argv); err != nil {
			t.Fatal(err)
		}
		if err := validateJournalFlags(*journal, *resume); err == nil {
			t.Fatalf("argv %v: both flags accepted", argv)
		}
	}
	if err := validateJournalFlags("run.journal", ""); err != nil {
		t.Fatalf("-journal alone rejected: %v", err)
	}
	if err := validateJournalFlags("", "run.journal"); err != nil {
		t.Fatalf("-resume alone rejected: %v", err)
	}
}

// TestGuardJournalOverwrite: re-running a crashed sweep with the same
// -journal flag must not truncate the recorded progress (CreateJournal
// opens O_TRUNC) — the guard turns it into an error pointing at -resume,
// and leaves the journal bytes untouched. Journals of other runs and
// non-journal files stay overwritable.
func TestGuardJournalOverwrite(t *testing.T) {
	cells := testCells(t)
	path := writeJournal(t, cells, 7, 1)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	guardErr := guardJournalOverwrite(path, cells, 7)
	if guardErr == nil {
		t.Fatal("same-run re-journal accepted; O_TRUNC would destroy 1 recorded cell")
	}
	if !strings.Contains(guardErr.Error(), "-resume") || !strings.Contains(guardErr.Error(), "1/2") {
		t.Fatalf("guard error must point at -resume and count progress: %v", guardErr)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("guard modified the journal it protects")
	}
	// The blocked retry's escape hatch really works: -resume on the same
	// file sees the recorded cell.
	if resume, _, _, err := resumeState(path, cells, 7); err != nil || len(resume) != 1 {
		t.Fatalf("resume after guard: %d cells, err %v", len(resume), err)
	}

	// A different run's journal (other seed) is not this run's progress.
	if err := guardJournalOverwrite(path, cells, 8); err != nil {
		t.Fatalf("foreign-seed journal blocked: %v", err)
	}
	// A fully completed journal is still protected progress.
	full := writeJournal(t, cells, 7, len(cells))
	if guardJournalOverwrite(full, cells, 7) == nil {
		t.Fatal("completed journal accepted for truncation")
	}
	// Header-only journals (crash before any cell) and non-journal files
	// carry nothing to protect.
	empty := writeJournal(t, cells, 7, 0)
	if err := guardJournalOverwrite(empty, cells, 7); err != nil {
		t.Fatalf("empty journal blocked: %v", err)
	}
	junk := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(junk, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardJournalOverwrite(junk, cells, 7); err != nil {
		t.Fatalf("non-journal file blocked: %v", err)
	}
	if err := guardJournalOverwrite(filepath.Join(t.TempDir(), "absent"), cells, 7); err != nil {
		t.Fatalf("absent file blocked: %v", err)
	}
}

// TestResumeStateSeedMismatch: -resume with a journal recorded at a
// different seed is a clear error, not a silently mixed run. fail()
// turns any resumeState error into a non-zero exit.
func TestResumeStateSeedMismatch(t *testing.T) {
	cells := testCells(t)
	path := writeJournal(t, cells, 7, 1)
	_, _, _, err := resumeState(path, cells, 8)
	if err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if !strings.Contains(err.Error(), "seed 7") || !strings.Contains(err.Error(), "seed 8") {
		t.Fatalf("error must name both seeds: %v", err)
	}
}

// TestResumeStateSpecMismatch: -resume against an edited spec names the
// hashes and points at the cache instead.
func TestResumeStateSpecMismatch(t *testing.T) {
	cells := testCells(t)
	path := writeJournal(t, cells, 7, 1)
	_, _, _, err := resumeState(path, cells[:1], 7)
	if err == nil {
		t.Fatal("spec mismatch accepted")
	}
	if !strings.Contains(err.Error(), "spec hash") || !strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("error must explain the spec mismatch and the cache alternative: %v", err)
	}
}

// TestResumeStateHappyPath: a matching journal yields its recorded
// cells with no warnings.
func TestResumeStateHappyPath(t *testing.T) {
	cells := testCells(t)
	path := writeJournal(t, cells, 7, 1)
	resume, warnings, torn, err := resumeState(path, cells, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != 1 || len(warnings) != 0 || torn {
		t.Fatalf("resume=%d warnings=%v torn=%v, want 1/none/false", len(resume), warnings, torn)
	}
}

// TestCellStatuses: the -cells dry-run column reports done (journal),
// hit (cache), and miss, and stays absent with neither flag.
func TestCellStatuses(t *testing.T) {
	cells := testCells(t)
	if status, err := cellStatuses(cells, 7, "", ""); err != nil || status != nil {
		t.Fatalf("no cache/resume: status=%v err=%v, want nil column", status, err)
	}

	dir := t.TempDir()
	cache, err := scenario.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Put(cells[1], 7, scenario.CellResult{Spec: cells[1]}); err != nil {
		t.Fatal(err)
	}
	journal := writeJournal(t, cells, 7, 1)
	status, err := cellStatuses(cells, 7, dir, journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(status) != 2 || status[0] != "done" || status[1] != "hit" {
		t.Fatalf("status = %v, want [done hit]", status)
	}
	status, err = cellStatuses(cells, 7, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if status[0] != "miss" || status[1] != "hit" {
		t.Fatalf("status = %v, want [miss hit]", status)
	}
}
