// Command fatpaths builds a FatPaths fabric over a chosen topology and
// reports its deployed configuration: layer sizes, exposed path diversity,
// per-layer reachability, total network load, and equipment cost.
//
// Usage:
//
//	go run ./cmd/fatpaths -topo SF -size small -layers 9 -rho 0.6
//	go run ./cmd/fatpaths -topo DF -size medium -scheme min-interference
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/obs"
	"repro/internal/topo"
)

func main() {
	var (
		kind       = flag.String("topo", "SF", "topology: SF, DF, HX, XP, FT3, JF, Clique")
		size       = flag.String("size", "small", "size class: small (N≈200-1000) or medium (N≈10k)")
		n          = flag.Int("layers", 9, "number of layers")
		rho        = flag.Float64("rho", 0.6, "fraction of edges per sparsified layer")
		scheme     = flag.String("scheme", "random", "layer construction: random, min-interference, spain, past")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 0, "default event-loop shards for simulations of this fabric (0 = serial); results are byte-identical at every value")
		save       = flag.String("save", "", "write the layer configuration as JSON to this file (§V-B artifact)")
		deadlock   = flag.Bool("deadlock", false, "run the channel-dependency (lossless deployment) analysis per layer")
		metrics    = flag.Bool("metrics", false, "dump routing-core metrics to stderr when done")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}

	class := topo.Small
	if *size == "medium" {
		class = topo.Medium
	}
	rng := graph.NewRand(*seed)
	t, err := topo.ByName(*kind, class, rng)
	if err != nil {
		fatal(err)
	}
	if *shards < 0 {
		fatal(fmt.Errorf("negative shard count %d", *shards))
	}
	cfg := core.Config{NumLayers: *n, Rho: *rho, Seed: *seed, Shards: *shards, Obs: reg}
	switch *scheme {
	case "random":
		cfg.Scheme = core.RandomSampling
	case "min-interference":
		cfg.Scheme = core.MinInterference
	case "spain":
		cfg.Scheme = core.SPAINScheme
	case "past":
		cfg.Scheme = core.PASTScheme
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	fab, err := core.Build(t, cfg)
	if err != nil {
		fatal(err)
	}

	d, mean := t.G.DiameterAndMean()
	fmt.Printf("topology   %s\n", t.Name)
	fmt.Printf("routers    %d, endpoints %d, links %d\n", t.Nr(), t.N(), t.G.M())
	fmt.Printf("radix k'   %d, diameter %d, mean distance %.3f\n", t.NominalRadix, d, mean)
	fmt.Printf("TNL bound  %.0f concurrent flows\n", diversity.TNL(t.NominalRadix, t.Nr(), mean))
	cost := topo.Default100GbE().Cost(t)
	fmt.Printf("cost       %s\n\n", cost)

	fmt.Printf("layers (%s, n=%d, rho=%.2f):\n", cfg.Scheme, *n, *rho)
	for i, l := range fab.Layers.Layers {
		frac := float64(l.EdgeCount) / float64(t.G.M())
		fmt.Printf("  layer %2d: %5d edges (%.0f%%)\n", i, l.EdgeCount, 100*frac)
	}
	st := fab.Diversity(500, *seed)
	fmt.Printf("\nmean distinct (first-hop, length) routes per router pair: %.2f\n", st.MeanDistinctPaths)
	fmt.Printf("mean within-layer minimal routes per router pair (all layers): %.2f\n", st.MeanMinimalRoutes)

	sz := layers.SizeTablesFor(t, fab.Layers)
	fmt.Printf("forwarding state/router: %d prefix entries (flat would need %d, %.1fx more)\n",
		sz.PrefixEntries, sz.FlatEntries, sz.Compression)
	dep := layers.SizeDeployedFor(fab.Fwd)
	fmt.Printf("routing tables materialized: %d/%d (layer,dst) tables, %d CSR candidate entries (dense builder: %d)\n",
		dep.TablesBuilt, dep.TablesTotal, dep.CandEntries, dep.DenseEntries)

	if *deadlock {
		fmt.Println("\nchannel-dependency analysis (lossless deployments, §VIII-A6):")
		for _, rep := range layers.AnalyzeAllLayers(fab.Fwd, fab.Layers) {
			fmt.Printf("  layer %2d: %4d channels, %5d dependencies, acyclic=%v\n",
				rep.Layer, rep.Channels, rep.Dependencies, rep.Acyclic)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := fab.Layers.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nlayer configuration written to %s\n", *save)
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "# metrics")
		reg.Dump(os.Stderr)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fatpaths:", err)
	os.Exit(1)
}
