// Command fatpathsd serves FatPaths fabrics as a service: a long-running
// HTTP/JSON daemon (internal/serve) keeping fabrics resident in an
// LRU-bounded cache so interactive clients get lock-free next-hop and
// path-diversity answers, copy-on-write what-if failure analysis, and
// scenario-matrix execution with streamed progress — without paying the
// fabric build per query.
//
// Usage:
//
//	go run ./cmd/fatpathsd                          # listen on :8095
//	go run ./cmd/fatpathsd -addr :9000 -max-fabrics 16
//	go run ./cmd/fatpathsd -cache-dir ~/.fatpaths-cache   # share the sweep cache
//
//	curl 'localhost:8095/nexthop?topo=SF&param=5&layers=4&rho=0.7&layer=1&src=3&dst=17'
//	curl 'localhost:8095/paths?topo=SF&param=5&layers=4&rho=0.7&src=3&dst=17'
//	curl -d '{"fabric":{"topology":{"kind":"SF","param":5},"layers":4,"rho":0.7},
//	         "failedEdges":[0,7],"queries":[{"layer":1,"src":3,"dst":17}]}' \
//	     localhost:8095/whatif
//	curl -d @examples/scenarios/failure_ladder.json.wrapped localhost:8095/scenarios
//	curl localhost:8095/healthz; curl localhost:8095/metrics
//
// Answers obey the determinism contract: at the same seed they are
// byte-identical to the offline engine (cmd/fatpaths, cmd/scenarios) —
// the daemon only changes where the fabric lives, never what it answers.
// SIGINT/SIGTERM drain in-flight requests and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8095", "listen address")
		maxFabrics = flag.Int("max-fabrics", 8, "resident-fabric LRU capacity")
		lazy       = flag.Bool("lazy", false, "build routing tables per destination on first query instead of eagerly at fabric admission")
		buildW     = flag.Int("build-workers", 0, "admission table-build workers (0 = all cores)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed scenario result cache directory, shared with cmd/scenarios")
		parallel   = flag.Int("parallel", 0, "scenario worker goroutines (0 = all cores)")
		shards     = flag.Int("shards", 0, "event-loop shards per scenario simulation (0 = serial); results are byte-identical at every value")
		maxRuns    = flag.Int("max-runs", 1, "concurrently executing /scenarios submissions (excess queue)")
		drainSecs  = flag.Float64("drain-timeout", 30, "seconds to wait for in-flight requests on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fatpathsd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	s := serve.New(serve.Config{
		MaxFabrics:      *maxFabrics,
		Lazy:            *lazy,
		BuildWorkers:    *buildW,
		CacheDir:        *cacheDir,
		Parallelism:     *parallel,
		Shards:          *shards,
		MaxScenarioRuns: *maxRuns,
	}, reg)

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fatpathsd: listening on %s (max %d resident fabrics)\n", *addr, *maxFabrics)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure before a signal arrives.
		fmt.Fprintln(os.Stderr, "fatpathsd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "fatpathsd: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs*float64(time.Second)))
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fatpathsd: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fatpathsd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fatpathsd: stopped")
}
