// Command topoinfo prints structural and path-diversity properties of a
// topology: the Table V parameters, the Fig 6 minimal-path distributions,
// and radix-normalized CDP/PI samples (Table IV format).
//
// Usage:
//
//	go run ./cmd/topoinfo -topo SF -size small
//	go run ./cmd/topoinfo -topo HX -size medium -samples 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/diversity"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topo"
)

func main() {
	var (
		kind       = flag.String("topo", "SF", "topology: SF, DF, HX, XP, FT3, JF, Clique")
		size       = flag.String("size", "small", "size class: small or medium")
		samples    = flag.Int("samples", 300, "sampled router pairs for CDP/PI")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 0, "accepted for interface parity with the other tools; topoinfo runs no simulations")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "topoinfo: negative shard count %d\n", *shards)
		os.Exit(1)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}

	class := topo.Small
	if *size == "medium" {
		class = topo.Medium
	}
	rng := graph.NewRand(*seed)
	t, err := topo.ByName(*kind, class, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
	d, mean := t.G.DiameterAndMean()
	fmt.Printf("%s: Nr=%d N=%d k'=%d M=%d D=%d d=%.3f density=%.2f\n\n",
		t.Name, t.Nr(), t.N(), t.NominalRadix, t.G.M(), d, mean, t.EdgeDensity())

	mp := diversity.MinimalPaths(t.G, *samples, rng)
	fmt.Println("minimal paths (Fig 6):")
	fmt.Printf("  lmin:  1:%5.1f%%  2:%5.1f%%  3:%5.1f%%  4:%5.1f%%\n",
		100*mp.LenHist.Fraction(1), 100*mp.LenHist.Fraction(2),
		100*mp.LenHist.Fraction(3), 100*mp.LenHist.Fraction(4))
	fmt.Printf("  cmin:  1:%5.1f%%  2:%5.1f%%  3:%5.1f%%  >3:%5.1f%%\n",
		100*mp.CountHist.Fraction(1), 100*mp.CountHist.Fraction(2),
		100*mp.CountHist.Fraction(3), 100*mp.CountHist.Fraction(4))
	fmt.Printf("  single-minimal-path pairs: %.1f%% (shortest paths fall short)\n\n",
		100*mp.SingleMinimalFrac)

	dPrim := d + 1
	cdp := diversity.CDP(t.G, t.NominalRadix, dPrim, *samples, rng)
	pi := diversity.PathInterference(t.G, t.NominalRadix, dPrim, *samples/2, rng)
	fmt.Printf("at d'=%d (Table IV format, fractions of k'):\n", dPrim)
	fmt.Printf("  CDP mean %.0f%%, 1%% tail %.0f%%\n", 100*cdp.Mean, 100*cdp.Tail1Pct)
	fmt.Printf("  PI  mean %.0f%%, 99.9%% tail %.0f%%\n", 100*pi.Mean, 100*pi.Tail999Pct)

	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
}
