// Command detlint is the multichecker for the repository's determinism
// contract: it compiles the internal/analysis suite (maprange,
// globalrand, seedfold, syncpool, obsguard) into one binary.
//
// Standalone (the usual way — loads and type-checks the module itself,
// no network, no toolchain cache needed):
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -rules maprange,seedfold ./internal/routing
//
// As a `go vet` backend (speaks the vet tool protocol: -V=full plus a
// vet.cfg, type-checking from the build cache's export data):
//
//	go build -o /tmp/detlint ./cmd/detlint
//	go vet -vettool=/tmp/detlint ./...
//
// Exit status: 0 clean, 1 usage/load failure, 2 diagnostics reported.
// Suppressions: //det:allow <rule>[,<rule>] -- <reason> on the flagged
// line or the line above. See the README "Determinism contract"
// section for the rule catalog.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// Vet tool protocol: `detlint -V=full` prints an identity line the go
	// command uses as a cache key, `detlint -flags` describes the flags
	// go vet may pass through, and `detlint [flags] <dir>/vet.cfg`
	// analyzes one package described by the config file.
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			printFlagDefs()
			return
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(runVetArgs(args))
	}
	os.Exit(runStandalone())
}

// printFlagDefs answers go vet's -flags probe: a JSON description of
// the tool flags go vet should accept and pass through.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	out, _ := json.Marshal([]flagDef{
		{Name: "rules", Bool: false, Usage: "comma-separated subset of rules to run (default: all)"},
	})
	fmt.Println(string(out))
}

// runVetArgs parses the pass-through flags ahead of the vet.cfg path
// and dispatches to runVet.
func runVetArgs(args []string) int {
	fs := flag.NewFlagSet("detlint (vet mode)", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "detlint: vet mode expects [flags] <vet.cfg>")
		return 1
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	return runVet(fs.Arg(0), analyzers)
}

// printVersion emits "detlint version <id>" with a content hash of the
// executable, so go vet's action cache invalidates when detlint changes.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("detlint version v1-%s\n", id)
}

// selectAnalyzers filters the suite by a comma-separated -rules list.
func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, r := range strings.Split(rules, ",") {
		r = strings.TrimSpace(r)
		a, ok := byName[r]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: maprange, globalrand, seedfold, syncpool, obsguard)", r)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonDiag is the -json output record.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func runStandalone() int {
	fs := flag.NewFlagSet("detlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	verbose := fs.Bool("v", false, "log analyzed packages to stderr")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-rules r1,r2] [-json] [-v] <packages>\n  e.g.: detlint ./...\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}

	exit := 0
	for _, path := range paths {
		if *verbose {
			fmt.Fprintln(os.Stderr, "detlint:", path)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
		for _, d := range analysis.RunPackage(pkg, analyzers) {
			exit = 2
			if *jsonOut {
				pos := d.Position(pkg.Fset)
				rec, _ := json.Marshal(jsonDiag{pos.Filename, pos.Line, pos.Column, d.Rule, d.Message})
				fmt.Println(string(rec))
			} else {
				fmt.Println(d.Format(pkg.Fset))
			}
		}
	}
	return exit
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
