package main

// The `go vet -vettool` protocol: the go command invokes the tool once
// per package with a single argument, the path to a JSON vet.cfg
// describing the package's files and the export data of its
// dependencies (already compiled into the build cache). We type-check
// the listed files with the gc importer reading that export data — no
// source re-checking, no network — run the suite, print diagnostics to
// stderr, and exit 2 when any survive. Unlike x/tools' unitchecker we
// carry no cross-package facts, so dependency configs (VetxOnly) are
// satisfied trivially.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors cmd/go's vetConfig (the fields we need).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command caches the vetx (facts) output; we have no facts,
	// but writing the file keeps the cache happy.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("detlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
	}
	// Dependency-only runs and stdlib packages need no analysis: every
	// detlint rule is package-local and targets this module's paths.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0
	}

	// Test variants reuse the base ImportPath with _test.go files merged
	// into GoFiles. The determinism contract governs non-test source
	// (tests assert it dynamically, and deliberately poke at ordering),
	// so test files are excluded — matching standalone mode, which never
	// parses them.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0 // external test package: nothing but _test.go files
	}

	// Resolve imports through the gc importer against the export data
	// the go command already built.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "detlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{Dir: cfg.Dir, Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	exit := 0
	for _, d := range analysis.RunPackage(pkg, analyzers) {
		exit = 2
		fmt.Fprintln(os.Stderr, d.Format(fset))
	}
	return exit
}
