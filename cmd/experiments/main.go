// Command experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the corresponding
// figure plots.
//
// Usage:
//
//	go run ./cmd/experiments -list
//	go run ./cmd/experiments -run fig4
//	go run ./cmd/experiments -run all -full -seed 7 -parallel 16
//	go run ./cmd/experiments -run fig13 -json > fig13.json
//	go run ./cmd/experiments -run fig2 -metrics -telemetry run.jsonl
//	go run ./cmd/experiments -run fig12 -trace trace.json -cpuprofile cpu.pb.gz
//
// Quick mode (default) uses small topologies; -full uses the paper's
// N≈10k class where feasible (expect minutes for the simulation figures).
// Experiments decompose into independent cells fanned out over -parallel
// worker goroutines; output is byte-identical for every worker count at a
// fixed seed — including with -metrics/-telemetry/-trace on, which only
// observe (tables go to stdout, diagnostics to stderr or files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// result is the machine-readable form of one experiment table (-json).
type result struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
}

func main() {
	var (
		run        = flag.String("run", "", "experiment ID to run (or 'all')")
		list       = flag.Bool("list", false, "list available experiments")
		full       = flag.Bool("full", false, "paper-scale runs instead of quick mode")
		seed       = flag.Int64("seed", 42, "random seed")
		parallel   = flag.Int("parallel", 0, "worker goroutines per experiment (0 = all cores)")
		shards     = flag.Int("shards", 0, "event-loop shards per simulation (0 = serial); results are byte-identical at every value")
		jsonOut    = flag.Bool("json", false, "emit a JSON array of tables instead of text")
		quiet      = flag.Bool("quiet", false, "suppress the per-cell progress line on stderr")
		metrics    = flag.Bool("metrics", false, "dump the metrics registry to stderr when done")
		telemetry  = flag.String("telemetry", "", "append per-cell run telemetry as JSONL to this file")
		trace      = flag.String("trace", "", "write a Chrome trace_event JSON of one traced simulation window to this file")
		traceMs    = flag.Float64("trace-ms", 50, "trace window length in simulated milliseconds")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache for scenario-backed experiments (see README \"Durable sweeps\")")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: go run ./cmd/experiments -run <id>")
		}
		return
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		todo = []experiments.Experiment{e}
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tel *obs.Telemetry
	if *telemetry != "" {
		if tel, err = obs.OpenTelemetry(*telemetry); err != nil {
			fatal(err)
		}
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer(0, int64(*traceMs*1e6), 0)
	}
	var prog *obs.Progress
	if !*quiet {
		prog = obs.NewProgress(os.Stderr, "")
	}

	var results []result
	for _, e := range todo {
		prog.SetLabel(e.ID)
		opts := experiments.Options{
			Quick: !*full, Seed: *seed, Parallelism: *parallel,
			Shards: *shards, Progress: prog.Hook(), RunName: e.ID,
			Obs: reg, Telemetry: tel, Tracer: tracer, CacheDir: *cacheDir,
		}
		start := time.Now()
		tab, err := e.Run(opts)
		elapsed := time.Since(start).Seconds()
		prog.Clear()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			results = append(results, result{
				ID: e.ID, Title: e.Title,
				Headers: tab.Headers, Rows: tab.Rows,
				Seconds: elapsed,
			})
			continue
		}
		fmt.Printf("# %s — %s (%.1fs)\n%s\n", e.ID, e.Title, elapsed, tab)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "# metrics")
		reg.Dump(os.Stderr)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*trace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n", tracer.Len(), *trace)
	}
	if err := tel.Close(); err != nil {
		fatal(err)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
