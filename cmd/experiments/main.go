// Command experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the corresponding
// figure plots.
//
// Usage:
//
//	go run ./cmd/experiments -list
//	go run ./cmd/experiments -run fig4
//	go run ./cmd/experiments -run all -full -seed 7
//
// Quick mode (default) uses small topologies; -full uses the paper's
// N≈10k class where feasible (expect minutes for the simulation figures).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "", "experiment ID to run (or 'all')")
		list = flag.Bool("list", false, "list available experiments")
		full = flag.Bool("full", false, "paper-scale runs instead of quick mode")
		seed = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: go run ./cmd/experiments -run <id>")
		}
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s (%.1fs)\n%s\n", e.ID, e.Title, time.Since(start).Seconds(), tab)
	}
}
