// Command experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the corresponding
// figure plots.
//
// Usage:
//
//	go run ./cmd/experiments -list
//	go run ./cmd/experiments -run fig4
//	go run ./cmd/experiments -run all -full -seed 7 -parallel 16
//	go run ./cmd/experiments -run fig13 -json > fig13.json
//
// Quick mode (default) uses small topologies; -full uses the paper's
// N≈10k class where feasible (expect minutes for the simulation figures).
// Experiments decompose into independent cells fanned out over -parallel
// worker goroutines; output is byte-identical for every worker count at a
// fixed seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// result is the machine-readable form of one experiment table (-json).
type result struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
}

func main() {
	var (
		run      = flag.String("run", "", "experiment ID to run (or 'all')")
		list     = flag.Bool("list", false, "list available experiments")
		full     = flag.Bool("full", false, "paper-scale runs instead of quick mode")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "worker goroutines per experiment (0 = all cores)")
		jsonOut  = flag.Bool("json", false, "emit a JSON array of tables instead of text")
		progress = flag.Bool("progress", true, "report per-cell progress on stderr")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: go run ./cmd/experiments -run <id>")
		}
		return
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	var results []result
	for _, e := range todo {
		opts := experiments.Options{Quick: !*full, Seed: *seed, Parallelism: *parallel}
		if *progress {
			id := e.ID
			opts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", id, done, total)
			}
		}
		start := time.Now()
		tab, err := e.Run(opts)
		elapsed := time.Since(start).Seconds()
		if *progress {
			// Clear the progress line before real output.
			fmt.Fprintf(os.Stderr, "\r%s\r", strings.Repeat(" ", len(e.ID)+24))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			results = append(results, result{
				ID: e.ID, Title: e.Title,
				Headers: tab.Headers, Rows: tab.Rows,
				Seconds: elapsed,
			})
			continue
		}
		fmt.Printf("# %s — %s (%.1fs)\n%s\n", e.ID, e.Title, elapsed, tab)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
