// Adversarial traffic demo: why shortest paths fall short. All endpoints of
// every Slim Fly router send to the next router — with one shortest path
// per router pair, ECMP serializes the colliding flows, while FatPaths
// spreads flowlets over non-minimal layers (§IV-A, §VII-B2 of the paper).
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	sf, err := topo.SlimFly(7, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The colliding pattern: offset exactly one concentration p, so all p
	// endpoint flows of a router target the same next router.
	p := int(sf.MeanConcentration())
	pat := traffic.OffDiagonal(sf.N(), p)
	hist := diversity.Collisions(sf, pat)
	frac4, max := diversity.CollisionTakeaway(hist)
	fmt.Printf("pattern %s on %s: max %d collisions per router pair, %.0f%% of pairs with >=4\n\n",
		pat.Name, sf.Name, max, 100*frac4)

	run := func(label string, cfg core.Config, lb netsim.LoadBalance) {
		fab, err := core.Build(sf, cfg)
		if err != nil {
			log.Fatal(err)
		}
		simCfg := netsim.NDPDefaults()
		simCfg.LB = lb
		wl := core.Workload{Pattern: pat, FlowSize: traffic.FixedSize(512 << 10)}
		res := fab.RunWorkload(simCfg, wl, 10*netsim.Second, 3)
		fct := netsim.SummarizeFCT(res)
		fmt.Printf("%-22s mean FCT %7.3f ms   p99 %7.3f ms   completed %.0f%%\n",
			label, fct.Mean, fct.P99, 100*netsim.CompletedFraction(res))
	}
	run("ECMP (1 shortest path)", core.Config{NumLayers: 1, Rho: 1}, netsim.LBECMP)
	run("LetFlow (minimal)", core.Config{NumLayers: 1, Rho: 1}, netsim.LBLetFlow)
	run("FatPaths (9 layers)", core.DefaultConfig(sf), netsim.LBFatPaths)
}
