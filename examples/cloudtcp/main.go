// Cloud datacenter example (§VII-C): a full TCP stack over an Xpander
// fabric with pFabric web-search flow sizes and Poisson arrivals, comparing
// plain TCP, DCTCP (ECN), and TCP with FatPaths non-minimal multipathing —
// the cloud-infrastructure setting the paper targets alongside HPC.
//
//	go run ./examples/cloudtcp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	rng := graph.NewRand(1)
	xp, err := topo.Xpander(8, 8, 0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s — %d endpoints (expander datacenter)\n", xp.Name, xp.N())
	fmt.Printf("pFabric web-search flow sizes, mean %.2f MB, lambda = 200 flows/s/endpoint\n\n",
		traffic.PFabricMean()/1e6)

	type series struct {
		label string
		tr    netsim.Transport
		lb    netsim.LoadBalance
		cfg   core.Config
	}
	runs := []series{
		{"TCP + ECMP", netsim.TransportTCP, netsim.LBECMP, core.Config{NumLayers: 1, Rho: 1}},
		{"DCTCP + ECMP", netsim.TransportDCTCP, netsim.LBECMP, core.Config{NumLayers: 1, Rho: 1}},
		{"TCP + FatPaths", netsim.TransportTCP, netsim.LBFatPaths, core.DefaultConfig(xp)},
		{"DCTCP + FatPaths", netsim.TransportDCTCP, netsim.LBFatPaths, core.DefaultConfig(xp)},
	}
	for _, s := range runs {
		fab, err := core.Build(xp, s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		simCfg := netsim.TCPDefaults(s.tr)
		simCfg.LB = s.lb
		wl := core.Workload{
			Pattern:  traffic.RandomizeMapping(traffic.RandomUniform(rng, xp.N()), rng),
			FlowSize: traffic.PFabricFlowSize,
			Lambda:   200,
		}
		res := fab.RunWorkload(simCfg, wl, 15*netsim.Second, 4)
		fct := netsim.SummarizeFCT(res)
		fmt.Printf("%-18s FCT mean %7.3f ms  p50 %7.3f  p99 %8.3f  completed %.0f%%\n",
			s.label, fct.Mean, fct.P50, fct.P99, 100*netsim.CompletedFraction(res))
	}
}
