// Observability demo: run one instrumented workload and show every output
// of the internal/obs stack — the metric registry (what happened, in
// aggregate), the JSONL telemetry journal (what each cell cost), and a
// Chrome trace_event timeline of the simulator's event loop (what the
// fabric did, packet by packet, on a bounded window of simulated time).
//
//	go run ./examples/observability
//	go run ./examples/observability -trace trace.json
//
// Then open trace.json in chrome://tracing or https://ui.perfetto.dev:
// rows are destination hosts, the counter track is the event-queue depth,
// and async spans are flow lifetimes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	trace := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	flag.Parse()

	sf, err := topo.SlimFly(5, 0)
	if err != nil {
		log.Fatal(err)
	}

	// One registry instruments everything below: the routing engine counts
	// table materializations into it, every simulation flushes its tallies
	// into it. The same registry can back any number of fabrics and runs.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *trace != "" {
		// Trace the first 20 simulated milliseconds. One tracer records one
		// simulation: the first replicate to start claims it.
		tracer = obs.NewTracer(0, 20_000_000, 0)
	}
	cfg := core.DefaultConfig(sf)
	cfg.Obs = reg
	cfg.Tracer = tracer
	fab, err := core.Build(sf, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The telemetry journal records what each replicate cost in wall time.
	tel := obs.NewTelemetry(os.Stdout)
	const replicates = 3
	tel.Emit(obs.RunStart{Type: "run_start", Name: "obs-demo", Cells: replicates, Workers: 1, Seed: 1, UnixMs: obs.UnixMs()})

	fmt.Fprintf(os.Stderr, "running %d replicates of a randomized-uniform workload on %s...\n", replicates, sf.Name)
	rng := graph.NewRand(1)
	for i := 0; i < replicates; i++ {
		wl := core.Workload{
			Pattern:  traffic.RandomizeMapping(traffic.RandomPermutation(rng, sf.N()), rng),
			FlowSize: traffic.FixedSize(128 << 10),
			Lambda:   300,
		}
		res := fab.RunWorkload(netsim.NDPDefaults(), wl, 2*netsim.Second, int64(10+i))
		fct := netsim.SummarizeFCT(res)
		tel.Emit(obs.CellRecord{
			Type: "cell", Name: "obs-demo", Index: i,
			Key:    fmt.Sprintf("replicate %d", i),
			WallMs: fct.Mean, // demo: report the replicate's mean FCT
		})
	}
	tel.Emit(obs.RunEnd{Type: "run_end", Name: "obs-demo", Cells: replicates, UnixMs: obs.UnixMs()})

	// The registry dump is the aggregate story: how many events the three
	// replicates executed, the shape of the FCT and path-length
	// distributions, how many routing tables the shared engine built (the
	// second and third replicates reuse the first's tables — that is the
	// lazy-materialization win made visible).
	fmt.Fprintln(os.Stderr, "\n# metrics")
	reg.Dump(os.Stderr)

	if tracer != nil {
		if err := tracer.WriteFile(*trace); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\ntrace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
			tracer.Len(), *trace)
	}
}
