// Failover demo (§V-G): FatPaths' fault tolerance comes from
// preprovisioned layers plus flowlet redirection — when links die, flowlets
// simply stop landing on dead paths, with no routing recomputation. This
// example kills a growing fraction of a Slim Fly's links and compares
// FatPaths against a single-shortest-path configuration, then shows the
// "major update" repair path (recomputing forwarding on surviving links).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func main() {
	sf, err := topo.SlimFly(7, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s — %d links\n\n", sf.Name, sf.G.M())
	fmt.Println("64KiB random flows under link failures (NDP transport):")
	fmt.Printf("%-28s %-14s %-12s %-12s\n", "series", "failed links", "completed", "mean FCT ms")

	run := func(label string, lb netsim.LoadBalance, cfg core.Config, failFrac float64) {
		fab, err := core.Build(sf, cfg)
		if err != nil {
			log.Fatal(err)
		}
		simCfg := netsim.NDPDefaults()
		simCfg.LB = lb
		sim := fab.NewSimulation(simCfg)
		nFail := int(failFrac * float64(sf.G.M()))
		sim.Net.FailRandomLinks(nFail, graph.NewRand(7))
		rng := graph.NewRand(1)
		for i := 0; i < 120; i++ {
			s, d := graph.SampleDistinctPair(rng, sf.N())
			sim.AddFlow(netsim.FlowSpec{Src: int32(s), Dst: int32(d), Bytes: 64 << 10})
		}
		res := sim.Run(3 * netsim.Second)
		fct := netsim.SummarizeFCT(res)
		fmt.Printf("%-28s %-14d %-12s %-12.3f\n",
			label, nFail, fmt.Sprintf("%.0f%%", 100*netsim.CompletedFraction(res)), fct.Mean)
	}
	for _, frac := range []float64{0, 0.05, 0.10} {
		run("FatPaths (9 layers)", netsim.LBFatPaths, core.DefaultConfig(sf), frac)
		run("single shortest path", netsim.LBMinimalLayer, core.Config{NumLayers: 1, Rho: 1}, frac)
	}

	// The §V-G "major update" path: repair the routing tables without the
	// failed links. Invalidation is incremental and per destination — a
	// (layer, destination) table is rebuilt only if a removed edge sat on
	// one of its minimal paths; every other table is shared as-is.
	fmt.Println("\nmajor-update repair: recompute routes without the failed links")
	fab, err := core.Build(sf, core.DefaultConfig(sf))
	if err != nil {
		log.Fatal(err)
	}
	fab.Fwd.BuildAll(0)
	failed := []int{0, 1, 2, 3, 4}
	fwd := fab.Fwd.WithoutEdges(failed)
	kept := fwd.Engine().Stat()
	holes := 0
	for s := 0; s < sf.Nr(); s++ {
		for d := 0; d < sf.Nr(); d++ {
			if s != d && !fwd.Reachable(0, s, d) {
				holes++
			}
		}
	}
	total := kept.TablesTotal
	fmt.Printf("after removing %d links: %d of %d tables shared unchanged, %d routing holes in layer 0\n",
		len(failed), kept.TablesBuilt, total, holes)
}
