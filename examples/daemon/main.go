// Fabric-daemon walkthrough: start the fatpathsd serving layer
// (internal/serve) on a loopback listener, then play a client session
// against it — resident-fabric admission, lock-free next-hop reads, the
// path-diversity view, copy-on-write what-if failure analysis, and a
// streamed scenario run — and finish by checking the daemon half of the
// determinism contract: the served next-hop answer is byte-identical to
// an offline engine built from the same spec and seed.
//
//	go run ./examples/daemon
//
// For the long-running daemon itself use `go run ./cmd/fatpathsd` and the
// curl lines in README.md ("Fabric daemon").
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/serve"
)

const fabricQ = "topo=SF&param=5&layers=4&rho=0.7" // SlimFly q=5: 50 routers

func main() {
	reg := obs.NewRegistry()
	s := serve.New(serve.Config{MaxFabrics: 4}, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon listening on", base)

	// First query admits (builds) the fabric; repeats are resident hits.
	fmt.Println("\n-- GET /nexthop (admission, then two resident reads)")
	for _, q := range []string{"layer=0&src=3&dst=17", "layer=1&src=3&dst=17", "layer=2&src=3&dst=17"} {
		fmt.Printf("  %s -> %s", q, get(base+"/nexthop?"+fabricQ+"&"+q))
	}

	fmt.Println("\n-- GET /paths (the diversity the flowlet balancer chooses over)")
	fmt.Print(get(base + "/paths?" + fabricQ + "&src=3&dst=17"))

	fmt.Println("\n-- POST /whatif (copy-on-write view; resident fabric untouched)")
	whatif := `{"fabric":{"topology":{"kind":"SF","param":5},"layers":4,"rho":0.7},
	            "failedEdges":[0,7,11],"queries":[{"layer":1,"src":3,"dst":17}]}`
	fmt.Print(post(base+"/whatif", whatif))

	fmt.Println("\n-- POST /scenarios (streamed telemetry JSONL, final result line)")
	m := scenario.Matrix{
		Name: "daemon-walkthrough",
		Base: scenario.Spec{
			Topology:  scenario.Topology{Kind: "SF", Param: 5},
			Rho:       0.7,
			Pattern:   scenario.Pattern{Kind: "uniform"},
			FlowSize:  scenario.FlowSize{Bytes: 64 << 10},
			HorizonMs: 100,
		},
		Axes: scenario.Axes{Layers: []int{1, 4}},
	}
	body, _ := json.Marshal(serve.ScenarioRequest{Matrix: m, Seed: 42})
	for _, line := range strings.Split(strings.TrimSpace(post(base+"/scenarios", string(body))), "\n") {
		if len(line) > 100 {
			line = line[:100] + "…"
		}
		fmt.Println(" ", line)
	}

	fmt.Println("\n-- GET /healthz + the daemon's own metrics")
	fmt.Print(get(base + "/healthz"))
	snap := reg.Snapshot()
	fmt.Printf("  requests=%d fabric hits=%d misses=%d whatif views=%d\n",
		snap[obs.MetricServeRequests], snap[obs.MetricServeFabricHits],
		snap[obs.MetricServeFabricMisses], snap[obs.MetricServeWhatifViews])

	// The determinism pin: rebuild the same fabric offline (same spec,
	// same seed 42) and compare answers byte for byte.
	fmt.Println("\n-- determinism: daemon vs offline engine")
	spec := scenario.Spec{
		Topology: scenario.Topology{Kind: "SF", Param: 5},
		Layers:   4, Rho: 0.7,
		Pattern: scenario.Pattern{Kind: "uniform"},
	}
	_, fab, err := scenario.BuildFabric(spec, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	served := get(base + "/nexthop?" + fabricQ + "&layer=1&src=3&dst=17")
	offline := fmt.Sprintf(`{"layer":1,"src":3,"dst":17,"next":%d,"dist":%d,"candidates":%s}`,
		fab.Fwd.Next(1, 3, 17), fab.Fwd.PathLen(1, 3, 17),
		marshal(append([]int32{}, fab.Fwd.Candidates(1, 3, 17)...)))
	if !bytes.Equal([]byte(strings.TrimSpace(served)), []byte(offline)) {
		log.Fatalf("answers diverged:\n  daemon  %s\n  offline %s", served, offline)
	}
	fmt.Println("  byte-identical:", offline)
}

func marshal(v interface{}) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func get(url string) string { return read(http.Get(url)) }

func post(url, body string) string {
	return read(http.Post(url, "application/json", strings.NewReader(body)))
}

func read(resp *http.Response, err error) string {
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	return string(b)
}
