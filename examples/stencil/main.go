// HPC stencil example (Fig 17's workload): a bulk-synchronous 2D stencil —
// four off-diagonal exchanges per round followed by a barrier — comparing
// ECMP against FatPaths on a Dragonfly, with and without the randomized
// workload mapping of §III-D.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	df, err := topo.Dragonfly(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s — %d endpoints\n", df.Name, df.N())
	rng := graph.NewRand(1)
	skewed := traffic.Stencil2D(df.N(), []int{1, 42})
	randomized := traffic.RandomizeMapping(skewed, rng)

	const rounds = 4
	const flowBytes = 128 << 10
	run := func(label string, pat traffic.Pattern, cfg core.Config, lb netsim.LoadBalance) netsim.Time {
		fab, err := core.Build(df, cfg)
		if err != nil {
			log.Fatal(err)
		}
		simCfg := netsim.TCPDefaults(netsim.TransportTCP)
		simCfg.LB = lb
		total, ok := fab.RunStencilRounds(simCfg, pat, flowBytes, rounds, 6*netsim.Second, 2)
		status := ""
		if !ok {
			status = " (incomplete rounds)"
		}
		fmt.Printf("%-34s %8.3f ms%s\n", label, total.Seconds()*1e3, status)
		return total
	}

	fmt.Printf("\n%d rounds of stencil + barrier, %d KiB per exchange (TCP):\n", rounds, flowBytes>>10)
	base := run("ECMP, skewed mapping", skewed, core.Config{NumLayers: 1, Rho: 1}, netsim.LBECMP)
	fp := run("FatPaths, skewed mapping", skewed, core.DefaultConfig(df), netsim.LBFatPaths)
	fpr := run("FatPaths, randomized mapping", randomized, core.DefaultConfig(df), netsim.LBFatPaths)
	fmt.Printf("\nspeedup over ECMP: FatPaths %.2fx, FatPaths+randomization %.2fx\n",
		float64(base)/float64(fp), float64(base)/float64(fpr))
	fmt.Println("\nnote: this stencil is locality-tuned (±1 neighbours share a router), so")
	fmt.Println("randomization trades that locality for even load — §III-D expects it to pay")
	fmt.Println("off on skewed patterns without locality, not to beat a locality-tuned layout.")
}
