// Quickstart: build a Slim Fly, equip it with FatPaths layered routing,
// and run a randomized workload on the purified (NDP-style) transport.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	// 1. A diameter-2 Slim Fly with 588 endpoints (q=7, p=⌈k'/2⌉).
	sf, err := topo.SlimFly(7, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s — %d routers, %d endpoints, diameter %d\n",
		sf.Name, sf.Nr(), sf.N(), sf.Diameter)

	// 2. FatPaths: nine layers (one full + eight sparsified at ρ=0.6).
	fab, err := core.Build(sf, core.DefaultConfig(sf))
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range fab.Layers.Layers {
		fmt.Printf("  layer %d: %d/%d links\n", i, l.EdgeCount, sf.G.M())
	}

	// 3. Inspect the path diversity FatPaths exposes for one pair.
	src, dst := 0, sf.N()-1
	fmt.Printf("\nroutes from endpoint %d to endpoint %d:\n", src, dst)
	for l := 0; l < fab.Fwd.NumLayers(); l++ {
		if route := fab.RouterRoute(src, dst, l); route != nil {
			fmt.Printf("  layer %d: %d hops via routers %v\n", l, len(route)-1, route)
		}
	}

	// 4. Simulate a randomized random-uniform workload with pFabric flow
	//    sizes arriving as a Poisson process, on the purified transport
	//    with flowlet-over-layers load balancing.
	rng := graph.NewRand(1)
	wl := core.Workload{
		Pattern:  traffic.RandomizeMapping(traffic.RandomUniform(rng, sf.N()), rng),
		FlowSize: traffic.PFabricFlowSize,
		Lambda:   300,
	}
	res := fab.RunWorkload(netsim.NDPDefaults(), wl, 10*netsim.Second, 2)
	tp := netsim.SummarizeThroughput(res)
	fct := netsim.SummarizeFCT(res)
	fmt.Printf("\n%d flows, %.1f%% completed\n", len(res), 100*netsim.CompletedFraction(res))
	fmt.Printf("throughput/flow: mean %.0f MiB/s, 1%% tail %.0f MiB/s\n", tp.Mean, tp.P01)
	fmt.Printf("FCT: mean %.3f ms, p99 %.3f ms\n", fct.Mean, fct.P99)
}
